//! Forking symbolic walk of the controller program (`RL-Txxx` evidence).
//!
//! Extends the fusibility tracer from a single concrete trace to a small
//! *set* of abstract paths: a branch on unknown data forks the walk
//! instead of abandoning it, a `hpop` is modeled with a conservative
//! host-FIFO readiness clock instead of aborting, and every
//! configuration-touching effect is recorded with its retire cycle so the
//! hazard and value-range passes can replay the writes. When every path
//! halts, the maximum path cycle count is a sound upper bound on the halt
//! cycle of any real execution, and the last configuration event bounds
//! the cycle from which the fabric provably never changes again.
//!
//! Soundness notes:
//!
//! * `hpop` retires no earlier than `live_from + HPOP_READY_BASE + k` for
//!   the `k`-th pop of a port, where `live_from` is the cycle its capture
//!   first became armed *in the active context*. The base is calibrated
//!   above the fabric's warm-up latency and the bound is cross-checked
//!   dynamically by the conformance runner (bound must cover the actual
//!   halt cycle on every tier).
//! * A pop of a port whose capture may never be armed abandons the walk
//!   (on a fully concrete path it *proves* divergence instead).
//! * A fully concrete path that revisits an exact machine state at a
//!   backward jump proves the controller never halts.

use std::collections::{HashMap, HashSet};

use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
use systolic_ring_isa::object::Object;

use crate::model::ConfigModel;
use crate::LintLimits;

/// Retired-instruction budget across all paths before the walk gives up.
const STEP_BUDGET: u64 = 200_000;

/// Fork budget: total paths the walk may spawn before giving up.
const MAX_PATHS: usize = 64;

/// Slack added to the last configuration event: a `ctx` select committed
/// on the final cycle becomes active one cycle later.
const SETTLE_SLACK: u64 = 2;

/// Host-output readiness base: the `k`-th word popped from an armed
/// capture is modeled as unavailable before cycle `live_from +
/// HPOP_READY_BASE + k`. Calibrated above the fabric's capture warm-up
/// latency; the conformance cross-check holds the resulting bound to
/// `actual <= bound <= 4 * actual` on every shipped program.
const HPOP_READY_BASE: u64 = 8;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Val {
    Known(u32),
    Unknown,
}

impl Val {
    fn map2(self, other: Val, f: impl FnOnce(u32, u32) -> u32) -> Val {
        match (self, other) {
            (Val::Known(a), Val::Known(b)) => Val::Known(f(a, b)),
            _ => Val::Unknown,
        }
    }
}

/// One configuration-touching effect, with unknown operands preserved as
/// `None` so consumers stay conservative.
#[derive(Clone, Debug)]
pub(crate) enum ConfigEvent {
    /// Dnode microinstruction write into context `ctx`.
    WriteDnode {
        ctx: usize,
        dnode: usize,
        word: Option<u64>,
    },
    /// Crossbar port write (flat index) into context `ctx`.
    WritePort {
        ctx: usize,
        switch: usize,
        lane: usize,
        input: usize,
        word: Option<u32>,
    },
    /// Host-capture selector write into context `ctx`.
    WriteCapture {
        ctx: usize,
        switch: usize,
        port: usize,
    },
    /// Dnode execution-mode flip (`None` = direction unknown).
    WriteMode { dnode: usize, local: Option<bool> },
    /// Local-sequencer slot write.
    WriteLocalSlot {
        dnode: usize,
        slot: usize,
        word: Option<u64>,
    },
    /// Local-sequencer limit write.
    WriteLocalLimit { dnode: usize, limit: Option<u32> },
    /// Active-context select.
    SetCtx { ctx: usize },
}

/// A [`ConfigEvent`] with its provenance: retire cycle, code address and
/// the context that was active when it issued.
#[derive(Clone, Debug)]
pub(crate) struct TimedEvent {
    pub cycle: u64,
    pub addr: usize,
    pub active_ctx: usize,
    pub event: ConfigEvent,
}

/// One halted execution path.
pub(crate) struct HaltedPath {
    /// Cycle at which `halt` retired on this path.
    pub cycles: u64,
    /// Configuration events in execution order.
    pub events: Vec<TimedEvent>,
    /// Cycle of the last configuration event (0 if none).
    pub last_config_cycle: u64,
}

/// Result of walking every path of the controller program.
pub(crate) enum WalkOutcome {
    /// Every path halted: the bounds below are sound for any execution.
    Complete {
        paths: Vec<HaltedPath>,
        /// Maximum halt cycle over all paths.
        max_cycles: u64,
        /// Cycle from which the configuration provably never changes.
        stable_from: u64,
    },
    /// Some path could not be followed to a halt; no bound is claimed.
    /// Paths that did halt are still reported for best-effort hazard
    /// analysis.
    Abandoned {
        reason: String,
        paths: Vec<HaltedPath>,
    },
    /// The controller provably never halts (exact state repetition or a
    /// pop of a never-armed port, on a fully concrete path).
    Diverges { reason: String, addr: usize },
}

struct Path {
    regs: [Val; 16],
    dmem: HashMap<u32, Val>,
    pc: u32,
    cycles: u64,
    cir: u16,
    wctx: usize,
    active_ctx: usize,
    /// Per-(switch, port) pop counts for the readiness clock.
    pops: HashMap<(usize, usize), u64>,
    /// Per-(switch, port) cycle the capture first became armed in the
    /// active context (`None` = never yet).
    live_from: HashMap<(usize, usize), u64>,
    /// Capture-selector overlay over the preload model, tracking `who`
    /// writes: `(ctx, switch, port) -> armed?`.
    capture_overlay: HashMap<(usize, usize, usize), bool>,
    events: Vec<TimedEvent>,
    last_config_cycle: u64,
    /// `true` once the path forked or consumed unknown data; disables
    /// the exact-state divergence proof.
    abstracted: bool,
    /// Backward-jump states seen on the still-concrete prefix.
    seen: HashSet<u64>,
}

impl Path {
    fn read(&self, r: CReg) -> Val {
        if r == CReg::ZERO {
            Val::Known(0)
        } else {
            self.regs[r.index()]
        }
    }

    fn write(&mut self, r: CReg, v: Val) {
        if r != CReg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    /// Word-mixed digest of the concrete machine state, for the
    /// divergence proof. Only called while the path is fully concrete —
    /// once per backward jump, so it mixes a word per step rather than a
    /// byte (same construction as `proof::object_hash`).
    fn state_key(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h = (h ^ v).rotate_left(23).wrapping_mul(0x517c_c1b7_2722_0a95);
        };
        mix(u64::from(self.pc));
        for r in &self.regs {
            match r {
                Val::Known(v) => mix(u64::from(*v)),
                Val::Unknown => mix(u64::MAX),
            }
        }
        let mut dmem: Vec<(u32, u32)> = self
            .dmem
            .iter()
            .map(|(&a, &v)| match v {
                Val::Known(v) => (a, v),
                Val::Unknown => (a, u32::MAX),
            })
            .collect();
        dmem.sort_unstable();
        for (a, v) in dmem {
            mix(u64::from(a));
            mix(u64::from(v));
        }
        mix(self.cir.into());
        mix(self.wctx as u64);
        mix(self.active_ctx as u64);
        h
    }

    /// Is the capture of `(switch, port)` armed in context `ctx`, under
    /// this path's overlay?
    fn armed_in(&self, model: &ConfigModel, ctx: usize, switch: usize, port: usize) -> bool {
        if let Some(&armed) = self.capture_overlay.get(&(ctx, switch, port)) {
            return armed;
        }
        model
            .captures
            .get(&(ctx, switch, port))
            .is_some_and(|c| c.selected().is_some())
    }

    /// Refreshes the per-port liveness clocks after an arming change or a
    /// context switch.
    fn refresh_live(&mut self, model: &ConfigModel, geometry_ports: &[(usize, usize)]) {
        for &(switch, port) in geometry_ports {
            if self.live_from.contains_key(&(switch, port)) {
                continue;
            }
            if self.armed_in(model, self.active_ctx, switch, port) {
                self.live_from.insert((switch, port), self.cycles);
            }
        }
    }

    fn record(&mut self, addr: usize, event: ConfigEvent) {
        self.last_config_cycle = self.cycles;
        self.events.push(TimedEvent {
            cycle: self.cycles,
            addr,
            active_ctx: self.active_ctx,
            event,
        });
    }
}

enum StepResult {
    Continue,
    Halted,
    Fork { taken: u32 },
    Abandon(String),
    Diverge { reason: String, addr: usize },
}

/// Walks every path of `object`'s controller program.
pub(crate) fn walk(object: &Object, limits: &LintLimits, model: &ConfigModel) -> WalkOutcome {
    if object.code.is_empty() {
        // The controller is halted from reset; the preload is the steady
        // state.
        return WalkOutcome::Complete {
            paths: vec![HaltedPath {
                cycles: 0,
                events: Vec::new(),
                last_config_cycle: 0,
            }],
            max_cycles: 0,
            stable_from: 0,
        };
    }

    // The walk revisits loop bodies many times and the decoder is pure,
    // so each program word decodes exactly once up front.
    let decoded: Vec<Option<CtrlInstr>> = object
        .code
        .iter()
        .map(|&word| CtrlInstr::decode(word).ok())
        .collect();

    // Every (switch, port) a capture could ever feed, for liveness
    // refresh. Derived from the model (preload) plus a pessimistic sweep
    // of `who` targets in the code.
    let mut ports: Vec<(usize, usize)> = model.captures.keys().map(|&(_, s, p)| (s, p)).collect();
    for instr in decoded.iter().flatten() {
        if let CtrlInstr::Who { switch, .. } = *instr {
            ports.push(((switch >> 8) as usize, (switch & 0xff) as usize));
        }
    }
    ports.sort_unstable();
    ports.dedup();

    let mut initial = Path {
        regs: [Val::Known(0); 16],
        dmem: HashMap::new(),
        pc: 0,
        cycles: 0,
        cir: 0,
        wctx: 0,
        active_ctx: 0,
        pops: HashMap::new(),
        live_from: HashMap::new(),
        capture_overlay: HashMap::new(),
        events: Vec::new(),
        last_config_cycle: 0,
        abstracted: false,
        seen: HashSet::new(),
    };
    initial.refresh_live(model, &ports);

    let mut worklist = vec![initial];
    let mut halted: Vec<HaltedPath> = Vec::new();
    let mut spawned = 1usize;
    let mut steps = 0u64;

    while let Some(mut path) = worklist.pop() {
        loop {
            steps += 1;
            if steps > STEP_BUDGET {
                return WalkOutcome::Abandoned {
                    reason: format!("no halt within {STEP_BUDGET} traced instructions"),
                    paths: halted,
                };
            }
            match step(&mut path, object, &decoded, limits, model, &ports) {
                StepResult::Continue => {}
                StepResult::Halted => {
                    halted.push(HaltedPath {
                        cycles: path.cycles,
                        events: std::mem::take(&mut path.events),
                        last_config_cycle: path.last_config_cycle,
                    });
                    break;
                }
                StepResult::Fork { taken } => {
                    spawned += 2;
                    if spawned > MAX_PATHS {
                        return WalkOutcome::Abandoned {
                            reason: format!(
                                "data-dependent control flow forked more than {MAX_PATHS} paths"
                            ),
                            paths: halted,
                        };
                    }
                    let mut other = Path {
                        regs: path.regs,
                        dmem: path.dmem.clone(),
                        pc: taken,
                        cycles: path.cycles,
                        cir: path.cir,
                        wctx: path.wctx,
                        active_ctx: path.active_ctx,
                        pops: path.pops.clone(),
                        live_from: path.live_from.clone(),
                        capture_overlay: path.capture_overlay.clone(),
                        events: path.events.clone(),
                        last_config_cycle: path.last_config_cycle,
                        abstracted: true,
                        seen: HashSet::new(),
                    };
                    other.seen.clear();
                    path.abstracted = true;
                    path.seen.clear();
                    worklist.push(other);
                }
                StepResult::Abandon(reason) => {
                    return WalkOutcome::Abandoned {
                        reason,
                        paths: halted,
                    };
                }
                StepResult::Diverge { reason, addr } => {
                    return WalkOutcome::Diverges { reason, addr };
                }
            }
        }
    }

    let max_cycles = halted.iter().map(|p| p.cycles).max().unwrap_or(0);
    let last_config = halted
        .iter()
        .map(|p| p.last_config_cycle)
        .max()
        .unwrap_or(0);
    let stable_from = if halted.iter().any(|p| !p.events.is_empty()) {
        last_config + SETTLE_SLACK
    } else {
        0
    };
    WalkOutcome::Complete {
        paths: halted,
        max_cycles,
        stable_from,
    }
}

/// Executes one instruction on `path`. Mirrors the controller's retire
/// semantics (and the fusibility tracer) exactly for the data core;
/// extends it with forking, config-event recording and the `hpop` clock.
#[allow(clippy::too_many_lines)]
fn step(
    path: &mut Path,
    object: &Object,
    decoded: &[Option<CtrlInstr>],
    limits: &LintLimits,
    model: &ConfigModel,
    ports: &[(usize, usize)],
) -> StepResult {
    let Some(&slot) = decoded.get(path.pc as usize) else {
        return StepResult::Abandon(format!("pc {} leaves the program", path.pc));
    };
    let Some(instr) = slot else {
        return StepResult::Abandon(format!("undecodable word at {}", path.pc));
    };
    let addr = path.pc as usize;
    path.cycles += 1;
    let fall = path.pc.wrapping_add(1);
    path.pc = fall;
    match instr {
        CtrlInstr::Halt => return StepResult::Halted,
        CtrlInstr::Nop | CtrlInstr::Busw { .. } | CtrlInstr::Hpush { .. } => {}
        CtrlInstr::Cimm { imm } => path.cir = imm,
        CtrlInstr::Wctx { ctx } => path.wctx = ctx as usize,
        CtrlInstr::Wdn { rs, dnode } => {
            let word = match path.read(rs) {
                Val::Known(v) => Some(u64::from(v) | (u64::from(path.cir) << 32)),
                Val::Unknown => None,
            };
            let (ctx, dnode) = (path.wctx, dnode as usize);
            path.record(addr, ConfigEvent::WriteDnode { ctx, dnode, word });
        }
        CtrlInstr::Wsw { rs, port } => {
            let word = match path.read(rs) {
                Val::Known(v) => Some(v),
                Val::Unknown => None,
            };
            // Flat port addressing: `(switch * width + lane) * 4 + input`.
            let flat = port as usize;
            let (switch, lane, input) = match model.geometry {
                Some(g) => (flat / (4 * g.width()), (flat / 4) % g.width(), flat % 4),
                None => (flat / 4, 0, flat % 4),
            };
            let ctx = path.wctx;
            path.record(
                addr,
                ConfigEvent::WritePort {
                    ctx,
                    switch,
                    lane,
                    input,
                    word,
                },
            );
        }
        CtrlInstr::Who { rs, switch } => {
            let (s, p) = ((switch >> 8) as usize, (switch & 0xff) as usize);
            let ctx = path.wctx;
            match path.read(rs) {
                Val::Known(v) => {
                    path.record(
                        addr,
                        ConfigEvent::WriteCapture {
                            ctx,
                            switch: s,
                            port: p,
                        },
                    );
                    // Armed iff the selector decodes to a selected lane;
                    // the structural pass vouches for decodability, so a
                    // nonzero low bit is the armed flag by construction.
                    let armed = systolic_ring_isa::switch::HostCapture::decode(v)
                        .is_ok_and(|c| c.selected().is_some());
                    path.capture_overlay.insert((ctx, s, p), armed);
                    path.refresh_live(model, ports);
                }
                Val::Unknown => {
                    return StepResult::Abandon(format!(
                        "capture selector written with unknown data at {addr} \
                         (host-pop liveness becomes unknowable)"
                    ));
                }
            }
        }
        CtrlInstr::Wmode { rs, dnode } => {
            let local = match path.read(rs) {
                Val::Known(v) => Some(v != 0),
                Val::Unknown => None,
            };
            let dnode = dnode as usize;
            path.record(addr, ConfigEvent::WriteMode { dnode, local });
        }
        CtrlInstr::Wloc { rs, packed } => {
            let word = match path.read(rs) {
                Val::Known(v) => Some(u64::from(v) | (u64::from(path.cir) << 32)),
                Val::Unknown => None,
            };
            let (dnode, slot) = ((packed >> 3) as usize, (packed & 7) as usize);
            path.record(addr, ConfigEvent::WriteLocalSlot { dnode, slot, word });
        }
        CtrlInstr::Wlim { rs, dnode } => {
            let limit = match path.read(rs) {
                Val::Known(v) => Some(v),
                Val::Unknown => None,
            };
            let dnode = dnode as usize;
            path.record(addr, ConfigEvent::WriteLocalLimit { dnode, limit });
        }
        CtrlInstr::Ctx { ctx } => {
            let ctx = ctx as usize;
            path.record(addr, ConfigEvent::SetCtx { ctx });
            path.active_ctx = ctx;
            path.refresh_live(model, ports);
        }
        CtrlInstr::Wait { cycles } => {
            path.cycles += u64::from(cycles).saturating_sub(1);
        }
        CtrlInstr::Busr { rd } => {
            path.abstracted = true;
            path.write(rd, Val::Unknown);
        }
        CtrlInstr::Hpop { rd, switch } => {
            let (s, p) = ((switch >> 8) as usize, (switch & 0xff) as usize);
            match path.live_from.get(&(s, p)).copied() {
                Some(live) => {
                    let k = path.pops.entry((s, p)).or_insert(0);
                    *k += 1;
                    let ready = live + HPOP_READY_BASE + *k;
                    if ready > path.cycles {
                        path.cycles = ready;
                    }
                    path.abstracted = true;
                    path.write(rd, Val::Unknown);
                }
                None if !path.abstracted => {
                    return StepResult::Diverge {
                        reason: format!(
                            "pops host-output port {p} of switch {s}, whose capture is \
                             never armed in any active context (the controller stalls \
                             forever)"
                        ),
                        addr,
                    };
                }
                None => {
                    return StepResult::Abandon(format!(
                        "pop at {addr} of a port whose capture may never be armed"
                    ));
                }
            }
        }
        CtrlInstr::Add { rd, ra, rb } => {
            let v = path.read(ra).map2(path.read(rb), u32::wrapping_add);
            path.write(rd, v);
        }
        CtrlInstr::Sub { rd, ra, rb } => {
            let v = path.read(ra).map2(path.read(rb), u32::wrapping_sub);
            path.write(rd, v);
        }
        CtrlInstr::And { rd, ra, rb } => {
            let v = path.read(ra).map2(path.read(rb), |a, b| a & b);
            path.write(rd, v);
        }
        CtrlInstr::Or { rd, ra, rb } => {
            let v = path.read(ra).map2(path.read(rb), |a, b| a | b);
            path.write(rd, v);
        }
        CtrlInstr::Xor { rd, ra, rb } => {
            let v = path.read(ra).map2(path.read(rb), |a, b| a ^ b);
            path.write(rd, v);
        }
        CtrlInstr::Sll { rd, ra, rb } => {
            let v = path.read(ra).map2(path.read(rb), |a, b| a << (b & 31));
            path.write(rd, v);
        }
        CtrlInstr::Srl { rd, ra, rb } => {
            let v = path.read(ra).map2(path.read(rb), |a, b| a >> (b & 31));
            path.write(rd, v);
        }
        CtrlInstr::Sra { rd, ra, rb } => {
            let v = path
                .read(ra)
                .map2(path.read(rb), |a, b| ((a as i32) >> (b & 31)) as u32);
            path.write(rd, v);
        }
        CtrlInstr::Slt { rd, ra, rb } => {
            let v = path
                .read(ra)
                .map2(path.read(rb), |a, b| ((a as i32) < (b as i32)) as u32);
            path.write(rd, v);
        }
        CtrlInstr::Sltu { rd, ra, rb } => {
            let v = path.read(ra).map2(path.read(rb), |a, b| (a < b) as u32);
            path.write(rd, v);
        }
        CtrlInstr::Mul { rd, ra, rb } => {
            let v = path.read(ra).map2(path.read(rb), u32::wrapping_mul);
            path.write(rd, v);
        }
        CtrlInstr::Addi { rd, ra, imm } => {
            let v = path
                .read(ra)
                .map2(Val::Known(imm as i32 as u32), u32::wrapping_add);
            path.write(rd, v);
        }
        CtrlInstr::Andi { rd, ra, imm } => {
            let v = path.read(ra).map2(Val::Known(imm.into()), |a, b| a & b);
            path.write(rd, v);
        }
        CtrlInstr::Ori { rd, ra, imm } => {
            let v = path.read(ra).map2(Val::Known(imm.into()), |a, b| a | b);
            path.write(rd, v);
        }
        CtrlInstr::Xori { rd, ra, imm } => {
            let v = path.read(ra).map2(Val::Known(imm.into()), |a, b| a ^ b);
            path.write(rd, v);
        }
        CtrlInstr::Slti { rd, ra, imm } => {
            let v = path.read(ra).map2(Val::Known(imm as i32 as u32), |a, b| {
                ((a as i32) < (b as i32)) as u32
            });
            path.write(rd, v);
        }
        CtrlInstr::Lui { rd, imm } => path.write(rd, Val::Known(u32::from(imm) << 16)),
        CtrlInstr::Lw { rd, ra, imm } => match path.read(ra) {
            Val::Known(base) => {
                let a = base.wrapping_add(imm as i32 as u32);
                if a as usize >= limits.dmem_capacity {
                    return StepResult::Abandon(format!("load from out-of-range address {a}"));
                }
                let v = path.dmem.get(&a).copied().unwrap_or_else(|| {
                    match object.data.get(a as usize) {
                        Some(&w) => Val::Known(w),
                        None => Val::Known(0),
                    }
                });
                path.write(rd, v);
            }
            Val::Unknown => path.write(rd, Val::Unknown),
        },
        CtrlInstr::Sw { rs, ra, imm } => match path.read(ra) {
            Val::Known(base) => {
                let a = base.wrapping_add(imm as i32 as u32);
                if a as usize >= limits.dmem_capacity {
                    return StepResult::Abandon(format!("store to out-of-range address {a}"));
                }
                let v = path.read(rs);
                path.dmem.insert(a, v);
            }
            Val::Unknown => {
                return StepResult::Abandon(
                    "store to an unknown address (poisons data memory)".to_owned(),
                );
            }
        },
        CtrlInstr::Beq { ra, rb, offset } => {
            let (a, b) = (path.read(ra), path.read(rb));
            return take_branch(path, a, b, offset, fall, |a, b| a == b);
        }
        CtrlInstr::Bne { ra, rb, offset } => {
            let (a, b) = (path.read(ra), path.read(rb));
            return take_branch(path, a, b, offset, fall, |a, b| a != b);
        }
        CtrlInstr::Blt { ra, rb, offset } => {
            let (a, b) = (path.read(ra), path.read(rb));
            return take_branch(path, a, b, offset, fall, |a, b| (a as i32) < (b as i32));
        }
        CtrlInstr::Bge { ra, rb, offset } => {
            let (a, b) = (path.read(ra), path.read(rb));
            return take_branch(path, a, b, offset, fall, |a, b| (a as i32) >= (b as i32));
        }
        CtrlInstr::J { target } => return jump(path, u32::from(target), fall),
        CtrlInstr::Jal { target } => {
            path.write(CReg::LINK, Val::Known(fall));
            return jump(path, u32::from(target), fall);
        }
        CtrlInstr::Jr { ra } => match path.read(ra) {
            Val::Known(target) => return jump(path, target, fall),
            Val::Unknown => {
                return StepResult::Abandon("indirect jump through an unknown register".to_owned());
            }
        },
    }
    StepResult::Continue
}

/// Shared branch logic. Known operands decide the branch; unknown
/// operands fork both successors (the caller enqueues the taken side,
/// this path continues on the fall-through).
fn take_branch(
    path: &mut Path,
    a: Val,
    b: Val,
    offset: i16,
    fall: u32,
    cond: impl FnOnce(u32, u32) -> bool,
) -> StepResult {
    match (a, b) {
        (Val::Known(a), Val::Known(b)) => {
            if cond(a, b) {
                let target = fall.wrapping_add(offset as i32 as u32);
                return jump(path, target, fall);
            }
            StepResult::Continue
        }
        _ => StepResult::Fork {
            taken: fall.wrapping_add(offset as i32 as u32),
        },
    }
}

/// Jump with backward-edge divergence detection on concrete paths.
fn jump(path: &mut Path, target: u32, fall: u32) -> StepResult {
    if target < fall && !path.abstracted {
        path.pc = target;
        let key = path.state_key();
        if !path.seen.insert(key) {
            return StepResult::Diverge {
                reason: "revisits an exact controller state (the program provably never halts)"
                    .to_owned(),
                addr: fall.wrapping_sub(1) as usize,
            };
        }
        return StepResult::Continue;
    }
    path.pc = target;
    StepResult::Continue
}
