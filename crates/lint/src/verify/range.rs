//! Value-range pass (`RL-Vxxx`): a joined interval analysis over the
//! Q-format datapath.
//!
//! Every configured microinstruction — per-context and local-sequencer,
//! preloaded and runtime-written (when the walk recovered the word) — is
//! a *site*. Sites are iterated to a joint fixpoint over per-Dnode
//! register and output intervals, with widening to the full 16-bit range
//! once the exact iteration stops converging (an unbounded MAC loop is
//! exactly the case widening exists for). The analysis is deliberately
//! time-insensitive: it joins over every context and both execution
//! modes, so whatever the controller schedules, a dynamic value can never
//! leave the computed hull.
//!
//! A final classification pass re-evaluates each wrap-capable operation
//! over the stable intervals:
//!
//! * pre-wrap result provably inside `i16` → safe,
//! * provably *outside* → `RL-V003` (warning — the op can only wrap),
//! * straddling → `RL-V002` (info — may wrap; saturate or rescale).
//!
//! Saturating operations (`AddSat`, `MacSat`, `Abs`, …) never flag.

use std::collections::{BTreeMap, BTreeSet};

use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand};
use systolic_ring_isa::expect::Expectations;
use systolic_ring_isa::proof::OutRange;
use systolic_ring_isa::switch::PortSource;

use crate::diag::{Diagnostic, Severity, Site};
use crate::model::{emit, ConfigModel};

use super::schedule::{ConfigEvent, HaltedPath};

/// Exact-iteration rounds before widening kicks in.
const WIDEN_AFTER: usize = 8;
/// Hard round cap (widened intervals are absorbing, so the fixpoint lands
/// well before this).
const MAX_ROUNDS: usize = 96;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Interval {
    lo: i64,
    hi: i64,
}

const FULL: Interval = Interval {
    lo: i16::MIN as i64,
    hi: i16::MAX as i64,
};
const ZERO: Interval = Interval { lo: 0, hi: 0 };

impl Interval {
    fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    fn clamp16(self) -> Interval {
        Interval {
            lo: self.lo.clamp(i16::MIN as i64, i16::MAX as i64),
            hi: self.hi.clamp(i16::MIN as i64, i16::MAX as i64),
        }
    }
}

/// Wrap classification of one evaluation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Wrap {
    /// The operation cannot wrap (or has no wrap semantics).
    Safe,
    /// The pre-wrap result straddles the 16-bit range.
    May,
    /// The pre-wrap result lies entirely outside the 16-bit range.
    Certain,
}

/// One configured microinstruction under analysis.
struct SiteInstr {
    /// `Some(ctx)` for a context slot, `None` for a local-sequencer slot.
    ctx: Option<usize>,
    dnode: usize,
    instr: MicroInstr,
}

/// A dynamic contribution to a resolved port operand.
#[derive(Clone, Copy)]
enum PortRef {
    /// The shared result bus.
    Bus,
    /// A producer Dnode's layer output (zero-extended by the warm-up
    /// base, so `PrevOut` and `Pipe` resolve identically).
    Out(usize),
}

/// Pre-resolved operand: route topology, host hulls and constants are
/// folded once, so the fixpoint only touches flat state.
enum Src {
    /// Fully constant over the whole fixpoint.
    Const(Interval),
    /// The shared result bus.
    Bus,
    /// The site's own register file, by index.
    Reg(usize),
    /// A routed port: the constant part (`base`) joined with the dynamic
    /// contributions (`refs`).
    Ports { base: Interval, refs: Vec<PortRef> },
}

/// Resolves a pre-planned operand against the current fixpoint state.
fn resolve(
    src: &Src,
    dnode: usize,
    out: &[Interval],
    regs: &[[Interval; 4]],
    bus: Interval,
) -> Interval {
    match *src {
        Src::Const(iv) => iv,
        Src::Bus => bus,
        Src::Reg(i) => regs[dnode][i],
        Src::Ports { base, ref refs } => refs.iter().fold(base, |iv, r| {
            iv.join(match *r {
                PortRef::Bus => bus,
                PortRef::Out(d) => out.get(d).copied().unwrap_or(ZERO),
            })
        }),
    }
}

/// Runs the pass; emits `RL-V002`/`RL-V003` (and `RL-V001` on a fully
/// proven object).
pub(crate) fn check(
    model: &ConfigModel,
    paths: &[HaltedPath],
    expectations: Option<&Expectations>,
    controller_drives_bus: bool,
    diags: &mut Vec<Diagnostic>,
) -> Vec<OutRange> {
    // ---- Collect sites, routes and taints -------------------------------
    let mut sites: Vec<SiteInstr> = Vec::new();
    let mut tainted: BTreeSet<usize> = BTreeSet::new();
    let mut routes: BTreeMap<(usize, usize, usize), Vec<PortSource>> = BTreeMap::new();
    let mut tainted_routes: BTreeSet<(usize, usize, usize)> = BTreeSet::new();

    for (&(ctx, dnode), &instr) in &model.dnode_instrs {
        sites.push(SiteInstr {
            ctx: Some(ctx),
            dnode,
            instr,
        });
    }
    for (&(dnode, _slot), &instr) in &model.local_slots {
        sites.push(SiteInstr {
            ctx: None,
            dnode,
            instr,
        });
    }
    for (&(_ctx, switch, lane, input), &source) in &model.routes {
        routes
            .entry((switch, lane, input))
            .or_default()
            .push(source);
    }
    for path in paths {
        for ev in &path.events {
            match ev.event {
                ConfigEvent::WriteDnode { ctx, dnode, word } => {
                    match word.and_then(|w| MicroInstr::decode(w).ok()) {
                        Some(instr) => sites.push(SiteInstr {
                            ctx: Some(ctx),
                            dnode,
                            instr,
                        }),
                        None => {
                            tainted.insert(dnode);
                        }
                    }
                }
                ConfigEvent::WriteLocalSlot { dnode, word, .. } => {
                    match word.and_then(|w| MicroInstr::decode(w).ok()) {
                        Some(instr) => sites.push(SiteInstr {
                            ctx: None,
                            dnode,
                            instr,
                        }),
                        None => {
                            tainted.insert(dnode);
                        }
                    }
                }
                ConfigEvent::WritePort {
                    switch,
                    lane,
                    input,
                    word,
                    ..
                } => match word.and_then(|w| PortSource::decode(w).ok()) {
                    Some(source) => routes
                        .entry((switch, lane, input))
                        .or_default()
                        .push(source),
                    None => {
                        tainted_routes.insert((switch, lane, input));
                    }
                },
                _ => {}
            }
        }
    }
    sites.retain(|s| s.instr != MicroInstr::NOP);

    let dnodes: BTreeSet<usize> = sites
        .iter()
        .map(|s| s.dnode)
        .chain(tainted.iter().copied())
        .collect();

    // Host-input hulls from the embedded expectations (FIFO underflow
    // reads zero, so the hull always includes it).
    let mut host: BTreeMap<(usize, usize), Interval> = BTreeMap::new();
    if let Some(exp) = expectations {
        for input in &exp.inputs {
            let hull = input
                .words
                .iter()
                .fold(ZERO, |acc, &w| acc.join(Interval::exact(w.into())));
            host.entry((input.switch, input.port))
                .and_modify(|h| *h = h.join(hull))
                .or_insert(hull);
        }
    }

    // ---- Operand resolution ---------------------------------------------
    // Routes, host hulls and geometry are static over the fixpoint, so
    // each site's operands resolve once; the rounds below touch nothing
    // but flat per-dnode state.
    let plans: Vec<(Src, Src)> = sites
        .iter()
        .map(|site| {
            (
                plan_operand(
                    site,
                    site.instr.src_a,
                    model,
                    &routes,
                    &tainted_routes,
                    &host,
                ),
                plan_operand(
                    site,
                    site.instr.src_b,
                    model,
                    &routes,
                    &tainted_routes,
                    &host,
                ),
            )
        })
        .collect();

    // ---- Fixpoint -------------------------------------------------------
    let state_len = dnodes.iter().max().map_or(0, |&d| d + 1);
    let mut out = vec![ZERO; state_len];
    let mut regs = vec![[ZERO; 4]; state_len];
    for &d in &tainted {
        out[d] = FULL;
        regs[d] = [FULL; 4];
    }
    let mut bus = if controller_drives_bus { FULL } else { ZERO };

    for round in 0..MAX_ROUNDS {
        let widen = round >= WIDEN_AFTER;
        let mut changed = false;
        let join_into = |slot: &mut Interval, v: Interval, changed: &mut bool| {
            let joined = slot.join(v);
            if joined != *slot {
                *slot = if widen { FULL } else { joined };
                *changed = true;
            }
        };
        for (site, plan) in sites.iter().zip(&plans) {
            let (result, _) = eval(site, plan, &out, &regs, bus);
            if let Some(r) = site.instr.wr_reg {
                join_into(&mut regs[site.dnode][r.index()], result, &mut changed);
            }
            if site.instr.wr_out {
                join_into(&mut out[site.dnode], result, &mut changed);
            }
            if site.instr.wr_bus {
                join_into(&mut bus, result, &mut changed);
            }
        }
        if !changed {
            break;
        }
    }

    // ---- Classification -------------------------------------------------
    let mut flagged: BTreeSet<(Option<usize>, usize, Wrap)> = BTreeSet::new();
    let mut wrap_capable = 0usize;
    for (site, plan) in sites.iter().zip(&plans) {
        // Only wrap-capable ops can classify as anything but `Safe`, so
        // everything else skips the re-evaluation outright.
        if !wrap_capable_op(site.instr.alu) {
            continue;
        }
        wrap_capable += 1;
        let (_, wrap) = eval(site, plan, &out, &regs, bus);
        if wrap != Wrap::Safe {
            flagged.insert((site.ctx, site.dnode, wrap));
        }
    }
    for &(ctx, dnode, wrap) in &flagged {
        let site = Site::Dnode { ctx, dnode };
        let op_desc = describe_ops(&sites, ctx, dnode, &flagged, wrap);
        match wrap {
            Wrap::Certain => emit(
                diags,
                "RL-V003",
                Severity::Warning,
                site,
                format!(
                    "{op_desc} is statically certain to wrap: the exact result range \
                     lies entirely outside the 16-bit datapath"
                ),
                "the computed value is always the wrapped alias; use a saturating op \
                 or rescale the operands",
            ),
            Wrap::May => emit(
                diags,
                "RL-V002",
                Severity::Info,
                site,
                format!(
                    "{op_desc} may wrap: the proven operand ranges allow results \
                     outside the 16-bit datapath"
                ),
                "saturate, rescale, or bound the host input ranges if wrapping is \
                 unintended",
            ),
            Wrap::Safe => {}
        }
    }

    let all_proven = wrap_capable > 0 && flagged.is_empty() && tainted.is_empty();
    if all_proven {
        emit(
            diags,
            "RL-V001",
            Severity::Info,
            Site::Object,
            format!(
                "value-range: all {wrap_capable} wrap-capable datapath operation(s) \
                 proven overflow-free"
            ),
            "the proven per-dnode output ranges are recorded in the proof manifest",
        );
    }

    dnodes
        .iter()
        .map(|&dnode| OutRange {
            dnode: dnode as u16,
            lo: out[dnode].lo as i16,
            hi: out[dnode].hi as i16,
        })
        .collect()
}

/// Human tag for the flagged op(s) at one site.
fn describe_ops(
    sites: &[SiteInstr],
    ctx: Option<usize>,
    dnode: usize,
    _flagged: &BTreeSet<(Option<usize>, usize, Wrap)>,
    _wrap: Wrap,
) -> String {
    let ops: BTreeSet<String> = sites
        .iter()
        .filter(|s| s.ctx == ctx && s.dnode == dnode && wrap_capable_op(s.instr.alu))
        .map(|s| format!("{:?}", s.instr.alu).to_lowercase())
        .collect();
    if ops.is_empty() {
        "a wrapping operation".to_owned()
    } else {
        format!(
            "wrapping `{}`",
            ops.into_iter().collect::<Vec<_>>().join("`/`")
        )
    }
}

/// Ops with wrap (as opposed to saturation or well-defined bit) semantics.
fn wrap_capable_op(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Add | AluOp::Sub | AluOp::Neg | AluOp::Shl | AluOp::Mul | AluOp::Mac | AluOp::Msu
    )
}

/// Evaluates one site over the current state; returns the (clamped)
/// result interval and the wrap classification.
fn eval(
    site: &SiteInstr,
    plan: &(Src, Src),
    out: &[Interval],
    regs: &[[Interval; 4]],
    bus: Interval,
) -> (Interval, Wrap) {
    let a = resolve(&plan.0, site.dnode, out, regs, bus);
    let b = resolve(&plan.1, site.dnode, out, regs, bus);
    let acc = site
        .instr
        .wr_reg
        .map_or(FULL, |r| regs[site.dnode][r.index()]);
    transfer(site.instr.alu, a, b, acc)
}

/// Resolves one operand selector to a pre-planned source.
fn plan_operand(
    site: &SiteInstr,
    op: Operand,
    model: &ConfigModel,
    routes: &BTreeMap<(usize, usize, usize), Vec<PortSource>>,
    tainted_routes: &BTreeSet<(usize, usize, usize)>,
    host: &BTreeMap<(usize, usize), Interval>,
) -> Src {
    match op {
        Operand::Zero => Src::Const(ZERO),
        Operand::One => Src::Const(Interval::exact(1)),
        Operand::Imm => Src::Const(Interval::exact(site.instr.imm.as_i16().into())),
        Operand::Bus => Src::Bus,
        Operand::Reg(r) => Src::Reg(r.index()),
        Operand::In1 | Operand::In2 | Operand::Fifo1 | Operand::Fifo2 => {
            let Some(g) = model.geometry else {
                return Src::Const(FULL);
            };
            let input = match op {
                Operand::In1 => 0,
                Operand::In2 => 1,
                Operand::Fifo1 => 2,
                _ => 3,
            };
            let (layer, lane) = g.dnode_position(site.dnode);
            // The switch feeding layer L is switch L (downstream_layer is
            // the identity).
            let key = (layer, lane, input);
            if tainted_routes.contains(&key) {
                return Src::Const(FULL);
            }
            let Some(sources) = routes.get(&key) else {
                // Reset routing is the constant zero.
                return Src::Const(ZERO);
            };
            // Warm-up / underflow zeros are always possible, so the base
            // starts at zero and every contribution (including `Pipe` and
            // `HostIn`, whose hulls the old code zero-extended explicitly)
            // joins against it.
            let mut base = ZERO;
            let mut refs = Vec::new();
            for &source in sources {
                match source {
                    PortSource::Zero => {}
                    PortSource::Bus => refs.push(PortRef::Bus),
                    PortSource::PrevOut { lane } => refs.push(PortRef::Out(
                        g.dnode_index(g.upstream_layer(layer), lane as usize),
                    )),
                    PortSource::Pipe { switch, lane, .. } => refs.push(PortRef::Out(
                        g.dnode_index(g.upstream_layer(switch as usize), lane as usize),
                    )),
                    PortSource::HostIn { port } => {
                        base =
                            base.join(host.get(&(layer, port as usize)).copied().unwrap_or(FULL));
                    }
                }
            }
            if refs.is_empty() {
                Src::Const(base)
            } else {
                Src::Ports { base, refs }
            }
        }
    }
}

/// Interval transfer function of one ALU operation.
///
/// Wrap-capable ops compute the exact pre-wrap corner interval in `i64`
/// and classify it against the 16-bit range; everything else is exact or
/// conservatively widened, and never flags.
fn transfer(op: AluOp, a: Interval, b: Interval, acc: Interval) -> (Interval, Wrap) {
    let wrapping = |corners: &[i64]| -> (Interval, Wrap) {
        let lo = corners.iter().copied().min().unwrap();
        let hi = corners.iter().copied().max().unwrap();
        if lo >= i16::MIN as i64 && hi <= i16::MAX as i64 {
            (Interval { lo, hi }, Wrap::Safe)
        } else if hi < i16::MIN as i64 || lo > i16::MAX as i64 {
            (FULL, Wrap::Certain)
        } else {
            (FULL, Wrap::May)
        }
    };
    let products = |a: Interval, b: Interval| [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
    let positive = |iv: Interval| iv.lo >= 0;
    match op {
        AluOp::Nop => (ZERO, Wrap::Safe),
        AluOp::PassA => (a, Wrap::Safe),
        AluOp::PassB => (b, Wrap::Safe),
        AluOp::Add => wrapping(&[a.lo + b.lo, a.hi + b.hi]),
        AluOp::Sub => wrapping(&[a.lo - b.hi, a.hi - b.lo]),
        AluOp::Neg => wrapping(&[-a.lo, -a.hi]),
        AluOp::Mul => wrapping(&products(a, b)),
        AluOp::Mac => {
            let p = products(a, b);
            wrapping(&[
                acc.lo + p.iter().min().unwrap(),
                acc.hi + p.iter().max().unwrap(),
            ])
        }
        AluOp::Msu => {
            let p = products(a, b);
            wrapping(&[
                acc.lo - p.iter().max().unwrap(),
                acc.hi - p.iter().min().unwrap(),
            ])
        }
        AluOp::Shl => {
            // Logical left shift by `b & 15`: exact when the shift count
            // is a known constant, else conservative.
            if b.lo == b.hi && (0..16).contains(&b.lo) {
                let k = b.lo as u32;
                wrapping(&[a.lo << k, a.hi << k])
            } else if a == ZERO {
                (ZERO, Wrap::Safe)
            } else {
                (FULL, Wrap::May)
            }
        }
        AluOp::AddSat => (
            Interval {
                lo: a.lo + b.lo,
                hi: a.hi + b.hi,
            }
            .clamp16(),
            Wrap::Safe,
        ),
        AluOp::SubSat => (
            Interval {
                lo: a.lo - b.hi,
                hi: a.hi - b.lo,
            }
            .clamp16(),
            Wrap::Safe,
        ),
        AluOp::MacSat => {
            let p = products(a, b);
            (
                Interval {
                    lo: acc.lo + p.iter().min().unwrap(),
                    hi: acc.hi + p.iter().max().unwrap(),
                }
                .clamp16(),
                Wrap::Safe,
            )
        }
        AluOp::Abs => {
            let iv = if a.lo >= 0 {
                a
            } else if a.hi <= 0 {
                Interval {
                    lo: -a.hi,
                    hi: -a.lo,
                }
            } else {
                Interval {
                    lo: 0,
                    hi: (-a.lo).max(a.hi),
                }
            };
            (iv.clamp16(), Wrap::Safe)
        }
        AluOp::AbsDiff => {
            let d = Interval {
                lo: a.lo - b.hi,
                hi: a.hi - b.lo,
            };
            let iv = if d.lo >= 0 {
                d
            } else if d.hi <= 0 {
                Interval {
                    lo: -d.hi,
                    hi: -d.lo,
                }
            } else {
                Interval {
                    lo: 0,
                    hi: (-d.lo).max(d.hi),
                }
            };
            (iv.clamp16(), Wrap::Safe)
        }
        AluOp::Not => (
            Interval {
                lo: -1 - a.hi,
                hi: -1 - a.lo,
            },
            Wrap::Safe,
        ),
        AluOp::And => {
            if positive(a) && positive(b) {
                (
                    Interval {
                        lo: 0,
                        hi: a.hi.min(b.hi),
                    },
                    Wrap::Safe,
                )
            } else {
                (FULL, Wrap::Safe)
            }
        }
        AluOp::Or | AluOp::Xor => {
            if positive(a) && positive(b) {
                let bits = 64 - (a.hi.max(b.hi) as u64).leading_zeros();
                let mask = ((1u64 << bits) - 1) as i64;
                (
                    Interval {
                        lo: 0,
                        hi: mask.min(i16::MAX as i64),
                    },
                    Wrap::Safe,
                )
            } else {
                (FULL, Wrap::Safe)
            }
        }
        AluOp::Shr => {
            let (klo, khi) = shift_range(b);
            if positive(a) {
                (
                    Interval {
                        lo: a.lo >> khi,
                        hi: a.hi >> klo,
                    },
                    Wrap::Safe,
                )
            } else if klo >= 1 {
                (
                    Interval {
                        lo: 0,
                        hi: 0xffff >> klo,
                    }
                    .clamp16(),
                    Wrap::Safe,
                )
            } else {
                (FULL, Wrap::Safe)
            }
        }
        AluOp::Asr => {
            let (klo, khi) = shift_range(b);
            let corners = [a.lo >> klo, a.lo >> khi, a.hi >> klo, a.hi >> khi];
            (
                Interval {
                    lo: *corners.iter().min().unwrap(),
                    hi: *corners.iter().max().unwrap(),
                },
                Wrap::Safe,
            )
        }
        AluOp::Min => (
            Interval {
                lo: a.lo.min(b.lo),
                hi: a.hi.min(b.hi),
            },
            Wrap::Safe,
        ),
        AluOp::Max => (
            Interval {
                lo: a.lo.max(b.lo),
                hi: a.hi.max(b.hi),
            },
            Wrap::Safe,
        ),
        AluOp::MinU => {
            if positive(a) && positive(b) {
                (
                    Interval {
                        lo: a.lo.min(b.lo),
                        hi: a.hi.min(b.hi),
                    },
                    Wrap::Safe,
                )
            } else {
                (FULL, Wrap::Safe)
            }
        }
        AluOp::MaxU => {
            if positive(a) && positive(b) {
                (
                    Interval {
                        lo: a.lo.max(b.lo),
                        hi: a.hi.max(b.hi),
                    },
                    Wrap::Safe,
                )
            } else {
                (FULL, Wrap::Safe)
            }
        }
        AluOp::Slt | AluOp::SltU => (Interval { lo: 0, hi: 1 }, Wrap::Safe),
        AluOp::MulHi => {
            let p = products(a, b);
            (
                Interval {
                    lo: p.iter().min().unwrap() >> 16,
                    hi: p.iter().max().unwrap() >> 16,
                },
                Wrap::Safe,
            )
        }
        AluOp::MulHiU => {
            if positive(a) && positive(b) {
                let p = products(a, b);
                (
                    Interval {
                        lo: p.iter().min().unwrap() >> 16,
                        hi: p.iter().max().unwrap() >> 16,
                    },
                    Wrap::Safe,
                )
            } else {
                (FULL, Wrap::Safe)
            }
        }
    }
}

/// Effective `b & 15` shift-count range.
fn shift_range(b: Interval) -> (u32, u32) {
    if b.lo >= 0 && b.hi <= 15 {
        (b.lo as u32, b.hi as u32)
    } else {
        (0, 15)
    }
}
