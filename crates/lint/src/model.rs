//! Configuration model: a decoded, indexed view of an object's preload
//! stream, built while running the structural pass (`RL-Sxxx`).
//!
//! The model mirrors what [`apply_preload`] on a `RingMachine` would
//! materialize — per-context Dnode microinstructions, crossbar routes and
//! capture selectors, plus per-Dnode modes and local-sequencer contents —
//! but is built without instantiating a machine. Records that fail a
//! structural check are diagnosed and left out of the model, so downstream
//! passes only ever see well-formed configuration.
//!
//! [`apply_preload`]: systolic_ring_isa::object::Preload

use std::collections::BTreeMap;

use systolic_ring_isa::dnode::{MicroInstr, LOCAL_SLOTS};
use systolic_ring_isa::object::{Object, Preload};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::RingGeometry;

use crate::diag::{Diagnostic, Severity, Site};
use crate::LintLimits;

/// Decoded configuration state, keyed the way the fabric is addressed.
pub(crate) struct ConfigModel {
    /// Effective geometry: the object's own, else the limits' fallback.
    pub geometry: Option<RingGeometry>,
    /// Effective context bound for this object (declared count, else the
    /// target's context count).
    pub ctx_limit: usize,
    /// `(ctx, dnode) -> microinstruction`.
    pub dnode_instrs: BTreeMap<(usize, usize), MicroInstr>,
    /// `(ctx, switch, lane, input) -> crossbar source`.
    pub routes: BTreeMap<(usize, usize, usize, usize), PortSource>,
    /// `(ctx, switch, port) -> capture selector`.
    pub captures: BTreeMap<(usize, usize, usize), HostCapture>,
    /// `dnode -> local mode?`.
    pub modes: BTreeMap<usize, bool>,
    /// `(dnode, slot) -> local-sequencer microinstruction`.
    pub local_slots: BTreeMap<(usize, usize), MicroInstr>,
    /// `dnode -> sequencer limit`.
    pub local_limits: BTreeMap<usize, u8>,
}

pub(crate) fn emit(
    diags: &mut Vec<Diagnostic>,
    code: &'static str,
    severity: Severity,
    site: Site,
    message: String,
    help: &'static str,
) {
    diags.push(Diagnostic {
        code,
        severity,
        site,
        message,
        help,
    });
}

impl ConfigModel {
    /// Builds the model from `object`, appending structural diagnostics.
    pub fn build(object: &Object, limits: &LintLimits, diags: &mut Vec<Diagnostic>) -> ConfigModel {
        let geometry = object.geometry.or(limits.geometry);
        let declared = object.contexts as usize;
        let ctx_limit = if declared == 0 {
            limits.contexts
        } else {
            declared
        };
        if declared > limits.contexts {
            emit(
                diags,
                "RL-S001",
                Severity::Error,
                Site::Object,
                format!(
                    "object declares {declared} contexts but the target provides only {}",
                    limits.contexts
                ),
                "lower the `.contexts` declaration or lint against a larger machine",
            );
        }
        if geometry.is_none() && !object.preload.is_empty() {
            emit(
                diags,
                "RL-S008",
                Severity::Warning,
                Site::Object,
                "object declares no ring geometry; fabric bounds cannot be checked".to_owned(),
                "declare `.ring LxW` in the source or lint with an explicit geometry",
            );
        }
        if object.code.len() > limits.prog_capacity {
            emit(
                diags,
                "RL-S007",
                Severity::Error,
                Site::Object,
                format!(
                    "controller program has {} words but program memory holds {}",
                    object.code.len(),
                    limits.prog_capacity
                ),
                "shrink the program or lint against a larger machine",
            );
        }
        if object.data.len() > limits.dmem_capacity {
            emit(
                diags,
                "RL-S007",
                Severity::Error,
                Site::Object,
                format!(
                    "initial data has {} words but data memory holds {}",
                    object.data.len(),
                    limits.dmem_capacity
                ),
                "shrink the data section or lint against a larger machine",
            );
        }

        let mut model = ConfigModel {
            geometry,
            ctx_limit,
            dnode_instrs: BTreeMap::new(),
            routes: BTreeMap::new(),
            captures: BTreeMap::new(),
            modes: BTreeMap::new(),
            local_slots: BTreeMap::new(),
            local_limits: BTreeMap::new(),
        };
        for (index, record) in object.preload.iter().enumerate() {
            model.apply(index, *record, limits, diags);
        }
        model
    }

    fn check_ctx(&self, index: usize, ctx: u16, diags: &mut Vec<Diagnostic>) -> Option<usize> {
        let ctx = ctx as usize;
        if ctx >= self.ctx_limit {
            emit(
                diags,
                "RL-S001",
                Severity::Error,
                Site::Preload { index },
                format!(
                    "context {ctx} out of range (object provides {} contexts)",
                    self.ctx_limit
                ),
                "raise the `.contexts` declaration or retarget the record",
            );
            return None;
        }
        Some(ctx)
    }

    fn check_dnode(&self, index: usize, dnode: u16, diags: &mut Vec<Diagnostic>) -> Option<usize> {
        let dnode = dnode as usize;
        if let Some(g) = self.geometry {
            if dnode >= g.dnodes() {
                emit(
                    diags,
                    "RL-S002",
                    Severity::Error,
                    Site::Preload { index },
                    format!(
                        "dnode {dnode} out of range (ring has {} dnodes)",
                        g.dnodes()
                    ),
                    "retarget the record to a dnode inside the declared geometry",
                );
                return None;
            }
        }
        Some(dnode)
    }

    fn check_switch(
        &self,
        index: usize,
        switch: u16,
        diags: &mut Vec<Diagnostic>,
    ) -> Option<usize> {
        let switch = switch as usize;
        if let Some(g) = self.geometry {
            if switch >= g.switches() {
                emit(
                    diags,
                    "RL-S003",
                    Severity::Error,
                    Site::Preload { index },
                    format!(
                        "switch {switch} out of range (ring has {} switches)",
                        g.switches()
                    ),
                    "retarget the record to a switch inside the declared geometry",
                );
                return None;
            }
        }
        Some(switch)
    }

    /// Bounds-checks the indices a decoded [`PortSource`] carries.
    fn check_source(&self, index: usize, source: PortSource, diags: &mut Vec<Diagnostic>) -> bool {
        let Some(g) = self.geometry else { return true };
        match source {
            PortSource::PrevOut { lane } if lane as usize >= g.width() => {
                emit(
                    diags,
                    "RL-S004",
                    Severity::Error,
                    Site::Preload { index },
                    format!("source lane {lane} out of range (width {})", g.width()),
                    "route from a lane inside the declared geometry",
                );
                false
            }
            PortSource::Pipe { switch, lane, .. } if switch as usize >= g.switches() => {
                emit(
                    diags,
                    "RL-S003",
                    Severity::Error,
                    Site::Preload { index },
                    format!(
                        "pipe source names switch {switch} (ring has {} switches); lane {lane}",
                        g.switches()
                    ),
                    "tap a feedback pipeline owned by a switch inside the geometry",
                );
                false
            }
            PortSource::Pipe { lane, .. } if lane as usize >= g.width() => {
                emit(
                    diags,
                    "RL-S004",
                    Severity::Error,
                    Site::Preload { index },
                    format!("pipe source lane {lane} out of range (width {})", g.width()),
                    "tap a lane inside the declared geometry",
                );
                false
            }
            PortSource::HostIn { port } if port as usize >= 2 * g.width() => {
                emit(
                    diags,
                    "RL-S004",
                    Severity::Error,
                    Site::Preload { index },
                    format!(
                        "host-input port {port} out of range (a switch has {} of them)",
                        2 * g.width()
                    ),
                    "feed from a host-input port inside the declared geometry",
                );
                false
            }
            _ => true,
        }
    }

    fn apply(
        &mut self,
        index: usize,
        record: Preload,
        _limits: &LintLimits,
        diags: &mut Vec<Diagnostic>,
    ) {
        match record {
            Preload::DnodeInstr { ctx, dnode, word } => {
                let (Some(ctx), Some(dnode)) = (
                    self.check_ctx(index, ctx, diags),
                    self.check_dnode(index, dnode, diags),
                ) else {
                    return;
                };
                let instr = match MicroInstr::decode(word) {
                    Ok(instr) => instr,
                    Err(e) => {
                        emit(
                            diags,
                            "RL-S005",
                            Severity::Error,
                            Site::Preload { index },
                            format!("malformed microinstruction word {word:#x}: {e}"),
                            "re-encode the record with `MicroInstr::encode`",
                        );
                        return;
                    }
                };
                if let Some(prev) = self.dnode_instrs.insert((ctx, dnode), instr) {
                    if prev != instr {
                        emit(
                            diags,
                            "RL-S006",
                            Severity::Warning,
                            Site::Preload { index },
                            format!(
                                "overwrites the microinstruction of ctx {ctx} dnode {dnode} \
                                 with a different word"
                            ),
                            "drop the earlier record; the last write wins at load time",
                        );
                    }
                }
            }
            Preload::SwitchPort {
                ctx,
                switch,
                lane,
                input,
                word,
            } => {
                let (Some(ctx), Some(switch)) = (
                    self.check_ctx(index, ctx, diags),
                    self.check_switch(index, switch, diags),
                ) else {
                    return;
                };
                let lane = lane as usize;
                if let Some(g) = self.geometry {
                    if lane >= g.width() {
                        emit(
                            diags,
                            "RL-S004",
                            Severity::Error,
                            Site::Preload { index },
                            format!("lane {lane} out of range (width {})", g.width()),
                            "route a lane inside the declared geometry",
                        );
                        return;
                    }
                }
                if input >= 4 {
                    emit(
                        diags,
                        "RL-S004",
                        Severity::Error,
                        Site::Preload { index },
                        format!(
                            "input selector {input} out of range (ports are in1/in2/fifo1/fifo2)"
                        ),
                        "use input 0..=3",
                    );
                    return;
                }
                let source = match PortSource::decode(word) {
                    Ok(source) => source,
                    Err(e) => {
                        emit(
                            diags,
                            "RL-S005",
                            Severity::Error,
                            Site::Preload { index },
                            format!("malformed port-source word {word:#x}: {e}"),
                            "re-encode the record with `PortSource::encode`",
                        );
                        return;
                    }
                };
                if !self.check_source(index, source, diags) {
                    return;
                }
                if let Some(prev) = self
                    .routes
                    .insert((ctx, switch, lane, input as usize), source)
                {
                    if prev != source {
                        emit(
                            diags,
                            "RL-S006",
                            Severity::Warning,
                            Site::Preload { index },
                            format!(
                                "overwrites the route of ctx {ctx} switch {switch} lane {lane} \
                                 input {input} with a different source"
                            ),
                            "drop the earlier record; the last write wins at load time",
                        );
                    }
                }
            }
            Preload::HostCapture {
                ctx,
                switch,
                port,
                word,
            } => {
                let (Some(ctx), Some(switch)) = (
                    self.check_ctx(index, ctx, diags),
                    self.check_switch(index, switch, diags),
                ) else {
                    return;
                };
                let port = port as usize;
                if let Some(g) = self.geometry {
                    if port >= g.width() {
                        emit(
                            diags,
                            "RL-S004",
                            Severity::Error,
                            Site::Preload { index },
                            format!(
                                "capture port {port} out of range (a switch has {} of them)",
                                g.width()
                            ),
                            "capture through a port inside the declared geometry",
                        );
                        return;
                    }
                }
                let capture = match HostCapture::decode(word) {
                    Ok(capture) => capture,
                    Err(e) => {
                        emit(
                            diags,
                            "RL-S005",
                            Severity::Error,
                            Site::Preload { index },
                            format!("malformed capture-selector word {word:#x}: {e}"),
                            "re-encode the record with `HostCapture::encode`",
                        );
                        return;
                    }
                };
                if let (Some(g), Some(lane)) = (self.geometry, capture.selected()) {
                    if lane as usize >= g.width() {
                        emit(
                            diags,
                            "RL-S004",
                            Severity::Error,
                            Site::Preload { index },
                            format!("captured lane {lane} out of range (width {})", g.width()),
                            "capture a lane inside the declared geometry",
                        );
                        return;
                    }
                }
                if let Some(prev) = self.captures.insert((ctx, switch, port), capture) {
                    if prev != capture {
                        emit(
                            diags,
                            "RL-S006",
                            Severity::Warning,
                            Site::Preload { index },
                            format!(
                                "overwrites the capture selector of ctx {ctx} switch {switch} \
                                 port {port} with a different lane"
                            ),
                            "drop the earlier record; the last write wins at load time",
                        );
                    }
                }
            }
            Preload::Mode { dnode, local } => {
                let Some(dnode) = self.check_dnode(index, dnode, diags) else {
                    return;
                };
                if let Some(prev) = self.modes.insert(dnode, local) {
                    if prev != local {
                        emit(
                            diags,
                            "RL-S006",
                            Severity::Warning,
                            Site::Preload { index },
                            format!("overwrites the mode of dnode {dnode}"),
                            "drop the earlier record; the last write wins at load time",
                        );
                    }
                }
            }
            Preload::LocalSlot { dnode, slot, word } => {
                let Some(dnode) = self.check_dnode(index, dnode, diags) else {
                    return;
                };
                if slot as usize >= LOCAL_SLOTS {
                    // Diagnosed by the sequencer pass (RL-Q001).
                    return;
                }
                let instr = match MicroInstr::decode(word) {
                    Ok(instr) => instr,
                    Err(e) => {
                        emit(
                            diags,
                            "RL-S005",
                            Severity::Error,
                            Site::Preload { index },
                            format!("malformed local-slot microinstruction {word:#x}: {e}"),
                            "re-encode the record with `MicroInstr::encode`",
                        );
                        return;
                    }
                };
                if let Some(prev) = self.local_slots.insert((dnode, slot as usize), instr) {
                    if prev != instr {
                        emit(
                            diags,
                            "RL-S006",
                            Severity::Warning,
                            Site::Preload { index },
                            format!("overwrites local slot {slot} of dnode {dnode}"),
                            "drop the earlier record; the last write wins at load time",
                        );
                    }
                }
            }
            Preload::LocalLimit { dnode, limit } => {
                let Some(dnode) = self.check_dnode(index, dnode, diags) else {
                    return;
                };
                if !(1..=LOCAL_SLOTS as u8).contains(&limit) {
                    // Diagnosed by the sequencer pass (RL-Q002).
                    return;
                }
                if let Some(prev) = self.local_limits.insert(dnode, limit) {
                    if prev != limit {
                        emit(
                            diags,
                            "RL-S006",
                            Severity::Warning,
                            Site::Preload { index },
                            format!("overwrites the sequencer limit of dnode {dnode}"),
                            "drop the earlier record; the last write wins at load time",
                        );
                    }
                }
            }
        }
    }
}
