//! Sequencer pass (`RL-Qxxx`): local-mode sequencer bounds, the
//! controller's context-switch graph, and a static walk of the controller
//! program itself.
//!
//! The controller walk builds a conservative control-flow graph from
//! address 0 — branches add both arms, absolute jumps add their target,
//! `jr` is resolved against the link addresses of reachable `jal`s — and
//! then checks every reachable instruction for statically certain faults:
//! undecodable words, transfers outside the program, and configuration
//! writes whose immediate operand is out of range for the declared
//! geometry (all of which raise `SimError`s the moment they execute).

use std::collections::BTreeSet;

use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
use systolic_ring_isa::dnode::LOCAL_SLOTS;
use systolic_ring_isa::object::{Object, Preload};

use crate::diag::{Diagnostic, Severity, Site};
use crate::model::{emit, ConfigModel};
use crate::LintLimits;

/// What the control-flow walk learned about the controller program.
pub(crate) struct CodeFacts {
    /// Decoded instruction per address; `Some` only for addresses that are
    /// both reachable and decodable.
    pub reachable: Vec<Option<CtrlInstr>>,
    /// Contexts a reachable `ctx` instruction can make active (always
    /// contains 0, the reset context).
    pub selectable: BTreeSet<usize>,
}

impl CodeFacts {
    /// Iterates reachable, decoded instructions with their addresses.
    pub fn instrs(&self) -> impl Iterator<Item = (usize, CtrlInstr)> + '_ {
        self.reachable
            .iter()
            .enumerate()
            .filter_map(|(addr, i)| i.map(|i| (addr, i)))
    }
}

pub(crate) fn check(
    object: &Object,
    model: &ConfigModel,
    limits: &LintLimits,
    diags: &mut Vec<Diagnostic>,
) -> CodeFacts {
    check_local_sequencers(object, model, diags);
    let facts = walk_code(object, diags);
    check_static_operands(&facts, model, limits, diags);
    check_context_graph(model, &facts, diags);
    facts
}

/// `RL-Q001`/`RL-Q002`/`RL-Q003`: local-sequencer slot, limit and replay
/// consistency (the paper caps stand-alone macro-operators at 8 slots).
fn check_local_sequencers(object: &Object, model: &ConfigModel, diags: &mut Vec<Diagnostic>) {
    for (index, record) in object.preload.iter().enumerate() {
        match *record {
            Preload::LocalSlot { dnode, slot, .. } if slot as usize >= LOCAL_SLOTS => emit(
                diags,
                "RL-Q001",
                Severity::Error,
                Site::Preload { index },
                format!(
                    "local-sequencer slot {slot} of dnode {dnode} out of range \
                     (a dnode has {LOCAL_SLOTS})"
                ),
                "local programs are limited to 8 microinstructions (S1..S8)",
            ),
            Preload::LocalLimit { dnode, limit } if !(1..=LOCAL_SLOTS as u8).contains(&limit) => {
                emit(
                    diags,
                    "RL-Q002",
                    Severity::Error,
                    Site::Preload { index },
                    format!("sequencer limit {limit} for dnode {dnode} outside 1..=8"),
                    "the LIMIT register counts replayed slots and must stay in 1..=8",
                )
            }
            _ => {}
        }
    }
    for (&dnode, &local) in &model.modes {
        if !local {
            continue;
        }
        let written: BTreeSet<usize> = model
            .local_slots
            .keys()
            .filter(|(d, _)| *d == dnode)
            .map(|&(_, slot)| slot)
            .collect();
        if written.is_empty() {
            emit(
                diags,
                "RL-Q003",
                Severity::Warning,
                Site::Dnode { ctx: None, dnode },
                "placed in local mode but its sequencer holds no program".to_owned(),
                "preload `.local` slots before arming local mode, or keep the dnode global",
            );
            continue;
        }
        let limit = model.local_limits.get(&dnode).copied().unwrap_or(1) as usize;
        let unwritten: Vec<usize> = (0..limit).filter(|s| !written.contains(s)).collect();
        if !unwritten.is_empty() {
            emit(
                diags,
                "RL-Q003",
                Severity::Warning,
                Site::Dnode { ctx: None, dnode },
                format!(
                    "sequencer limit {limit} replays slot(s) {unwritten:?} that were never \
                     written (they execute as NOPs)"
                ),
                "write every slot below the limit or lower the limit",
            );
        }
    }
}

/// Builds the reachability set and diagnoses `RL-Q005`/`RL-Q006`/`RL-Q007`.
fn walk_code(object: &Object, diags: &mut Vec<Diagnostic>) -> CodeFacts {
    let len = object.code.len();
    let mut reachable: Vec<Option<CtrlInstr>> = vec![None; len];
    let mut visited = vec![false; len];
    let mut selectable = BTreeSet::from([0usize]);
    if len == 0 {
        return CodeFacts {
            reachable,
            selectable,
        };
    }

    let mut worklist = vec![0usize];
    let mut jal_links: BTreeSet<usize> = BTreeSet::new();
    let mut jr_sites: Vec<usize> = Vec::new();
    let mut transfer_errors = false;

    let push = |worklist: &mut Vec<usize>,
                visited: &mut Vec<bool>,
                diags: &mut Vec<Diagnostic>,
                from: usize,
                target: u32,
                what: &str,
                errs: &mut bool| {
        let t = target as usize;
        if target as usize >= len {
            emit(
                diags,
                "RL-Q007",
                Severity::Error,
                Site::Code { addr: from },
                format!("{what} leaves the {len}-word program (target {target})"),
                "every reachable path must stay inside the program or end in `halt`",
            );
            *errs = true;
        } else if !visited[t] {
            visited[t] = true;
            worklist.push(t);
        }
    };

    visited[0] = true;
    while let Some(addr) = worklist.pop() {
        let word = object.code[addr];
        let instr = match CtrlInstr::decode(word) {
            Ok(instr) => instr,
            Err(e) => {
                emit(
                    diags,
                    "RL-Q006",
                    Severity::Error,
                    Site::Code { addr },
                    format!("reachable word {word:#010x} is not a valid instruction: {e}"),
                    "the controller raises BadInstruction when it fetches this word",
                );
                transfer_errors = true;
                continue;
            }
        };
        reachable[addr] = Some(instr);
        let fall = addr as u32 + 1;
        match instr {
            CtrlInstr::Halt => {}
            CtrlInstr::J { target } => push(
                &mut worklist,
                &mut visited,
                diags,
                addr,
                u32::from(target),
                "jump",
                &mut transfer_errors,
            ),
            CtrlInstr::Jal { target } => {
                if jal_links.insert(fall as usize) {
                    // A new link address: reconsider every `jr` seen so far.
                    for &jr in &jr_sites {
                        push(
                            &mut worklist,
                            &mut visited,
                            diags,
                            jr,
                            fall,
                            "return",
                            &mut transfer_errors,
                        );
                    }
                }
                push(
                    &mut worklist,
                    &mut visited,
                    diags,
                    addr,
                    u32::from(target),
                    "call",
                    &mut transfer_errors,
                );
            }
            CtrlInstr::Jr { .. } => {
                jr_sites.push(addr);
                if jal_links.is_empty() {
                    emit(
                        diags,
                        "RL-Q007",
                        Severity::Warning,
                        Site::Code { addr },
                        "jump-register with no statically known target; reachability past \
                         this point is approximate"
                            .to_owned(),
                        "prefer `jal`/`jr` pairs so the linter can follow returns",
                    );
                }
                for link in jal_links.clone() {
                    push(
                        &mut worklist,
                        &mut visited,
                        diags,
                        addr,
                        link as u32,
                        "return",
                        &mut transfer_errors,
                    );
                }
            }
            CtrlInstr::Beq { offset, .. }
            | CtrlInstr::Bne { offset, .. }
            | CtrlInstr::Blt { offset, .. }
            | CtrlInstr::Bge { offset, .. } => {
                let target = fall.wrapping_add(offset as i32 as u32);
                push(
                    &mut worklist,
                    &mut visited,
                    diags,
                    addr,
                    target,
                    "branch",
                    &mut transfer_errors,
                );
                push(
                    &mut worklist,
                    &mut visited,
                    diags,
                    addr,
                    fall,
                    "fall-through",
                    &mut transfer_errors,
                );
            }
            CtrlInstr::Ctx { ctx } => {
                selectable.insert(ctx as usize);
                push(
                    &mut worklist,
                    &mut visited,
                    diags,
                    addr,
                    fall,
                    "fall-through",
                    &mut transfer_errors,
                );
            }
            _ => push(
                &mut worklist,
                &mut visited,
                diags,
                addr,
                fall,
                "fall-through",
                &mut transfer_errors,
            ),
        }
    }

    // RL-Q005: dead words — only meaningful when the graph was fully
    // analyzable (transfer or decode errors already poison reachability).
    if !transfer_errors {
        let dead: Vec<usize> = (0..len).filter(|&a| !visited[a]).collect();
        if let Some(&first) = dead.first() {
            let n = dead.len();
            emit(
                diags,
                "RL-Q005",
                Severity::Warning,
                Site::Code { addr: first },
                format!("{n} code word(s) are unreachable from the entry point (first at {first})"),
                "delete the dead words or add a path that reaches them",
            );
        }
    }

    CodeFacts {
        reachable,
        selectable,
    }
}

/// `RL-Q008`: reachable configuration writes and memory accesses whose
/// operands are statically certain to fault.
fn check_static_operands(
    facts: &CodeFacts,
    model: &ConfigModel,
    limits: &LintLimits,
    diags: &mut Vec<Diagnostic>,
) {
    let geometry = model.geometry;
    let mut bad = |addr: usize, message: String| {
        emit(
            diags,
            "RL-Q008",
            Severity::Error,
            Site::Code { addr },
            message,
            "this instruction raises BadConfigWrite or DmemOutOfRange when it executes",
        );
    };
    for (addr, instr) in facts.instrs() {
        match instr {
            CtrlInstr::Wdn { dnode, .. }
            | CtrlInstr::Wmode { dnode, .. }
            | CtrlInstr::Wlim { dnode, .. } => {
                if let Some(g) = geometry {
                    if dnode as usize >= g.dnodes() {
                        bad(
                            addr,
                            format!(
                                "writes dnode {dnode}, but the ring has {} dnodes",
                                g.dnodes()
                            ),
                        );
                    }
                }
                if let CtrlInstr::Wlim { rs, .. } = instr {
                    if rs == CReg::ZERO {
                        bad(
                            addr,
                            "sets a sequencer limit from r0 (always 0, outside 1..=8)".to_owned(),
                        );
                    }
                }
            }
            CtrlInstr::Wloc { packed, .. } => {
                if let Some(g) = geometry {
                    let dnode = (packed >> 3) as usize;
                    if dnode >= g.dnodes() {
                        bad(
                            addr,
                            format!(
                                "writes local slot of dnode {dnode}, but the ring has {} dnodes",
                                g.dnodes()
                            ),
                        );
                    }
                }
            }
            CtrlInstr::Wsw { port, .. } => {
                if let Some(g) = geometry {
                    let flat_ports = g.switches() * g.width() * 4;
                    if port as usize >= flat_ports {
                        bad(
                            addr,
                            format!("writes crossbar port {port}, but the ring has {flat_ports}"),
                        );
                    }
                }
            }
            CtrlInstr::Who { switch, .. } | CtrlInstr::Hpop { switch, .. } => {
                if let Some(g) = geometry {
                    let (s, p) = ((switch >> 8) as usize, (switch & 0xff) as usize);
                    if s >= g.switches() || p >= g.width() {
                        bad(
                            addr,
                            format!(
                                "addresses host-output port {p} of switch {s} (ring has {} \
                                 switches of {} output ports)",
                                g.switches(),
                                g.width()
                            ),
                        );
                    }
                }
            }
            CtrlInstr::Hpush { switch, .. } => {
                if let Some(g) = geometry {
                    let (s, p) = ((switch >> 8) as usize, (switch & 0xff) as usize);
                    if s >= g.switches() || p >= 2 * g.width() {
                        bad(
                            addr,
                            format!(
                                "addresses host-input port {p} of switch {s} (ring has {} \
                                 switches of {} input ports)",
                                g.switches(),
                                2 * g.width()
                            ),
                        );
                    }
                }
            }
            CtrlInstr::Ctx { ctx } | CtrlInstr::Wctx { ctx } if ctx as usize >= model.ctx_limit => {
                bad(
                    addr,
                    format!(
                        "selects context {ctx}, but the object provides {} contexts",
                        model.ctx_limit
                    ),
                );
            }
            CtrlInstr::Lw { ra, imm, .. } | CtrlInstr::Sw { ra, imm, .. } if ra == CReg::ZERO => {
                let abs = imm as i32 as u32;
                if abs as usize >= limits.dmem_capacity {
                    bad(
                        addr,
                        format!(
                            "accesses data word {abs} ({imm} from r0), but data memory \
                             holds {} words",
                            limits.dmem_capacity
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// `RL-Q004`: contexts carrying configuration that no reachable `ctx`
/// instruction can ever make active.
fn check_context_graph(model: &ConfigModel, facts: &CodeFacts, diags: &mut Vec<Diagnostic>) {
    let mut configured: BTreeSet<usize> = BTreeSet::new();
    configured.extend(model.dnode_instrs.keys().map(|&(ctx, _)| ctx));
    configured.extend(model.routes.keys().map(|&(ctx, ..)| ctx));
    configured.extend(model.captures.keys().map(|&(ctx, ..)| ctx));
    for ctx in configured {
        if !facts.selectable.contains(&ctx) {
            emit(
                diags,
                "RL-Q004",
                Severity::Warning,
                Site::Ctx { ctx },
                "carries configuration, but no reachable `ctx` instruction ever selects it"
                    .to_owned(),
                "select the context from the controller program or drop its configuration",
            );
        }
    }
}
