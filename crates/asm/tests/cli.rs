//! End-to-end tests of the `srasm` binary: literate sources, the
//! `--check` mode, and the exact shape of file + line error reporting
//! for directive parse failures.

use std::path::PathBuf;
use std::process::{Command, Output};

fn srasm(args: &[&str], dir: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_srasm"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("srasm runs")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srasm-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

const GOOD_LITERATE: &str = "\
# Adder

```sr
.ring 4x2
route 0,0.in1 = host.0
node 0,0: add in1, #1 > out
capture 1 = lane 0
.code
wait 8
halt
;! input 0.0 = 1, 2
;! expect 1.0 contains 2, 3
;! cycles <= 32
```
";

#[test]
fn literate_source_assembles_to_an_object() {
    let dir = scratch("ok");
    std::fs::write(dir.join("adder.sr.md"), GOOD_LITERATE).expect("write");
    let out = srasm(&["adder.sr.md"], &dir);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The default object path strips the full `.sr.md` suffix.
    assert!(dir.join("adder.obj").exists());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("adder.sr.md -> adder.obj"), "{stdout}");
}

#[test]
fn check_mode_reports_expectations_and_writes_nothing() {
    let dir = scratch("check");
    std::fs::write(dir.join("adder.sr.md"), GOOD_LITERATE).expect("write");
    let out = srasm(&["adder.sr.md", "--check"], &dir);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!dir.join("adder.obj").exists(), "--check must not write");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("check ok"), "{stdout}");
    assert!(stdout.contains("1 inputs"), "{stdout}");
    assert!(stdout.contains("1 sink checks"), "{stdout}");
    assert!(stdout.contains("cycles <= 32"), "{stdout}");
    assert!(stdout.contains("tiers slow,decoded,fused"), "{stdout}");
}

/// A source that assembles fine but trips a lint *warning* (`RL-D002`:
/// the capture drains a lane no node ever drives).
const WARNING_LITERATE: &str = "\
# Undriven capture

```sr
.ring 4x2
route 0,0.in1 = host.0
capture 1 = lane 0
.code
wait 8
halt
```
";

/// `srasm --lint` and `ringlint` share one gate: warnings are denied by
/// default (exit 1), and `--allow-warnings` is the single escape hatch.
#[test]
fn lint_warnings_deny_by_default_with_allow_warnings_escape() {
    let dir = scratch("lintgate");
    std::fs::write(dir.join("undriven.sr.md"), WARNING_LITERATE).expect("write");

    let denied = srasm(&["undriven.sr.md", "--lint"], &dir);
    assert_eq!(denied.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&denied.stderr);
    assert!(stderr.contains("RL-D002"), "{stderr}");
    assert!(stderr.contains("lint failed"), "{stderr}");
    assert!(!dir.join("undriven.obj").exists(), "no object on failure");

    let allowed = srasm(&["undriven.sr.md", "--lint", "--allow-warnings"], &dir);
    assert_eq!(
        allowed.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&allowed.stderr)
    );
    // The finding still prints; only the gate is demoted.
    let stderr = String::from_utf8_lossy(&allowed.stderr);
    assert!(stderr.contains("RL-D002"), "{stderr}");
    assert!(
        dir.join("undriven.obj").exists(),
        "object written when allowed"
    );
}

/// The negative test pinning the diagnostic shape: a directive parse
/// failure must print as `srasm: <file>:line <N>: directive error
/// [SR-Mxxx]: ...`, with the line pointing into the original markdown.
#[test]
fn directive_failures_report_file_and_line() {
    let dir = scratch("neg");
    let source = GOOD_LITERATE.replace(";! cycles <= 32", ";! cycles about 9000");
    let line = source
        .lines()
        .position(|l| l.contains("about 9000"))
        .expect("marker present")
        + 1;
    std::fs::write(dir.join("bad.sr.md"), source).expect("write");
    let out = srasm(&["bad.sr.md"], &dir);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(&format!(
            "srasm: bad.sr.md:line {line}: directive error [SR-M004]:"
        )),
        "diagnostic shape changed:\n{stderr}"
    );
    assert!(!dir.join("bad.obj").exists());
}

#[test]
fn assembly_failures_in_literate_sources_point_into_the_markdown() {
    let dir = scratch("asmneg");
    let source = "# Doc\n\nprose\n\n```sr\nfrobnicate r1\n```\n";
    std::fs::write(dir.join("bad.sr.md"), source).expect("write");
    let out = srasm(&["bad.sr.md"], &dir);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("srasm: bad.sr.md:line 6:"),
        "line must index the markdown, not the extracted text:\n{stderr}"
    );
}
