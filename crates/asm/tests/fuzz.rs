//! Robustness: the assembler and object loader must never panic, whatever
//! bytes they are fed — they return diagnostics instead. On top of the
//! no-panic floor, two round-trip properties are fuzzed here:
//!
//! * **source round trip** — anything that assembles must lint,
//!   disassemble and reassemble to a byte-identical object with an
//!   identical lint report, and
//! * **container hardening** — truncating or bit-flipping a valid object
//!   image never panics the parser; every rejection is a specific
//!   [`ObjectError`](systolic_ring_isa::object::ObjectError) variant with
//!   a stable `SR-Oxxx` code, and every accept re-serializes faithfully.

use systolic_ring_asm::{assemble, disassemble};
use systolic_ring_harness::for_random_cases;
use systolic_ring_harness::testkit::TestRng;
use systolic_ring_isa::object::Object;
use systolic_ring_lint::lint_object;

/// Fragments that bias random programs towards almost-valid syntax, where
/// parser bugs hide.
const FRAGMENTS: [&str; 26] = [
    ".ring 4x2\n",
    ".ring 999x0\n",
    ".contexts 3\n",
    ".ctx 1\n",
    "node 0,0: mac in1, in2 > r0\n",
    "node 7,9: add\n",
    "route 0,0.in1 = host.0\n",
    "route 0,0.fifo9 = pipe[1,2].3\n",
    "capture 1 = lane 0\n",
    "capture 1.9 = off\n",
    ".local 0,0\n",
    ".endlocal\n",
    ".mode 0,0 local\n",
    ".code\n",
    "label:\n",
    "addi r1, r0, -5\n",
    "li r1, 0xffffffff\n",
    "beq r1, r2, label\n",
    "hpop r1, 300, 300\n",
    "wdn r1, 65535\n",
    ".data\n",
    ".word 1, -2, 0xdeadbeef\n",
    "halt\n",
    "#>=[](),.\n",
    "0x\n",
    "; comment // nested\n",
];

/// A random fragment soup: known almost-valid lines plus fully random
/// printable lines.
fn fragment_soup(rng: &mut TestRng) -> String {
    let count = rng.index(24);
    let mut out = String::new();
    for _ in 0..count {
        if rng.index(27) < 26 {
            let fragment: &&str = rng.choose(&FRAGMENTS);
            out.push_str(fragment);
        } else {
            let len = rng.index(25);
            for _ in 0..len {
                out.push((b' ' + rng.index(95) as u8) as char);
            }
            out.push('\n');
        }
    }
    out
}

fn random_bytes(rng: &mut TestRng, max_len: usize) -> Vec<u8> {
    let len = rng.index(max_len);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Arbitrary fragment soups assemble or fail cleanly, never panic.
#[test]
fn assembler_never_panics() {
    for_random_cases!(512, 0xa5a1, |rng| {
        let source = fragment_soup(rng);
        let _ = assemble(&source);
    });
}

/// Arbitrary byte soups never panic the object parser, and whatever parses
/// re-serializes to something that parses identically.
#[test]
fn object_parser_never_panics() {
    for_random_cases!(512, 0xa5a2, |rng| {
        let bytes = random_bytes(rng, 256);
        if let Ok(object) = Object::from_bytes(&bytes) {
            let round = Object::from_bytes(&object.to_bytes()).expect("round trip");
            assert_eq!(round, object);
        }
    });
}

/// Byte soups stamped with the magic exercise the record parser deeply;
/// still no panics.
#[test]
fn object_parser_survives_magic_prefixed_soup() {
    for_random_cases!(512, 0xa5a3, |rng| {
        let mut bytes = b"SRNGOBJ1".to_vec();
        bytes.extend(random_bytes(rng, 128));
        let _ = Object::from_bytes(&bytes);
    });
}

/// Anything that assembles also disassembles without panicking.
#[test]
fn disassembler_never_panics_on_assembled_output() {
    for_random_cases!(512, 0xa5a4, |rng| {
        let source = fragment_soup(rng);
        if let Ok(object) = assemble(&source) {
            let _ = disassemble(&object);
            // And the serialized form always reloads.
            let round = Object::from_bytes(&object.to_bytes()).expect("reload");
            assert_eq!(round, object);
        }
    });
}

/// The full tool-chain round trip: whatever assembles must lint,
/// disassemble and reassemble to a byte-identical object carrying an
/// identical lint report.
#[test]
fn assembled_objects_round_trip_with_identical_diagnostics() {
    let mut round_tripped = 0u32;
    for_random_cases!(512, 0xa5a5, |rng| {
        let source = fragment_soup(rng);
        let Ok(object) = assemble(&source) else {
            return;
        };
        let report = lint_object(&object);
        let text = disassemble(&object);
        let again = assemble(&text)
            .unwrap_or_else(|e| panic!("disassembly does not reassemble: {e}\n--\n{text}"));
        assert_eq!(again, object, "objects diverged\n--\n{text}");
        assert_eq!(again.to_bytes(), object.to_bytes(), "bytes diverged");
        assert_eq!(lint_object(&again), report, "lint reports diverged");
        round_tripped += 1;
    });
    assert!(
        round_tripped > 10,
        "soup assembled too rarely: {round_tripped}"
    );

    // Deterministic anchor: the rich source exercises every record family.
    let object = assemble(RICH_SOURCE).expect("rich source assembles");
    let again = assemble(&disassemble(&object)).expect("reassembles");
    assert_eq!(again.to_bytes(), object.to_bytes());
    assert_eq!(lint_object(&again), lint_object(&object));
}

/// A rich, fully featured source whose image seeds the container fuzzing.
const RICH_SOURCE: &str = "\
.ring 4x2
.contexts 2
route 0,0.in1 = host.0
route 0,0.in2 = host.1
route 1,0.in1 = prev.0
route 1,0.fifo1 = pipe[1,2].0
node 0,0: mac in1, in2 > r0
node 1,0: add in1, #7 > out
capture 1 = lane 0
.ctx 1
node 0,0: mov r0 > out, bus
.ctx 0
.local 0,1
  mov in1 > r2
  mac r2, #3 > r3, out
.endlocal
.mode 0,1 local
.code
start:
  addi r1, r0, 16
loop:
  addi r1, r1, -1
  bne r1, r0, loop
  halt
.data
  .word 1, -2, 0xdeadbeef
";

/// Truncating a valid object image at any length never panics; every
/// rejection carries a stable `SR-Oxxx` code and every accept
/// re-serializes faithfully.
#[test]
fn object_parser_rejects_every_truncation_cleanly() {
    let object = assemble(RICH_SOURCE).expect("rich source assembles");
    let bytes = object.to_bytes();
    let mut rejected = 0usize;
    for len in 0..bytes.len() {
        match Object::from_bytes(&bytes[..len]) {
            Err(e) => {
                assert!(
                    e.to_string().starts_with("SR-O"),
                    "truncation at {len}: unstable error code: {e}"
                );
                rejected += 1;
            }
            Ok(parsed) => {
                let round = Object::from_bytes(&parsed.to_bytes()).expect("round trip");
                assert_eq!(round, parsed, "truncation at {len}");
            }
        }
    }
    assert!(
        rejected >= bytes.len() / 2,
        "most truncations must be rejected ({rejected}/{})",
        bytes.len()
    );
}

/// Bit-flipping a valid object image never panics; rejections are
/// specific `SR-Oxxx` errors and accepts re-serialize faithfully.
#[test]
fn object_parser_survives_bit_flips() {
    let object = assemble(RICH_SOURCE).expect("rich source assembles");
    let bytes = object.to_bytes();
    let mut rejected = 0usize;
    for_random_cases!(1024, 0xa5a6, |rng| {
        let mut mutated = bytes.clone();
        // One to four random bit flips.
        for _ in 0..=rng.index(4) {
            let bit = rng.index(mutated.len() * 8);
            mutated[bit / 8] ^= 1 << (bit % 8);
        }
        match Object::from_bytes(&mutated) {
            Err(e) => {
                assert!(
                    e.to_string().starts_with("SR-O"),
                    "unstable error code: {e}"
                );
                rejected += 1;
            }
            Ok(parsed) => {
                let round = Object::from_bytes(&parsed.to_bytes()).expect("round trip");
                assert_eq!(round, parsed);
            }
        }
    });
    assert!(rejected > 0, "bit flips must produce some rejections");
}
