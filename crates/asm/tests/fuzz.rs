//! Robustness: the assembler and object loader must never panic, whatever
//! bytes they are fed — they return diagnostics instead.

use systolic_ring_asm::{assemble, disassemble};
use systolic_ring_harness::for_random_cases;
use systolic_ring_harness::testkit::TestRng;
use systolic_ring_isa::object::Object;

/// Fragments that bias random programs towards almost-valid syntax, where
/// parser bugs hide.
const FRAGMENTS: [&str; 26] = [
    ".ring 4x2\n",
    ".ring 999x0\n",
    ".contexts 3\n",
    ".ctx 1\n",
    "node 0,0: mac in1, in2 > r0\n",
    "node 7,9: add\n",
    "route 0,0.in1 = host.0\n",
    "route 0,0.fifo9 = pipe[1,2].3\n",
    "capture 1 = lane 0\n",
    "capture 1.9 = off\n",
    ".local 0,0\n",
    ".endlocal\n",
    ".mode 0,0 local\n",
    ".code\n",
    "label:\n",
    "addi r1, r0, -5\n",
    "li r1, 0xffffffff\n",
    "beq r1, r2, label\n",
    "hpop r1, 300, 300\n",
    "wdn r1, 65535\n",
    ".data\n",
    ".word 1, -2, 0xdeadbeef\n",
    "halt\n",
    "#>=[](),.\n",
    "0x\n",
    "; comment // nested\n",
];

/// A random fragment soup: known almost-valid lines plus fully random
/// printable lines.
fn fragment_soup(rng: &mut TestRng) -> String {
    let count = rng.index(24);
    let mut out = String::new();
    for _ in 0..count {
        if rng.index(27) < 26 {
            let fragment: &&str = rng.choose(&FRAGMENTS);
            out.push_str(fragment);
        } else {
            let len = rng.index(25);
            for _ in 0..len {
                out.push((b' ' + rng.index(95) as u8) as char);
            }
            out.push('\n');
        }
    }
    out
}

fn random_bytes(rng: &mut TestRng, max_len: usize) -> Vec<u8> {
    let len = rng.index(max_len);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Arbitrary fragment soups assemble or fail cleanly, never panic.
#[test]
fn assembler_never_panics() {
    for_random_cases!(512, 0xa5a1, |rng| {
        let source = fragment_soup(rng);
        let _ = assemble(&source);
    });
}

/// Arbitrary byte soups never panic the object parser, and whatever parses
/// re-serializes to something that parses identically.
#[test]
fn object_parser_never_panics() {
    for_random_cases!(512, 0xa5a2, |rng| {
        let bytes = random_bytes(rng, 256);
        if let Ok(object) = Object::from_bytes(&bytes) {
            let round = Object::from_bytes(&object.to_bytes()).expect("round trip");
            assert_eq!(round, object);
        }
    });
}

/// Byte soups stamped with the magic exercise the record parser deeply;
/// still no panics.
#[test]
fn object_parser_survives_magic_prefixed_soup() {
    for_random_cases!(512, 0xa5a3, |rng| {
        let mut bytes = b"SRNGOBJ1".to_vec();
        bytes.extend(random_bytes(rng, 128));
        let _ = Object::from_bytes(&bytes);
    });
}

/// Anything that assembles also disassembles without panicking.
#[test]
fn disassembler_never_panics_on_assembled_output() {
    for_random_cases!(512, 0xa5a4, |rng| {
        let source = fragment_soup(rng);
        if let Ok(object) = assemble(&source) {
            let _ = disassemble(&object);
            // And the serialized form always reloads.
            let round = Object::from_bytes(&object.to_bytes()).expect("reload");
            assert_eq!(round, object);
        }
    });
}
