//! Robustness: the assembler and object loader must never panic, whatever
//! bytes they are fed — they return diagnostics instead.

use proptest::prelude::*;

use systolic_ring_asm::{assemble, disassemble};
use systolic_ring_isa::object::Object;

/// Fragments that bias random programs towards almost-valid syntax, where
/// parser bugs hide.
fn fragmenty() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just(".ring 4x2\n".to_owned()),
        Just(".ring 999x0\n".to_owned()),
        Just(".contexts 3\n".to_owned()),
        Just(".ctx 1\n".to_owned()),
        Just("node 0,0: mac in1, in2 > r0\n".to_owned()),
        Just("node 7,9: add\n".to_owned()),
        Just("route 0,0.in1 = host.0\n".to_owned()),
        Just("route 0,0.fifo9 = pipe[1,2].3\n".to_owned()),
        Just("capture 1 = lane 0\n".to_owned()),
        Just("capture 1.9 = off\n".to_owned()),
        Just(".local 0,0\n".to_owned()),
        Just(".endlocal\n".to_owned()),
        Just(".mode 0,0 local\n".to_owned()),
        Just(".code\n".to_owned()),
        Just("label:\n".to_owned()),
        Just("addi r1, r0, -5\n".to_owned()),
        Just("li r1, 0xffffffff\n".to_owned()),
        Just("beq r1, r2, label\n".to_owned()),
        Just("hpop r1, 300, 300\n".to_owned()),
        Just("wdn r1, 65535\n".to_owned()),
        Just(".data\n".to_owned()),
        Just(".word 1, -2, 0xdeadbeef\n".to_owned()),
        Just("halt\n".to_owned()),
        Just("#>=[](),.\n".to_owned()),
        Just("0x\n".to_owned()),
        Just("; comment // nested\n".to_owned()),
        "[ -~]{0,24}\n".prop_map(|s| s),
    ];
    proptest::collection::vec(fragment, 0..24).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary fragment soups assemble or fail cleanly, never panic.
    #[test]
    fn assembler_never_panics(source in fragmenty()) {
        let _ = assemble(&source);
    }

    /// Arbitrary byte soups never panic the object parser, and whatever
    /// parses re-serializes to something that parses identically.
    #[test]
    fn object_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(object) = Object::from_bytes(&bytes) {
            let round = Object::from_bytes(&object.to_bytes()).expect("round trip");
            prop_assert_eq!(round, object);
        }
    }

    /// Byte soups stamped with the magic exercise the record parser deeply;
    /// still no panics.
    #[test]
    fn object_parser_survives_magic_prefixed_soup(
        tail in proptest::collection::vec(any::<u8>(), 0..128)
    ) {
        let mut bytes = b"SRNGOBJ1".to_vec();
        bytes.extend(tail);
        let _ = Object::from_bytes(&bytes);
    }

    /// Anything that assembles also disassembles without panicking.
    #[test]
    fn disassembler_never_panics_on_assembled_output(source in fragmenty()) {
        if let Ok(object) = assemble(&source) {
            let _ = disassemble(&object);
            // And the serialized form always reloads.
            let round = Object::from_bytes(&object.to_bytes()).expect("reload");
            prop_assert_eq!(round, object);
        }
    }
}
