//! Assembler tests: encoding round trips, diagnostics, and end-to-end
//! execution of assembled programs on the simulator.

use systolic_ring_asm::{assemble, disassemble, disassemble_code, AsmError, AsmErrorKind};
use systolic_ring_core::RingMachine;
use systolic_ring_isa::ctrl::CtrlInstr;
use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand, Reg};
use systolic_ring_isa::object::Preload;
use systolic_ring_isa::{RingGeometry, Word16};

fn kind_of(err: AsmError) -> AsmErrorKind {
    err.kind
}

#[test]
fn assembles_fabric_statements() {
    let object = assemble(
        ".ring 4x2
         .contexts 2
         .ctx 1
         node 1,0: mac in1, in2 > r0, out
         route 1,0.in1 = prev.1
         route 1,0.fifo2 = pipe[2,3].1
         capture 2 = lane 0
         capture 3 = off
        ",
    )
    .unwrap();
    assert_eq!(object.geometry, Some(RingGeometry::RING_8));
    assert_eq!(object.contexts, 2);
    assert_eq!(object.preload.len(), 5);
    match object.preload[0] {
        Preload::DnodeInstr {
            ctx: 1,
            dnode: 2,
            word,
        } => {
            let instr = MicroInstr::decode(word).unwrap();
            assert_eq!(instr.alu, AluOp::Mac);
            assert_eq!(instr.wr_reg, Some(Reg::R0));
            assert!(instr.wr_out);
        }
        ref other => panic!("unexpected record {other:?}"),
    }
    match object.preload[1] {
        Preload::SwitchPort {
            ctx: 1,
            switch: 1,
            lane: 0,
            input: 0,
            ..
        } => {}
        ref other => panic!("unexpected record {other:?}"),
    }
}

#[test]
fn assembles_micro_immediates_and_unaries() {
    let object = assemble(
        ".ring 2x1
         node 0,0: add in1, #-5 > r1
         node 1,0: abs r1 > out
         node 0,0: mov #42 > bus
         node 1,0: nop
        ",
    )
    .unwrap();
    let decode = |idx: usize| match object.preload[idx] {
        Preload::DnodeInstr { word, .. } => MicroInstr::decode(word).unwrap(),
        ref other => panic!("unexpected record {other:?}"),
    };
    let add = decode(0);
    assert_eq!(add.src_b, Operand::Imm);
    assert_eq!(add.imm, Word16::from_i16(-5));
    let abs = decode(1);
    assert_eq!(abs.alu, AluOp::Abs);
    assert_eq!(abs.src_a, Operand::Reg(Reg::R1));
    assert_eq!(abs.src_b, Operand::Zero);
    let mov = decode(2);
    assert_eq!(mov.alu, AluOp::PassA);
    assert!(mov.wr_bus);
    assert_eq!(mov.imm, Word16::from_i16(42));
    assert_eq!(decode(3).alu, AluOp::Nop);
}

#[test]
fn assembles_local_blocks() {
    let object = assemble(
        ".ring 4x2
         .local 2,1
           mac in1, in2 > r0
           mov r0 > out
         .endlocal
         .mode 2,1 local
        ",
    )
    .unwrap();
    // Two slots + limit + mode.
    assert_eq!(object.preload.len(), 4);
    let dnode = RingGeometry::RING_8.dnode_index(2, 1) as u16;
    assert!(matches!(
        object.preload[2],
        Preload::LocalLimit { dnode: d, limit: 2 } if d == dnode
    ));
    assert!(matches!(
        object.preload[3],
        Preload::Mode { dnode: d, local: true } if d == dnode
    ));
}

#[test]
fn assembles_controller_code_with_labels() {
    let object = assemble(
        ".ring 2x1
         .code
         start:
           li   r1, 0x12345
           addi r2, r0, 3
         loop:
           addi r2, r2, -1
           bne  r2, r0, loop
           j    end
           nop
         end:
           halt
        ",
    )
    .unwrap();
    // li = 2 words, so: lui, ori, addi, addi, bne, j, nop, halt.
    assert_eq!(object.code.len(), 8);
    let bne = CtrlInstr::decode(object.code[4]).unwrap();
    assert!(matches!(bne, CtrlInstr::Bne { offset: -2, .. }));
    let j = CtrlInstr::decode(object.code[5]).unwrap();
    assert!(matches!(j, CtrlInstr::J { target: 7 }));
}

#[test]
fn label_on_same_line_as_instruction() {
    let object = assemble(
        ".code
         top: addi r1, r1, 1
         j top
        ",
    )
    .unwrap();
    assert_eq!(object.code.len(), 2);
    assert!(matches!(
        CtrlInstr::decode(object.code[1]).unwrap(),
        CtrlInstr::J { target: 0 }
    ));
}

#[test]
fn data_section_words() {
    let object = assemble(
        ".code
         halt
         .data
         .word 1, 2, 0xdeadbeef
         .word -1
        ",
    )
    .unwrap();
    assert_eq!(object.data, vec![1, 2, 0xdead_beef, 0xffff_ffff]);
}

#[test]
fn diagnostics_carry_line_numbers() {
    let err = assemble(".ring 4x2\nnode 9,0: nop\n").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(matches!(err.kind, AsmErrorKind::Geometry(_)));

    let err = assemble(".code\n  frobnicate r1\n").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(matches!(kind_of(err), AsmErrorKind::UnknownMnemonic(_)));

    let err = assemble(".code\n j nowhere\n").unwrap_err();
    assert!(matches!(kind_of(err), AsmErrorKind::UndefinedLabel(_)));

    let err = assemble(".code\nx: nop\nx: nop\n").unwrap_err();
    assert!(matches!(kind_of(err), AsmErrorKind::DuplicateLabel(_)));

    let err = assemble(".code\n addi r1, r0, 99999\n").unwrap_err();
    assert!(matches!(kind_of(err), AsmErrorKind::OutOfRange { .. }));

    let err = assemble("node 0,0: nop\n").unwrap_err();
    assert!(matches!(kind_of(err), AsmErrorKind::Misplaced(_)));

    let err = assemble(".ring 4x2\n.local 0,0\n mac in1, in2\n").unwrap_err();
    assert!(matches!(kind_of(err), AsmErrorKind::Misplaced(_)));

    let err = assemble(".ring 4x2\nroute 0,0.in9 = bus\n").unwrap_err();
    assert!(matches!(kind_of(err), AsmErrorKind::Syntax(_)));

    let err = assemble(".ring 4x2\nnode 0,0: add #1, #2\n").unwrap_err();
    assert!(matches!(kind_of(err), AsmErrorKind::Syntax(_)));

    let err = assemble(".ring 1x1\n").unwrap_err();
    assert!(matches!(kind_of(err), AsmErrorKind::Geometry(_)));

    let err = assemble(".contexts 1\n.ctx 3\n").unwrap_err();
    assert!(matches!(kind_of(err), AsmErrorKind::Geometry(_)));
}

#[test]
fn same_immediate_may_be_repeated() {
    // `add #3, #3` uses the single imm field twice with the same value.
    let object = assemble(".ring 2x1\nnode 0,0: add #3, #3 > r0\n").unwrap();
    match object.preload[0] {
        Preload::DnodeInstr { word, .. } => {
            let instr = MicroInstr::decode(word).unwrap();
            assert_eq!(instr.src_a, Operand::Imm);
            assert_eq!(instr.src_b, Operand::Imm);
            assert_eq!(instr.imm, Word16::from_i16(3));
        }
        ref other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn end_to_end_assembled_program_runs() {
    // Full flow: source -> object -> bytes -> object -> machine -> result.
    // The fabric doubles a host stream and captures it; the controller
    // computes 10! % 2^32 in a loop and stores it to dmem[0].
    let source = "
        .ring 4x2
        .contexts 1
        route 0,0.in1 = host.0
        node 0,0: shl in1, one > out
        capture 1 = lane 0

        .code
          addi r1, r0, 10      ; n
          addi r2, r0, 1       ; acc
        fact:
          mul  r2, r2, r1
          addi r1, r1, -1
          bne  r1, r0, fact
          sw   r2, 0(r0)
          halt

        .data
          .word 0
    ";
    let object = assemble(source).unwrap();
    let bytes = object.to_bytes();
    let object = systolic_ring_isa::object::Object::from_bytes(&bytes).unwrap();

    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    m.load(&object).unwrap();
    m.open_sink(1, 0).unwrap();
    m.attach_input(0, 0, [3, 4, 5].map(Word16::from_i16))
        .unwrap();
    m.run_until_halt(200).unwrap();
    m.run(5).unwrap();

    assert_eq!(m.controller().dmem(0), Some(3_628_800));
    let sink: Vec<i16> = m
        .take_sink(1, 0)
        .unwrap()
        .iter()
        .map(|w| w.as_i16())
        .collect();
    assert!(sink.windows(3).any(|w| w == [6, 8, 10]), "sink = {sink:?}");
}

#[test]
fn local_mode_program_assembles_and_runs() {
    let source = "
        .ring 4x2
        route 0,0.in1 = host.0
        .local 0,0
          mac in1, #2 > r3
        .endlocal
        .mode 0,0 local
        .code
          wait 12
          halt
    ";
    let object = assemble(source).unwrap();
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    m.load(&object).unwrap();
    m.attach_input(0, 0, [1, 2, 3, 4].map(Word16::from_i16))
        .unwrap();
    m.run_until_halt(100).unwrap();
    assert_eq!(m.dnode(0).reg(Reg::R3).as_i16(), 2 * (1 + 2 + 3 + 4));
}

#[test]
fn disassembly_mentions_everything() {
    let source = "
        .ring 4x2
        node 0,0: absd in1, in2 > out
        route 0,0.in1 = host.1
        capture 1 = lane 0
        .mode 1,1 local
        .code
          addi r1, r0, 7
          halt
        .data
          .word 9
    ";
    let object = assemble(source).unwrap();
    let text = disassemble(&object);
    assert!(text.contains(".ring 4x2"));
    assert!(text.contains("node 0,0: absd in1, in2 > out"));
    assert!(text.contains("route 0,0.in1 = host.1"));
    assert!(text.contains("addi r1, r0, 7"));
    assert!(text.contains(".word"));

    // The disassembly is itself valid source that reproduces the object.
    assert_eq!(assemble(&text).unwrap(), object);

    let code_only = disassemble_code(&object.code);
    assert!(code_only.contains("halt"));
}

#[test]
fn disassembly_reassembles_for_ctrl_code() {
    // Every controller instruction printed by the disassembler must parse
    // back to the same word (for label-free instructions).
    let source = "
        .code
          add r1, r2, r3
          sub r4, r5, r6
          sll r1, r1, r2
          sltu r7, r8, r9
          addi r1, r0, -7
          andi r2, r2, 0xff
          lui r3, 0xbeef
          lw r4, -2(r5)
          sw r4, 3(r5)
          jr r15
          cimm 0x1234
          wctx 1
          wdn r1, 5
          wsw r1, 12
          who r1, 2
          wmode r1, 3
          wloc r1, 26
          wlim r1, 3
          ctx 1
          busw r1
          busr r2
          hpush r1, 2, 3
          hpop r2, 1
          wait 100
          nop
          halt
    ";
    let object = assemble(source).unwrap();
    let text = disassemble_code(&object.code);
    // Strip the "addr:" prefixes and reassemble.
    let mut body = String::from(".code\n");
    for line in text.lines() {
        let instr = line.split_once(':').unwrap().1.trim();
        body.push_str(instr);
        body.push('\n');
    }
    let object2 = assemble(&body).unwrap();
    assert_eq!(object.code, object2.code);
}

#[test]
fn equ_constants_substitute_everywhere() {
    let source = "
        .ring 4x2
        .equ GAIN 3
        .equ ROWS 10
        .equ SRC_LANE 0
        node 0,SRC_LANE: mul in1, #GAIN > out
        route 0,SRC_LANE.in1 = host.SRC_LANE
        .code
          addi r1, r0, ROWS
        loop:
          addi r1, r1, -1
          bne r1, r0, loop
          wait GAIN
          halt
    ";
    let object = assemble(source).unwrap();
    match object.preload[0] {
        Preload::DnodeInstr { dnode: 0, word, .. } => {
            let instr = MicroInstr::decode(word).unwrap();
            assert_eq!(instr.imm, Word16::from_i16(3));
        }
        ref other => panic!("unexpected {other:?}"),
    }
    assert!(matches!(
        CtrlInstr::decode(object.code[0]).unwrap(),
        CtrlInstr::Addi { imm: 10, .. }
    ));
    assert!(matches!(
        CtrlInstr::decode(object.code[3]).unwrap(),
        CtrlInstr::Wait { cycles: 3 }
    ));
}

#[test]
fn equ_rejects_reserved_names() {
    for bad in ["add", "r3", "in1", "halt", "node", "pipe"] {
        let err = assemble(&format!(".equ {bad} 1\n")).unwrap_err();
        assert!(
            matches!(err.kind, AsmErrorKind::Syntax(_)),
            "`{bad}` should be rejected, got {err:?}"
        );
    }
}

#[test]
fn equ_does_not_clobber_labels() {
    // A label sharing a constant's name still defines a jump target.
    let source = "
        .equ spot 7
        .code
        spot:
          addi r1, r0, spot
          j spot
        ";
    let object = assemble(source).unwrap();
    assert!(matches!(
        CtrlInstr::decode(object.code[0]).unwrap(),
        CtrlInstr::Addi { imm: 7, .. }
    ));
    // The jump target resolved to the substituted number 7 (the constant
    // wins in operand position) — document-by-test.
    assert!(matches!(
        CtrlInstr::decode(object.code[1]).unwrap(),
        CtrlInstr::J { target: 7 }
    ));
}
