//! Edge cases of the literate `.sr.md` front end: fence handling, line
//! endings, directive placement and the stable `SR-Mxxx` error codes.

use systolic_ring_asm::{
    assemble_source, extract_assembly, is_literate_name, literate, parse_expectations, AsmError,
    AsmErrorKind,
};

const MINIMAL_BODY: &str = "\
.ring 4x2
route 0,0.in1 = host.0
node 0,0: add in1, #1 > out
capture 1 = lane 0
.code
wait 8
halt
";

fn code_of(err: &AsmError) -> &'static str {
    match &err.kind {
        AsmErrorKind::Directive { code, .. } => code,
        other => panic!("expected a directive error, got {other:?}"),
    }
}

#[test]
fn literate_names_are_recognized_by_suffix() {
    assert!(is_literate_name("programs/squares.sr.md"));
    assert!(!is_literate_name("programs/fir3.sr"));
    assert!(!is_literate_name("README.md"));
}

#[test]
fn empty_fenced_blocks_are_harmless() {
    let md = format!("# Doc\n\n```sr\n```\n\nmore prose\n\n```sr\n{MINIMAL_BODY}```\n");
    let (object, _) = assemble_source("t.sr.md", &md).expect("assembles");
    assert!(object.geometry.is_some());
}

#[test]
fn multiple_blocks_concatenate_in_order() {
    let md = "\
intro

```sr
.ring 4x2
route 0,0.in1 = host.0
```

interlude prose

```sr
node 0,0: add in1, #1 > out
capture 1 = lane 0
```

```sr
.code
wait 8
halt
```
";
    let (object, _) = assemble_source("t.sr.md", md).expect("assembles");
    assert!(!object.code.is_empty());
    assert!(!object.preload.is_empty());
}

#[test]
fn directives_outside_fenced_blocks_are_prose() {
    let md =
        format!(";! cycles <= 1\n\n;! tiers warp\n\n```sr\n{MINIMAL_BODY};! cycles <= 99\n```\n");
    // The malformed `;! tiers warp` in prose is ignored; only the fenced
    // directive counts.
    let (_, exp) = assemble_source("t.sr.md", &md).expect("assembles");
    assert_eq!(exp.cycle_budget, Some(99));
}

#[test]
fn crlf_sources_extract_and_parse() {
    let md = format!(
        "# Doc\r\n\r\n```sr\r\n{}```\r\n",
        MINIMAL_BODY.replace('\n', "\r\n")
    );
    let (object, exp) = assemble_source("t.sr.md", &md).expect("assembles");
    assert!(object.geometry.is_some());
    assert!(exp.is_empty());
    // Directives survive CRLF too.
    let exp = parse_expectations(";! cycles <= 7\r\n").expect("parses");
    assert_eq!(exp.cycle_budget, Some(7));
}

#[test]
fn assembler_errors_point_into_the_markdown() {
    // Line 1: heading; line 2: blank; line 3: fence; line 4: bad mnemonic.
    let md = "# Doc\n\n```sr\nfrobnicate r1\n```\n";
    let err = assemble_source("t.sr.md", md).expect_err("must fail");
    assert_eq!(err.line, 4, "line number must index the original file");
}

#[test]
fn indented_fences_are_recognized() {
    let md = format!("prose\n  ```sr\n{MINIMAL_BODY}  ```\n");
    assert!(assemble_source("t.sr.md", &md).is_ok());
}

#[test]
fn the_malformed_directive_corpus_has_stable_codes() {
    // (source, expected stable code) — the negative corpus the issue
    // asks for, pinning each code at the public API boundary.
    let corpus: &[(&str, &str)] = &[
        ("```sr\n;! budget 5\n```\n", literate::E_UNKNOWN_DIRECTIVE),
        ("```sr\n;! input x.y = 1\n```\n", literate::E_BAD_PORT),
        ("```sr\n;! input 0.0 = 5..1\n```\n", literate::E_BAD_VALUES),
        ("```sr\n;! input 0.0 = 1*0\n```\n", literate::E_BAD_VALUES),
        ("```sr\n;! expect 1.0\n```\n", literate::E_BAD_VALUES),
        ("```sr\n;! cycles 100\n```\n", literate::E_BAD_CYCLES),
        ("```sr\n;! tiers slow, hyper\n```\n", literate::E_BAD_TIER),
        ("```sr\n;! tiers\n```\n", literate::E_BAD_TIER),
        (
            "```sr\n;! cycles <= 1\n;! cycles <= 2\n```\n",
            literate::E_DUPLICATE,
        ),
        ("```sr\nhalt\n", literate::E_UNCLOSED_FENCE),
        ("no code here\n", literate::E_NO_ASSEMBLY),
    ];
    for (source, expected) in corpus {
        let err = assemble_source("t.sr.md", source)
            .expect_err(&format!("`{}` must fail", source.escape_debug()));
        assert_eq!(code_of(&err), *expected, "source: {source}");
        // Every code is printable and machine-greppable.
        assert!(
            err.to_string().contains(expected),
            "display must carry the code: {err}"
        );
    }
}

#[test]
fn plain_sr_sources_carry_directives_too() {
    let source = format!("{MINIMAL_BODY};! input 0.0 = 1, 2\n;! expect 1.0 contains 2, 3\n");
    let (_, exp) = assemble_source("t.sr", &source).expect("assembles");
    assert_eq!(exp.inputs.len(), 1);
    assert_eq!(exp.sinks.len(), 1);
}

#[test]
fn extraction_blanks_prose_but_keeps_fenced_lines() {
    let md = "alpha\n```sr\nbeta\n```\ngamma\n";
    let text = extract_assembly(md).expect("extracts");
    assert_eq!(text, "\n\nbeta\n\n\n");
}
