//! Two-level assembler for the Systolic Ring.
//!
//! The paper's tool flow compiles one source file containing both **ring
//! level** primitives (Dnode microinstructions, switch routing, local
//! sequencer programs) and **RISC level** control code for the
//! configuration controller, producing machine object code (§5.1). This
//! crate reproduces that flow:
//!
//! * [`assemble`] — source text to a loadable
//!   [`systolic_ring_isa::object::Object`],
//! * [`disassemble`] / [`disassemble_code`] — object code back to text,
//! * [`literate`] — the literate `.sr.md` front end: fenced-block
//!   extraction plus `;!` expectation directives parsed into
//!   [`systolic_ring_isa::expect::Expectations`]
//!   (entry point: [`assemble_source`]).
//!
//! See [`assembler`](mod@crate::assembler) for the language reference.
//!
//! # Examples
//!
//! ```
//! use systolic_ring_asm::assemble;
//!
//! let object = assemble(
//!     ".ring 4x2
//!      .contexts 1
//!      route 0,0.in1 = host.0
//!      node 0,0: add in1, #100 > out
//!      capture 1 = lane 0
//!      .code
//!      wait 10
//!      halt
//! ")?;
//! assert!(object.geometry.is_some());
//! # Ok::<(), systolic_ring_asm::AsmError>(())
//! ```

pub mod assembler;
mod disasm;
mod error;
mod lexer;
pub mod literate;

pub use assembler::assemble;
pub use disasm::{disassemble, disassemble_code};
pub use error::{AsmError, AsmErrorKind};
pub use literate::{assemble_source, extract_assembly, is_literate_name, parse_expectations};
