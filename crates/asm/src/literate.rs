//! Literate program sources and embedded `;!` expectation directives.
//!
//! The corpus under `programs/` comes in two shapes:
//!
//! * plain `.sr` assembly, and
//! * literate `.sr.md` markdown, where prose documents the kernel and
//!   fenced <code>```sr</code> blocks hold the assembly. Extraction
//!   concatenates the fenced blocks and ignores everything else, while
//!   preserving source line numbers: prose lines become blank lines, so
//!   every [`AsmError`] points into the original markdown file.
//!
//! Both shapes may embed **expectation directives** — comment lines
//! starting with `;!` — that turn the program into a self-checking
//! conformance test (see [`systolic_ring_isa::expect`]):
//!
//! ```text
//! ;! input 0.0 = 1..20           ; attach a host input stream
//! ;! input 0.1 = 7, -3, 10*4     ; literals, ranges, value*count repeats
//! ;! expect 1.0 contains 3, 4    ; ordered-subsequence sink check
//! ;! expect 2.1 = 0, 1, 2        ; exact sink check
//! ;! cycles <= 600               ; simulated-cycle budget
//! ;! tiers slow, fused           ; restrict the tier sweep (default: all)
//! ;! note free-form remark       ; ignored, reserved for prose
//! ```
//!
//! Directives are ordinary comments to the assembler (the lexer drops
//! everything from `;`), so annotated sources assemble unchanged. In a
//! literate file, directives only count *inside* fenced `sr` blocks —
//! a `;!` line in prose is prose.
//!
//! Malformed directives fail with stable machine-readable codes
//! (`SR-M001`..`SR-M008`, the `Directive` variant of
//! [`AsmErrorKind`](crate::AsmErrorKind)) so
//! tooling and tests can pin them.

use systolic_ring_isa::expect::{Expectations, InputVector, SinkExpectation, SinkMatch, Tier};
use systolic_ring_isa::object::Object;

use crate::error::AsmError;

/// Stable code: unknown `;!` directive keyword.
pub const E_UNKNOWN_DIRECTIVE: &str = "SR-M001";
/// Stable code: malformed `switch.port` reference.
pub const E_BAD_PORT: &str = "SR-M002";
/// Stable code: malformed value list (literal, `a..b` range or
/// `value*count` repeat).
pub const E_BAD_VALUES: &str = "SR-M003";
/// Stable code: malformed `cycles <= N` bound.
pub const E_BAD_CYCLES: &str = "SR-M004";
/// Stable code: malformed or unknown tier list.
pub const E_BAD_TIER: &str = "SR-M005";
/// Stable code: duplicate directive (second `input` for the same port,
/// second `cycles`, second `tiers`).
pub const E_DUPLICATE: &str = "SR-M006";
/// Stable code: a fenced code block is never closed.
pub const E_UNCLOSED_FENCE: &str = "SR-M007";
/// Stable code: a literate source contains no fenced `sr` block.
pub const E_NO_ASSEMBLY: &str = "SR-M008";

/// `true` when `name` (a path or file name) denotes a literate
/// markdown source rather than plain assembly.
pub fn is_literate_name(name: &str) -> bool {
    name.ends_with(".sr.md")
}

/// Extracts the assembly from a literate markdown source.
///
/// Fenced <code>```sr</code> blocks are kept verbatim; every other line
/// (prose, fence markers, non-`sr` code blocks) is replaced by a blank
/// line, so the returned text has exactly as many lines as the input and
/// downstream [`AsmError`] line numbers point into the original file.
/// CRLF line endings are accepted.
///
/// Fails with [`E_UNCLOSED_FENCE`] when a fence is still open at end of
/// input and [`E_NO_ASSEMBLY`] when no `sr` block exists at all.
pub fn extract_assembly(markdown: &str) -> Result<String, AsmError> {
    #[derive(PartialEq)]
    enum Fence {
        None,
        Sr,
        Other,
    }
    let mut state = Fence::None;
    let mut fence_line = 0;
    let mut saw_sr_block = false;
    let mut out = String::with_capacity(markdown.len());
    let mut lines = 0usize;
    for (idx, raw) in markdown.lines().enumerate() {
        lines += 1;
        let line = raw.strip_suffix('\r').unwrap_or(raw);
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            state = match state {
                Fence::None => {
                    fence_line = idx + 1;
                    let info = trimmed.trim_start_matches('`').trim();
                    if info == "sr" {
                        saw_sr_block = true;
                        Fence::Sr
                    } else {
                        Fence::Other
                    }
                }
                Fence::Sr | Fence::Other => Fence::None,
            };
            out.push('\n');
            continue;
        }
        if state == Fence::Sr {
            out.push_str(line);
        }
        out.push('\n');
    }
    if state != Fence::None {
        return Err(AsmError::directive(
            fence_line,
            E_UNCLOSED_FENCE,
            "fenced code block is never closed",
        ));
    }
    if !saw_sr_block {
        return Err(AsmError::directive(
            lines.max(1),
            E_NO_ASSEMBLY,
            "literate source contains no ```sr code block",
        ));
    }
    Ok(out)
}

/// Parses every `;!` directive in an assembly text into an
/// [`Expectations`] block.
///
/// For literate sources, call this on the output of
/// [`extract_assembly`] (directives in prose have already been blanked
/// out there); for plain `.sr` sources, call it on the raw text.
pub fn parse_expectations(assembly: &str) -> Result<Expectations, AsmError> {
    let mut exp = Expectations::default();
    for (idx, raw) in assembly.lines().enumerate() {
        let line = idx + 1;
        let text = raw.strip_suffix('\r').unwrap_or(raw).trim();
        let Some(rest) = text.strip_prefix(";!") else {
            continue;
        };
        parse_directive(line, rest.trim(), &mut exp)?;
    }
    Ok(exp)
}

/// Parses one directive body (the text after `;!`).
fn parse_directive(line: usize, body: &str, exp: &mut Expectations) -> Result<(), AsmError> {
    let (keyword, rest) = match body.split_once(char::is_whitespace) {
        Some((k, r)) => (k, r.trim()),
        None => (body, ""),
    };
    match keyword {
        "input" => parse_input(line, rest, exp),
        "expect" => parse_expect(line, rest, exp),
        "cycles" => parse_cycles(line, rest, exp),
        "tiers" => parse_tiers(line, rest, exp),
        // Reserved for free-form remarks that ride along with the
        // machine-readable directives.
        "note" => Ok(()),
        other => Err(AsmError::directive(
            line,
            E_UNKNOWN_DIRECTIVE,
            format!("unknown directive `{other}` (expected input, expect, cycles, tiers or note)"),
        )),
    }
}

/// `;! input S.P = values`
fn parse_input(line: usize, rest: &str, exp: &mut Expectations) -> Result<(), AsmError> {
    let Some((port_text, values_text)) = rest.split_once('=') else {
        return Err(AsmError::directive(
            line,
            E_BAD_VALUES,
            "input directive needs `= v0, v1, ...`",
        ));
    };
    let (switch, port) = parse_port(line, port_text.trim())?;
    if exp
        .inputs
        .iter()
        .any(|i| i.switch == switch && i.port == port)
    {
        return Err(AsmError::directive(
            line,
            E_DUPLICATE,
            format!("duplicate input directive for port {switch}.{port}"),
        ));
    }
    let words = parse_values(line, values_text)?;
    exp.inputs.push(InputVector {
        switch,
        port,
        words,
    });
    Ok(())
}

/// `;! expect S.P = values` (exact) or `;! expect S.P contains values`.
fn parse_expect(line: usize, rest: &str, exp: &mut Expectations) -> Result<(), AsmError> {
    let (port_text, tail) = match rest.split_once(char::is_whitespace) {
        Some((p, t)) => (p, t.trim()),
        None => (rest, ""),
    };
    // Tolerate `1.0= 5` (no space before the `=`).
    let (port_text, tail) = match port_text.split_once('=') {
        Some((p, glued)) => (p, format!("= {glued} {tail}")),
        None => (port_text, tail.to_owned()),
    };
    let (switch, port) = parse_port(line, port_text.trim())?;
    let (matcher, values_text) = if let Some(values) = tail.trim().strip_prefix('=') {
        (SinkMatch::Exact, values.to_owned())
    } else if let Some(values) = tail.trim().strip_prefix("contains") {
        (SinkMatch::Contains, values.to_owned())
    } else {
        return Err(AsmError::directive(
            line,
            E_BAD_VALUES,
            "expect directive needs `= v0, ...` or `contains v0, ...`",
        ));
    };
    let values = parse_values(line, &values_text)?;
    exp.sinks.push(SinkExpectation {
        switch,
        port,
        matcher,
        values,
    });
    Ok(())
}

/// `;! cycles <= N`
fn parse_cycles(line: usize, rest: &str, exp: &mut Expectations) -> Result<(), AsmError> {
    if exp.cycle_budget.is_some() {
        return Err(AsmError::directive(
            line,
            E_DUPLICATE,
            "duplicate cycles directive",
        ));
    }
    let bound = rest
        .strip_prefix("<=")
        .map(str::trim)
        .and_then(|n| n.parse::<u64>().ok())
        .filter(|&n| n > 0);
    match bound {
        Some(n) => {
            exp.cycle_budget = Some(n);
            Ok(())
        }
        None => Err(AsmError::directive(
            line,
            E_BAD_CYCLES,
            format!("cycles directive needs `<= N` with N > 0, got `{rest}`"),
        )),
    }
}

/// `;! tiers slow, decoded, fused`
fn parse_tiers(line: usize, rest: &str, exp: &mut Expectations) -> Result<(), AsmError> {
    if !exp.tiers.is_empty() {
        return Err(AsmError::directive(
            line,
            E_DUPLICATE,
            "duplicate tiers directive",
        ));
    }
    let mut tiers = Vec::new();
    for name in rest.split(',').map(str::trim) {
        let Some(tier) = Tier::parse(name) else {
            return Err(AsmError::directive(
                line,
                E_BAD_TIER,
                format!("unknown tier `{name}` (expected slow, decoded or fused)"),
            ));
        };
        if !tiers.contains(&tier) {
            tiers.push(tier);
        }
    }
    if tiers.is_empty() {
        return Err(AsmError::directive(line, E_BAD_TIER, "empty tier list"));
    }
    exp.tiers = tiers;
    Ok(())
}

/// Parses a `switch.port` reference (`1.0`) or bare switch (`1`, port 0).
fn parse_port(line: usize, text: &str) -> Result<(usize, usize), AsmError> {
    let bad = || {
        AsmError::directive(
            line,
            E_BAD_PORT,
            format!("malformed port reference `{text}` (expected `switch.port`)"),
        )
    };
    match text.split_once('.') {
        Some((s, p)) => {
            let switch = s.parse::<usize>().map_err(|_| bad())?;
            let port = p.parse::<usize>().map_err(|_| bad())?;
            Ok((switch, port))
        }
        None => {
            let switch = text.parse::<usize>().map_err(|_| bad())?;
            Ok((switch, 0))
        }
    }
}

/// Parses a comma-separated value list. Each item is a signed literal
/// (`-3`), an inclusive ascending range (`1..20`) or a repeat
/// (`value*count`, e.g. `10*80`).
fn parse_values(line: usize, text: &str) -> Result<Vec<i16>, AsmError> {
    let bad = |item: &str| {
        AsmError::directive(
            line,
            E_BAD_VALUES,
            format!("malformed value `{item}` (expected INT, INT..INT or VALUE*COUNT)"),
        )
    };
    let mut values = Vec::new();
    for item in text.split(',') {
        let item = item.trim();
        if item.is_empty() {
            return Err(bad(item));
        }
        if let Some((lo, hi)) = item.split_once("..") {
            let lo: i16 = lo.trim().parse().map_err(|_| bad(item))?;
            let hi: i16 = hi.trim().parse().map_err(|_| bad(item))?;
            if lo > hi {
                return Err(bad(item));
            }
            values.extend(lo..=hi);
        } else if let Some((value, count)) = item.split_once('*') {
            let value: i16 = value.trim().parse().map_err(|_| bad(item))?;
            let count: usize = count.trim().parse().map_err(|_| bad(item))?;
            if count == 0 || count > 65_536 {
                return Err(bad(item));
            }
            values.extend(std::iter::repeat_n(value, count));
        } else {
            values.push(item.parse::<i16>().map_err(|_| bad(item))?);
        }
    }
    Ok(values)
}

/// Assembles a source of either shape — literate `.sr.md` markdown or
/// plain `.sr` assembly, selected by `name` — and returns the object
/// together with its parsed [`Expectations`].
pub fn assemble_source(name: &str, text: &str) -> Result<(Object, Expectations), AsmError> {
    let extracted;
    let assembly = if is_literate_name(name) {
        extracted = extract_assembly(text)?;
        extracted.as_str()
    } else {
        text
    };
    let expectations = parse_expectations(assembly)?;
    let object = crate::assemble(assembly)?;
    Ok((object, expectations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::AsmErrorKind;

    fn directive_code(err: AsmError) -> &'static str {
        match err.kind {
            AsmErrorKind::Directive { code, .. } => code,
            other => panic!("expected directive error, got {other:?}"),
        }
    }

    #[test]
    fn extraction_preserves_line_numbers() {
        let md = "# Title\n\n```sr\n.ring 4x2\n```\nprose\n```sr\nhalt\n```\n";
        let asm = extract_assembly(md).unwrap();
        let lines: Vec<&str> = asm.lines().collect();
        assert_eq!(lines.len(), 9);
        assert_eq!(lines[3], ".ring 4x2", "line 4 of md is line 4 of asm");
        assert_eq!(lines[7], "halt");
        assert!(lines[0].is_empty() && lines[5].is_empty());
    }

    #[test]
    fn non_sr_fences_are_prose() {
        let md = "```text\nnot assembly\n```\n```sr\n.ring 4x2\n```\n";
        let asm = extract_assembly(md).unwrap();
        assert!(!asm.contains("not assembly"));
        assert!(asm.contains(".ring 4x2"));
    }

    #[test]
    fn unclosed_fence_reports_the_fence_line() {
        let err = extract_assembly("para\n```sr\nhalt\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(directive_code(err), E_UNCLOSED_FENCE);
    }

    #[test]
    fn literate_source_without_assembly_is_rejected() {
        let err = extract_assembly("just prose\n").unwrap_err();
        assert_eq!(directive_code(err), E_NO_ASSEMBLY);
    }

    #[test]
    fn value_lists_support_ranges_and_repeats() {
        let exp = parse_expectations(";! input 0.0 = 1..4, -2, 7*3\n").unwrap();
        assert_eq!(exp.inputs[0].words, vec![1, 2, 3, 4, -2, 7, 7, 7]);
    }

    #[test]
    fn full_directive_block_parses() {
        let exp = parse_expectations(
            ";! input 0.0 = 1, 2\n\
             ;! input 0.1 = 3\n\
             ;! expect 1.0 contains 4, 5\n\
             ;! expect 2.1 = 6\n\
             ;! cycles <= 100\n\
             ;! tiers slow, fused\n\
             ;! note anything at all\n",
        )
        .unwrap();
        assert_eq!(exp.inputs.len(), 2);
        assert_eq!(exp.sinks.len(), 2);
        assert_eq!(exp.sinks[0].matcher, SinkMatch::Contains);
        assert_eq!(exp.sinks[1].matcher, SinkMatch::Exact);
        assert_eq!(exp.sinks[1].switch, 2);
        assert_eq!(exp.sinks[1].port, 1);
        assert_eq!(exp.cycle_budget, Some(100));
        assert_eq!(exp.tiers, vec![Tier::Slow, Tier::Fused]);
    }

    #[test]
    fn malformed_directives_carry_stable_codes() {
        let cases: [(&str, &str); 8] = [
            (";! frobnicate 1", E_UNKNOWN_DIRECTIVE),
            (";! input zero.0 = 1", E_BAD_PORT),
            (";! input 0.0 = 1, banana", E_BAD_VALUES),
            (";! expect 1.0 is 5", E_BAD_VALUES),
            (";! cycles >= 100", E_BAD_CYCLES),
            (";! cycles <= 0", E_BAD_CYCLES),
            (";! tiers warp", E_BAD_TIER),
            (";! input 0.0 = 1\n;! input 0.0 = 2", E_DUPLICATE),
        ];
        for (source, code) in cases {
            let err = parse_expectations(source).expect_err(&format!("`{source}` should fail"));
            assert_eq!(directive_code(err), code, "source: {source}");
        }
    }

    #[test]
    fn directive_errors_report_the_source_line() {
        let err = parse_expectations("halt\n\n;! cycles banana\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn plain_comments_are_not_directives() {
        let exp = parse_expectations("; plain comment\n;; also plain\nhalt\n").unwrap();
        assert!(exp.is_empty());
    }
}
