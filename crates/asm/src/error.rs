//! Assembler diagnostics.

use std::fmt;

/// An assembly diagnostic, carrying the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending source line.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// Categories of assembly errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// A token could not be lexed.
    BadToken(String),
    /// A malformed number literal.
    BadNumber(String),
    /// The line does not match any accepted form.
    Syntax(String),
    /// Unknown mnemonic or directive.
    UnknownMnemonic(String),
    /// An immediate or index does not fit its field.
    OutOfRange {
        /// What was being encoded.
        what: String,
        /// The offending value.
        value: i64,
    },
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A directive appeared in the wrong section or order.
    Misplaced(String),
    /// The program used a Dnode/switch/context outside the declared
    /// geometry.
    Geometry(String),
    /// A `;!` expectation directive (or literate fencing) is malformed.
    /// Carries a stable machine-readable code (`SR-Mxxx`, see
    /// [`literate`](crate::literate)).
    Directive {
        /// Stable error code, e.g. `SR-M003`.
        code: &'static str,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::BadToken(t) => write!(f, "unrecognized token `{t}`"),
            AsmErrorKind::BadNumber(t) => write!(f, "malformed number `{t}`"),
            AsmErrorKind::Syntax(msg) => write!(f, "syntax error: {msg}"),
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::OutOfRange { what, value } => {
                write!(f, "{what} value {value} out of range")
            }
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmErrorKind::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmErrorKind::Misplaced(msg) => write!(f, "misplaced directive: {msg}"),
            AsmErrorKind::Geometry(msg) => write!(f, "geometry error: {msg}"),
            AsmErrorKind::Directive { code, msg } => {
                write!(f, "directive error [{code}]: {msg}")
            }
        }
    }
}

impl std::error::Error for AsmError {}

impl AsmError {
    /// Creates an error at `line`.
    pub fn new(line: usize, kind: AsmErrorKind) -> Self {
        AsmError { line, kind }
    }

    /// Shorthand for a syntax error.
    pub fn syntax(line: usize, msg: impl Into<String>) -> Self {
        AsmError::new(line, AsmErrorKind::Syntax(msg.into()))
    }

    /// Shorthand for an expectation-directive error with its stable code.
    pub fn directive(line: usize, code: &'static str, msg: impl Into<String>) -> Self {
        AsmError::new(
            line,
            AsmErrorKind::Directive {
                code,
                msg: msg.into(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_number() {
        let err = AsmError::syntax(12, "expected operand");
        assert_eq!(err.to_string(), "line 12: syntax error: expected operand");
        let err = AsmError::new(
            3,
            AsmErrorKind::OutOfRange {
                what: "immediate".into(),
                value: 70000,
            },
        );
        assert!(err.to_string().contains("70000"));
    }
}
