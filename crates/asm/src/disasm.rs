//! Disassembler: object code back to assembler source.
//!
//! [`disassemble`] renders a whole [`Object`] as a program the assembler
//! accepts again: for any object the assembler itself produced,
//! `assemble(&disassemble(&object))` reproduces the original byte for
//! byte (the round-trip property the fuzz suite enforces). Records the
//! assembler's grammar cannot express — undecodable words, missing
//! geometry, pathological branch targets — degrade to `;`-comments, so
//! the output is always printable even for foreign objects.
//!
//! [`disassemble_code`] keeps the traditional addressed listing format
//! for humans reading controller programs.

use systolic_ring_isa::ctrl::CtrlInstr;
use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand};
use systolic_ring_isa::object::{Object, Preload};
use systolic_ring_isa::switch::{HostCapture, PortSource};

/// Disassembles a controller program as an addressed listing;
/// undecodable words are shown as `.word 0x...`.
pub fn disassemble_code(code: &[u32]) -> String {
    let mut out = String::new();
    for (addr, word) in code.iter().enumerate() {
        match CtrlInstr::decode(*word) {
            Ok(instr) => out.push_str(&format!("{addr:5}:  {instr}\n")),
            Err(_) => out.push_str(&format!("{addr:5}:  .word {word:#010x}\n")),
        }
    }
    out
}

/// Renders a whole object as reassemblable source: geometry and context
/// declarations, fabric preloads, controller code and data.
pub fn disassemble(object: &Object) -> String {
    let mut out = String::new();
    match object.geometry {
        Some(g) => out.push_str(&format!(".ring {}x{}\n", g.layers(), g.width())),
        None => out.push_str("; geometry: unspecified\n"),
    }
    out.push_str(&format!(".contexts {}\n", object.contexts));

    if !object.preload.is_empty() {
        out.push('\n');
        if object.geometry.is_some() {
            emit_preloads(object, &mut out);
        } else {
            // Fabric statements need a declared geometry; without one the
            // records can only be shown, not reassembled.
            for record in &object.preload {
                out.push_str(&format!("; (no geometry) {record:?}\n"));
            }
        }
    }

    if !object.code.is_empty() {
        out.push_str("\n.code\n");
        for (addr, &word) in object.code.iter().enumerate() {
            match code_line(addr, word) {
                Some(line) => out.push_str(&format!("  {line}\n")),
                None => out.push_str(&format!("  ; {addr}: .word {word:#010x} (inexpressible)\n")),
            }
        }
    }

    if !object.data.is_empty() {
        out.push_str("\n.data\n");
        for word in &object.data {
            out.push_str(&format!("  .word {word:#010x}\n"));
        }
    }
    out
}

/// Emits the preload stream in order, tracking the active `.ctx` and
/// folding `LocalSlot` + `LocalLimit` runs back into `.local` blocks.
fn emit_preloads(object: &Object, out: &mut String) {
    let g = object.geometry.expect("caller checked geometry");
    let pos = |dnode: u16| -> Option<(usize, usize)> {
        ((dnode as usize) < g.dnodes()).then(|| g.dnode_position(dnode as usize))
    };
    let fallback = |record: &Preload, out: &mut String| {
        out.push_str(&format!("; {record:?} (inexpressible)\n"));
    };
    // Emits a `.ctx` transition plus the statement, or a comment when the
    // record's context is not declarable (`.ctx K` needs `K < contexts`).
    let mut current_ctx = 0u16;
    let mut stmt = |ctx: u16, line: Option<String>, record: &Preload, out: &mut String| match line {
        Some(line) if ctx < object.contexts => {
            if ctx != current_ctx {
                out.push_str(&format!(".ctx {ctx}\n"));
                current_ctx = ctx;
            }
            out.push_str(&line);
            out.push('\n');
        }
        _ => fallback(record, out),
    };

    let records = &object.preload;
    let mut i = 0;
    while i < records.len() {
        let record = &records[i];
        match *record {
            Preload::DnodeInstr { ctx, dnode, word } => {
                let line = pos(dnode).and_then(|(layer, lane)| {
                    let micro = micro_text(&MicroInstr::decode(word).ok()?)?;
                    Some(format!("node {layer},{lane}: {micro}"))
                });
                stmt(ctx, line, record, out);
            }
            Preload::SwitchPort {
                ctx,
                switch,
                lane,
                input,
                word,
            } => {
                let line = ["in1", "in2", "fifo1", "fifo2"]
                    .get(input as usize)
                    .and_then(|port| {
                        let source = source_text(PortSource::decode(word).ok()?, g.switches())?;
                        ((switch as usize) < g.switches() && (lane as usize) < g.width())
                            .then(|| format!("route {switch},{lane}.{port} = {source}"))
                    });
                stmt(ctx, line, record, out);
            }
            Preload::HostCapture {
                ctx,
                switch,
                port,
                word,
            } => {
                let line = HostCapture::decode(word).ok().and_then(|cap| {
                    if (switch as usize) >= g.switches() || (port as usize) >= g.width() {
                        return None;
                    }
                    let what = match cap.selected() {
                        Some(lane) if (lane as usize) < g.width() => format!("lane {lane}"),
                        Some(_) => return None,
                        None => "off".to_owned(),
                    };
                    Some(format!("capture {switch}.{port} = {what}"))
                });
                stmt(ctx, line, record, out);
            }
            Preload::Mode { dnode, local } => match pos(dnode) {
                Some((layer, lane)) => out.push_str(&format!(
                    ".mode {layer},{lane} {}\n",
                    if local { "local" } else { "global" }
                )),
                None => fallback(record, out),
            },
            Preload::LocalSlot { dnode, .. } => match local_block(records, i, dnode) {
                Some((lines, consumed)) => {
                    let (layer, lane) = pos(dnode).expect("local_block checked bounds");
                    out.push_str(&format!(".local {layer},{lane}\n"));
                    for line in lines {
                        out.push_str(&format!("  {line}\n"));
                    }
                    out.push_str(".endlocal\n");
                    i += consumed;
                    continue;
                }
                None => fallback(record, out),
            },
            Preload::LocalLimit { .. } => {
                // A limit with no preceding slot run was consumed by no
                // `.local` block; the grammar cannot set a bare limit.
                fallback(record, out);
            }
        }
        i += 1;
    }
}

/// Tries to match `records[start..]` against the exact shape `.local`
/// emits: decodable slots `0..n` of one in-range dnode in order, then
/// `LocalLimit { limit: n }`. Returns the rendered slot lines and the
/// number of records consumed.
fn local_block(records: &[Preload], start: usize, dnode: u16) -> Option<(Vec<String>, usize)> {
    let mut lines = Vec::new();
    let mut i = start;
    while let Some(&Preload::LocalSlot {
        dnode: d,
        slot,
        word,
    }) = records.get(i)
    {
        if d != dnode || slot as usize != lines.len() {
            break;
        }
        lines.push(micro_text(&MicroInstr::decode(word).ok()?)?);
        i += 1;
    }
    match records.get(i) {
        Some(&Preload::LocalLimit { dnode: d, limit })
            if d == dnode && limit as usize == lines.len() && !lines.is_empty() =>
        {
            Some((lines, i + 1 - start))
        }
        _ => None,
    }
}

/// Renders a microinstruction in the assembler's grammar, or `None` when
/// it cannot be expressed (e.g. a set immediate field with no `#` operand).
fn micro_text(instr: &MicroInstr) -> Option<String> {
    let operand = |op: Operand| -> String {
        match op {
            Operand::Reg(r) => r.to_string(),
            Operand::In1 => "in1".to_owned(),
            Operand::In2 => "in2".to_owned(),
            Operand::Fifo1 => "fifo1".to_owned(),
            Operand::Fifo2 => "fifo2".to_owned(),
            Operand::Bus => "bus".to_owned(),
            Operand::Imm => format!("#{}", instr.imm.bits()),
            Operand::Zero => "zero".to_owned(),
            Operand::One => "one".to_owned(),
        }
    };
    let uses_imm = instr.src_a == Operand::Imm || instr.src_b == Operand::Imm;
    if !uses_imm && instr.imm.bits() != 0 {
        return None; // the grammar only sets `imm` through a `#` operand
    }
    let mut text = instr.alu.mnemonic().to_owned();
    match instr.alu {
        AluOp::Nop => {
            if instr.src_a != Operand::Zero || instr.src_b != Operand::Zero {
                return None;
            }
        }
        AluOp::PassA | AluOp::Neg | AluOp::Abs | AluOp::Not => {
            if instr.src_b != Operand::Zero {
                return None;
            }
            text.push_str(&format!(" {}", operand(instr.src_a)));
        }
        AluOp::PassB => {
            if instr.src_a != Operand::Zero {
                return None;
            }
            text.push_str(&format!(" {}", operand(instr.src_b)));
        }
        _ => text.push_str(&format!(
            " {}, {}",
            operand(instr.src_a),
            operand(instr.src_b)
        )),
    }
    let mut dests = Vec::new();
    if let Some(reg) = instr.wr_reg {
        dests.push(reg.to_string());
    }
    if instr.wr_out {
        dests.push("out".to_owned());
    }
    if instr.wr_bus {
        dests.push("bus".to_owned());
    }
    if !dests.is_empty() {
        text.push_str(&format!(" > {}", dests.join(", ")));
    }
    Some(text)
}

/// Renders a port source in the assembler's grammar.
fn source_text(source: PortSource, switches: usize) -> Option<String> {
    Some(match source {
        PortSource::Zero => "zero".to_owned(),
        PortSource::Bus => "bus".to_owned(),
        PortSource::PrevOut { lane } => format!("prev.{lane}"),
        PortSource::HostIn { port } => format!("host.{port}"),
        PortSource::Pipe {
            switch,
            stage,
            lane,
        } => {
            if (switch as usize) >= switches {
                return None;
            }
            format!("pipe[{switch},{stage}].{lane}")
        }
    })
}

/// Renders one controller word as a reassemblable instruction line, with
/// branch offsets rewritten to the absolute targets the grammar takes.
fn code_line(addr: usize, word: u32) -> Option<String> {
    let instr = CtrlInstr::decode(word).ok()?;
    match instr {
        CtrlInstr::Beq { ra, rb, offset }
        | CtrlInstr::Bne { ra, rb, offset }
        | CtrlInstr::Blt { ra, rb, offset }
        | CtrlInstr::Bge { ra, rb, offset } => {
            let target = addr as i64 + 1 + i64::from(offset);
            if !(0..=i64::from(u16::MAX)).contains(&target) {
                return None;
            }
            let mnemonic = match instr {
                CtrlInstr::Beq { .. } => "beq",
                CtrlInstr::Bne { .. } => "bne",
                CtrlInstr::Blt { .. } => "blt",
                _ => "bge",
            };
            Some(format!("{mnemonic} {ra}, {rb}, {target}"))
        }
        _ => Some(instr.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;
    use systolic_ring_isa::ctrl::CReg;
    use systolic_ring_isa::dnode::Reg;
    use systolic_ring_isa::RingGeometry;

    #[test]
    fn renders_code_and_bad_words() {
        let r1 = CReg::new(1).unwrap();
        let code = vec![
            CtrlInstr::Addi {
                rd: r1,
                ra: CReg::ZERO,
                imm: 5,
            }
            .encode(),
            0xffff_ffff,
            CtrlInstr::Halt.encode(),
        ];
        let text = disassemble_code(&code);
        assert!(text.contains("addi r1, r0, 5"));
        assert!(text.contains(".word 0xffffffff"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn whole_object_round_trips_through_source() {
        let source = "\
.ring 4x2
.contexts 2
route 0,0.in1 = host.0
route 1,1.fifo1 = pipe[0,3].0
node 0,0: add in1, #100 > out
capture 1.0 = lane 0
.ctx 1
node 0,0: mul in1, in1 > out, bus
.ctx 0
.local 0,1
  mov in1 > r2
  mac r2, #7 > r3, out
.endlocal
.mode 0,1 local
.code
start:
  addi r1, r0, 32
  bne r1, r0, start
  sw r1, 4(r0)
  halt
.data
  .word 0x00000007
";
        let object = assemble(source).unwrap();
        let text = disassemble(&object);
        let reassembled = assemble(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(reassembled, object, "---\n{text}");
        assert_eq!(reassembled.to_bytes(), object.to_bytes());
    }

    #[test]
    fn renders_whole_object() {
        let micro = MicroInstr::op(AluOp::PassA, Operand::Reg(Reg::R3), Operand::Zero)
            .write_out()
            .encode();
        let object = Object {
            geometry: Some(RingGeometry::RING_8),
            contexts: 2,
            code: vec![CtrlInstr::Halt.encode()],
            data: vec![7],
            preload: vec![
                Preload::Mode {
                    dnode: 1,
                    local: true,
                },
                Preload::LocalSlot {
                    dnode: 1,
                    slot: 0,
                    word: micro,
                },
                Preload::LocalLimit { dnode: 1, limit: 1 },
                Preload::HostCapture {
                    ctx: 0,
                    switch: 1,
                    port: 0,
                    word: 1,
                },
            ],
        };
        let text = disassemble(&object);
        assert!(text.contains(".ring 4x2"), "{text}");
        assert!(text.contains(".mode 0,1 local"), "{text}");
        assert!(text.contains(".local 0,1"), "{text}");
        assert!(text.contains("capture 1.0 = lane 0"), "{text}");
        assert!(text.contains(".data"), "{text}");
        let reassembled = assemble(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(reassembled, object, "---\n{text}");
    }

    #[test]
    fn foreign_records_degrade_to_comments() {
        let object = Object {
            geometry: Some(RingGeometry::RING_8),
            contexts: 1,
            code: vec![],
            data: vec![],
            preload: vec![
                // Bare limit with no preceding slot run.
                Preload::LocalLimit { dnode: 0, limit: 3 },
                // Dnode index beyond the fabric.
                Preload::Mode {
                    dnode: 200,
                    local: false,
                },
                // Context beyond the declared count.
                Preload::DnodeInstr {
                    ctx: 5,
                    dnode: 0,
                    word: MicroInstr::NOP.encode(),
                },
            ],
        };
        let text = disassemble(&object);
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("(inexpressible)"))
                .count(),
            3,
            "{text}"
        );
        // The commented output still reassembles (to an object without
        // the inexpressible records).
        assemble(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
    }
}
