//! Disassembler: object code back to readable text.

use systolic_ring_isa::ctrl::CtrlInstr;
use systolic_ring_isa::dnode::MicroInstr;
use systolic_ring_isa::object::{Object, Preload};
use systolic_ring_isa::switch::{HostCapture, PortSource};

/// Disassembles a controller program; undecodable words are shown as
/// `.word 0x...`.
pub fn disassemble_code(code: &[u32]) -> String {
    let mut out = String::new();
    for (addr, word) in code.iter().enumerate() {
        match CtrlInstr::decode(*word) {
            Ok(instr) => out.push_str(&format!("{addr:5}:  {instr}\n")),
            Err(_) => out.push_str(&format!("{addr:5}:  .word {word:#010x}\n")),
        }
    }
    out
}

/// Renders a whole object: header, preload records, code and data.
pub fn disassemble(object: &Object) -> String {
    let mut out = String::new();
    match object.geometry {
        Some(g) => out.push_str(&format!("; geometry: {g}\n")),
        None => out.push_str("; geometry: unspecified\n"),
    }
    out.push_str(&format!("; contexts: {}\n", object.contexts));
    if !object.preload.is_empty() {
        out.push_str("; fabric preload:\n");
        for record in &object.preload {
            out.push_str(&format!(";   {}\n", preload_line(record)));
        }
    }
    if !object.code.is_empty() {
        out.push_str(".code\n");
        out.push_str(&disassemble_code(&object.code));
    }
    if !object.data.is_empty() {
        out.push_str(".data\n");
        for word in &object.data {
            out.push_str(&format!("  .word {word:#010x}\n"));
        }
    }
    out
}

fn preload_line(record: &Preload) -> String {
    match *record {
        Preload::DnodeInstr { ctx, dnode, word } => match MicroInstr::decode(word) {
            Ok(instr) => format!("ctx {ctx} dnode {dnode}: {instr}"),
            Err(_) => format!("ctx {ctx} dnode {dnode}: .word {word:#x}"),
        },
        Preload::SwitchPort {
            ctx,
            switch,
            lane,
            input,
            word,
        } => {
            let port = ["in1", "in2", "fifo1", "fifo2"]
                .get(input as usize)
                .copied()
                .unwrap_or("?");
            match PortSource::decode(word) {
                Ok(src) => format!("ctx {ctx} route sw{switch} lane{lane}.{port} = {src}"),
                Err(_) => format!("ctx {ctx} route sw{switch} lane{lane}.{port} = .word {word:#x}"),
            }
        }
        Preload::HostCapture {
            ctx,
            switch,
            port,
            word,
        } => match HostCapture::decode(word) {
            Ok(cap) => format!("ctx {ctx} capture sw{switch}.{port} = {cap}"),
            Err(_) => format!("ctx {ctx} capture sw{switch}.{port} = .word {word:#x}"),
        },
        Preload::Mode { dnode, local } => {
            format!(
                "mode dnode {dnode} = {}",
                if local { "local" } else { "global" }
            )
        }
        Preload::LocalSlot { dnode, slot, word } => match MicroInstr::decode(word) {
            Ok(instr) => format!("local dnode {dnode} s{}: {instr}", slot + 1),
            Err(_) => format!("local dnode {dnode} s{}: .word {word:#x}", slot + 1),
        },
        Preload::LocalLimit { dnode, limit } => format!("local dnode {dnode} limit = {limit}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ring_isa::ctrl::CReg;
    use systolic_ring_isa::RingGeometry;

    #[test]
    fn renders_code_and_bad_words() {
        let r1 = CReg::new(1).unwrap();
        let code = vec![
            CtrlInstr::Addi {
                rd: r1,
                ra: CReg::ZERO,
                imm: 5,
            }
            .encode(),
            0xffff_ffff,
            CtrlInstr::Halt.encode(),
        ];
        let text = disassemble_code(&code);
        assert!(text.contains("addi r1, r0, 5"));
        assert!(text.contains(".word 0xffffffff"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn renders_whole_object() {
        let object = Object {
            geometry: Some(RingGeometry::RING_8),
            contexts: 2,
            code: vec![CtrlInstr::Halt.encode()],
            data: vec![7],
            preload: vec![
                Preload::Mode {
                    dnode: 1,
                    local: true,
                },
                Preload::LocalLimit { dnode: 1, limit: 2 },
                Preload::HostCapture {
                    ctx: 0,
                    switch: 1,
                    port: 0,
                    word: 1,
                },
            ],
        };
        let text = disassemble(&object);
        assert!(text.contains("Ring-8"));
        assert!(text.contains("mode dnode 1 = local"));
        assert!(text.contains("limit = 2"));
        assert!(text.contains("capture sw1.0 = lane 0"));
        assert!(text.contains(".data"));
    }
}
