//! `srasm` — the Systolic Ring assembler, as a command-line tool.
//!
//! ```sh
//! srasm program.sr [-o program.obj] [--lint]
//! srasm program.sr.md --check
//! ```
//!
//! Assembles a two-level source file (ring + controller sections) into the
//! binary object format the machine loader and the APEX PRG memory use.
//! Literate `.sr.md` sources are accepted too: fenced ```` ```sr ````
//! blocks are extracted and assembled, prose is ignored. Errors print as
//! `srasm: <file>:line <N>: ...` with the line pointing into the original
//! source — for literate files, into the markdown.
//!
//! With `--lint`, the assembled object is additionally run through
//! `ringlint`'s static checks; warnings and errors print after assembly
//! and fail the build (warnings are denied by default, exactly as in the
//! standalone `ringlint`; `--allow-warnings` is the shared escape hatch
//! that demotes the gate to errors only). With `--check`, no object is
//! written: the source is assembled, its `;!` expectation directives are
//! parsed and the object is linted — the static half of the conformance
//! gate (`srconform` is the dynamic half).

use std::process::ExitCode;

use systolic_ring_asm::assemble_source;
use systolic_ring_lint::{lint_object, Severity};

fn usage() -> ExitCode {
    eprintln!(
        "usage: srasm <source.sr|source.sr.md> [-o <out.obj>] [--lint] [--check] \
         [--allow-warnings]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut source_path = None;
    let mut out_path = None;
    let mut lint = false;
    let mut check = false;
    let mut allow_warnings = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" => match it.next() {
                Some(path) => out_path = Some(path.clone()),
                None => return usage(),
            },
            "--lint" => lint = true,
            "--check" => check = true,
            "--allow-warnings" => allow_warnings = true,
            "-h" | "--help" => return usage(),
            path if source_path.is_none() => source_path = Some(path.to_owned()),
            _ => return usage(),
        }
    }
    let Some(source_path) = source_path else {
        return usage();
    };

    let source = match std::fs::read_to_string(&source_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("srasm: cannot read {source_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (object, expectations) = match assemble_source(&source_path, &source) {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("srasm: {source_path}:{e}");
            return ExitCode::FAILURE;
        }
    };
    if lint || check {
        let floor = if allow_warnings {
            Severity::Error
        } else {
            Severity::Warning
        };
        let report = lint_object(&object);
        for diag in &report.diagnostics {
            eprintln!("srasm: {source_path}: {diag}");
            eprintln!("srasm: {source_path}:   help: {}", diag.help);
        }
        if report.diagnostics.iter().any(|d| d.severity >= floor) {
            eprintln!("srasm: {source_path}: lint failed; object not written");
            return ExitCode::FAILURE;
        }
    }
    if check {
        let tiers: Vec<&str> = expectations
            .effective_tiers()
            .iter()
            .map(|t| t.name())
            .collect();
        println!(
            "srasm: {}: check ok ({} code words, {} preloads, {} inputs, {} sink checks, \
             cycles <= {}, tiers {})",
            source_path,
            object.code.len(),
            object.preload.len(),
            expectations.inputs.len(),
            expectations.sinks.len(),
            expectations
                .cycle_budget
                .map_or_else(|| "unbounded".to_owned(), |n| n.to_string()),
            tiers.join(",")
        );
        return ExitCode::SUCCESS;
    }
    let bytes = object.to_bytes();
    let out_path = out_path.unwrap_or_else(|| {
        let stem = source_path
            .trim_end_matches(".sr.md")
            .trim_end_matches(".sr");
        format!("{stem}.obj")
    });
    if let Err(e) = std::fs::write(&out_path, &bytes) {
        eprintln!("srasm: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "srasm: {} -> {} ({} bytes; {} code words, {} preloads, {} data words)",
        source_path,
        out_path,
        bytes.len(),
        object.code.len(),
        object.preload.len(),
        object.data.len()
    );
    ExitCode::SUCCESS
}
