//! `srdis` — the Systolic Ring disassembler, as a command-line tool.
//!
//! ```sh
//! srdis program.obj
//! ```
//!
//! Prints the object header, fabric preload records, controller code and
//! data section in the assembler's syntax.

use std::process::ExitCode;

use systolic_ring_asm::disassemble;
use systolic_ring_isa::object::Object;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: srdis <program.obj>");
        return ExitCode::from(2);
    };
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("srdis: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match Object::from_bytes(&bytes) {
        Ok(object) => {
            print!("{}", disassemble(&object));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("srdis: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
