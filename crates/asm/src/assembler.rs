//! The two-level assembler: fabric-level (ring) and controller-level (RISC)
//! sections in one source file, emitting a loadable [`Object`].
//!
//! This reproduces the paper's tool: "we wrote an assembling tool, which
//! parse both RISC level (for the control) and Ring level assembler
//! primitives. It directly generates the machine object code, ready to be
//! executed in the architecture" (§5.1).
//!
//! # Language overview
//!
//! ```text
//! .ring 4x2            ; geometry (layers x width) — required first
//! .contexts 2          ; configuration contexts used
//! .equ GAIN 3          ; named constant, usable wherever a number is
//!
//! .ctx 0               ; fabric statements target context 0
//! route 0,0.in1 = host.0        ; switch routing
//! route 1,0.in1 = prev.0
//! route 0,0.fifo1 = pipe[1,0].0 ; feedback pipeline read
//! node 0,0: add in1, one > out  ; Dnode microinstruction
//! capture 1 = lane 0            ; host capture at switch 1 (out-port 0)
//! capture 1.1 = lane 2          ; second out-port of switch 1
//!
//! .local 2,1           ; local-sequencer program for Dnode (layer 2, lane 1)
//!   mac in1, in2 > r0
//!   mov r0 > out
//! .endlocal
//! .mode 2,1 local      ; stand-alone mode
//!
//! .code                ; controller program
//! start:
//!   li   r1, 0x12345
//! loop:
//!   addi r1, r1, -1
//!   bne  r1, r0, loop
//!   halt
//!
//! .data
//!   .word 1, 2, 3
//! ```

use std::collections::HashMap;

use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand, Reg};
use systolic_ring_isa::object::{Object, Preload};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

use crate::error::{AsmError, AsmErrorKind};
use crate::lexer::{tokenize, Token};

/// Assembles a complete source file into a loadable object.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, carrying its source line.
///
/// # Examples
///
/// ```
/// use systolic_ring_asm::assemble;
///
/// let object = assemble(
///     ".ring 4x2\n\
///      node 0,0: mac in1, in2 > r0\n\
///      route 0,0.in1 = host.0\n\
///      .code\n\
///      halt\n",
/// )?;
/// assert_eq!(object.code.len(), 1);
/// assert_eq!(object.preload.len(), 2);
/// # Ok::<(), systolic_ring_asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Object, AsmError> {
    Assembler::new().run(source)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    Fabric,
    Local,
    Code,
    Data,
}

struct Assembler {
    geometry: Option<RingGeometry>,
    contexts: u16,
    ctx: u16,
    section: Section,
    local_dnode: u16,
    local_slots: Vec<MicroInstr>,
    preload: Vec<Preload>,
    data: Vec<u32>,
    /// Code lines retained for the second pass: (line_no, tokens, address).
    code_lines: Vec<(usize, Vec<Token>)>,
    /// Named constants from `.equ`.
    equs: HashMap<String, i64>,
}

/// Identifiers `.equ` may not shadow (mnemonics, registers, operands,
/// structural keywords).
fn is_reserved_name(name: &str) -> bool {
    if micro_op(name).is_some() {
        return true;
    }
    if name.len() >= 2 && name.starts_with('r') && name[1..].chars().all(|c| c.is_ascii_digit()) {
        return true;
    }
    matches!(
        name,
        "in1"
            | "in2"
            | "fifo1"
            | "fifo2"
            | "bus"
            | "zero"
            | "one"
            | "out"
            | "node"
            | "route"
            | "capture"
            | "lane"
            | "off"
            | "local"
            | "global"
            | "prev"
            | "pipe"
            | "host"
            | "x"
            | "addi"
            | "andi"
            | "ori"
            | "xori"
            | "slti"
            | "lui"
            | "li"
            | "lw"
            | "sw"
            | "beq"
            | "bne"
            | "blt"
            | "bge"
            | "j"
            | "jal"
            | "jr"
            | "cimm"
            | "wctx"
            | "wdn"
            | "wsw"
            | "who"
            | "wmode"
            | "wloc"
            | "wlim"
            | "ctx"
            | "busw"
            | "busr"
            | "hpush"
            | "hpop"
            | "wait"
            | "halt"
            | "sll"
            | "srl"
            | "sra"
    )
}

/// A token cursor with positional error reporting.
struct Cur<'a> {
    toks: &'a [Token],
    pos: usize,
    line: usize,
}

impl<'a> Cur<'a> {
    fn new(toks: &'a [Token], line: usize) -> Self {
        Cur { toks, pos: 0, line }
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Token) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), AsmError> {
        if self.eat(want) {
            Ok(())
        } else {
            Err(AsmError::syntax(self.line, format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, AsmError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            _ => Err(AsmError::syntax(self.line, format!("expected {what}"))),
        }
    }

    fn num(&mut self, what: &str) -> Result<i64, AsmError> {
        match self.next() {
            Some(Token::Num(n)) => Ok(*n),
            _ => Err(AsmError::syntax(self.line, format!("expected {what}"))),
        }
    }

    fn unsigned(&mut self, what: &str, max: i64) -> Result<u16, AsmError> {
        let n = self.num(what)?;
        if (0..=max).contains(&n) {
            Ok(n as u16)
        } else {
            Err(AsmError::new(
                self.line,
                AsmErrorKind::OutOfRange {
                    what: what.into(),
                    value: n,
                },
            ))
        }
    }

    fn end(&self) -> Result<(), AsmError> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(AsmError::syntax(self.line, "unexpected trailing tokens"))
        }
    }
}

impl Assembler {
    fn new() -> Self {
        Assembler {
            geometry: None,
            contexts: 1,
            ctx: 0,
            section: Section::Fabric,
            local_dnode: 0,
            local_slots: Vec::new(),
            preload: Vec::new(),
            data: Vec::new(),
            code_lines: Vec::new(),
            equs: HashMap::new(),
        }
    }

    /// Replaces `.equ` names with their numeric values in `toks`.
    fn substitute_equs(&self, toks: &mut [Token]) {
        for tok in toks.iter_mut() {
            if let Token::Ident(name) = tok {
                if let Some(&value) = self.equs.get(name.as_str()) {
                    *tok = Token::Num(value);
                }
            }
        }
    }

    fn geometry(&self, line: usize) -> Result<RingGeometry, AsmError> {
        self.geometry.ok_or_else(|| {
            AsmError::new(
                line,
                AsmErrorKind::Misplaced(".ring must be declared before fabric statements".into()),
            )
        })
    }

    fn run(mut self, source: &str) -> Result<Object, AsmError> {
        for (idx, raw) in source.lines().enumerate() {
            let line = idx + 1;
            let toks = tokenize(raw, line)?;
            if toks.is_empty() {
                continue;
            }
            self.line(&toks, line)?;
        }
        if self.section == Section::Local {
            return Err(AsmError::new(
                source.lines().count(),
                AsmErrorKind::Misplaced(".local block not closed by .endlocal".into()),
            ));
        }
        let code = assemble_code(&self.code_lines)?;
        Ok(Object {
            geometry: self.geometry,
            contexts: self.contexts,
            code,
            data: self.data,
            preload: self.preload,
        })
    }

    fn line(&mut self, toks: &[Token], line: usize) -> Result<(), AsmError> {
        let mut toks = toks.to_vec();
        // A leading `ident:` is a label definition and must not be
        // substituted; everything else goes through the `.equ` table.
        let keep_first = matches!(
            (toks.first(), toks.get(1)),
            (Some(Token::Ident(_)), Some(Token::Colon))
        );
        if keep_first {
            self.substitute_equs(&mut toks[1..]);
        } else if !toks.is_empty() {
            self.substitute_equs(&mut toks[1..]);
            // The first token may also be an operand position in fabric
            // statements; substitute it only when it is not a known
            // statement keyword or mnemonic.
            if let Some(Token::Ident(name)) = toks.first() {
                if !is_reserved_name(name) {
                    if let Some(&value) = self.equs.get(name.as_str()) {
                        toks[0] = Token::Num(value);
                    }
                }
            }
        }
        let toks = &toks[..];
        let mut cur = Cur::new(toks, line);
        if cur.eat(&Token::Dot) {
            let name = cur.ident("directive name")?;
            return self.directive(&name, cur);
        }
        match self.section {
            Section::Fabric => self.fabric_line(cur),
            Section::Local => {
                let instr = parse_micro(&mut cur)?;
                cur.end()?;
                if self.local_slots.len() >= 8 {
                    return Err(AsmError::syntax(
                        line,
                        "local program exceeds 8 microinstructions",
                    ));
                }
                self.local_slots.push(instr);
                Ok(())
            }
            Section::Code => {
                self.code_lines.push((line, toks.to_vec()));
                Ok(())
            }
            Section::Data => Err(AsmError::syntax(
                line,
                "only .word lines are allowed in .data",
            )),
        }
    }

    fn directive(&mut self, name: &str, mut cur: Cur<'_>) -> Result<(), AsmError> {
        let line = cur.line;
        match name {
            "ring" => {
                // `.ring 4x2` lexes as NUM(4) IDENT("x2"); also accept
                // `.ring 4 x 2` and `.ring 4, 2`.
                let layers = cur.unsigned("layer count", 256)?;
                let width = match cur.peek().cloned() {
                    Some(Token::Ident(s)) if s.starts_with('x') && s.len() > 1 => {
                        cur.next();
                        s[1..]
                            .parse::<u16>()
                            .map_err(|_| AsmError::new(line, AsmErrorKind::BadNumber(s.clone())))?
                    }
                    Some(Token::Ident(s)) if s == "x" => {
                        cur.next();
                        cur.unsigned("width", 256)?
                    }
                    _ => {
                        cur.eat(&Token::Comma);
                        cur.unsigned("width", 256)?
                    }
                };
                cur.end()?;
                let geometry = RingGeometry::new(layers as usize, width as usize)
                    .map_err(|e| AsmError::new(line, AsmErrorKind::Geometry(e.to_string())))?;
                self.geometry = Some(geometry);
                Ok(())
            }
            "contexts" => {
                self.contexts = cur.unsigned("context count", 256)?;
                cur.end()
            }
            "equ" => {
                let name = cur.ident("constant name")?;
                if is_reserved_name(&name) {
                    return Err(AsmError::syntax(
                        line,
                        format!("`.equ {name}` shadows a reserved name"),
                    ));
                }
                let value = cur.num("constant value")?;
                cur.end()?;
                self.equs.insert(name, value);
                Ok(())
            }
            "ctx" => {
                let ctx = cur.unsigned("context index", 255)?;
                cur.end()?;
                if ctx >= self.contexts {
                    return Err(AsmError::new(
                        line,
                        AsmErrorKind::Geometry(format!(
                            "context {ctx} outside declared .contexts {}",
                            self.contexts
                        )),
                    ));
                }
                self.ctx = ctx;
                Ok(())
            }
            "local" => {
                if self.section == Section::Local {
                    return Err(AsmError::new(
                        line,
                        AsmErrorKind::Misplaced("nested .local".into()),
                    ));
                }
                let (dnode, _) = self.parse_dnode_ref(&mut cur)?;
                cur.end()?;
                self.local_dnode = dnode;
                self.local_slots.clear();
                self.section = Section::Local;
                Ok(())
            }
            "endlocal" => {
                if self.section != Section::Local {
                    return Err(AsmError::new(
                        line,
                        AsmErrorKind::Misplaced(".endlocal without .local".into()),
                    ));
                }
                cur.end()?;
                if self.local_slots.is_empty() {
                    return Err(AsmError::syntax(line, "empty .local program"));
                }
                for (slot, instr) in self.local_slots.iter().enumerate() {
                    self.preload.push(Preload::LocalSlot {
                        dnode: self.local_dnode,
                        slot: slot as u8,
                        word: instr.encode(),
                    });
                }
                self.preload.push(Preload::LocalLimit {
                    dnode: self.local_dnode,
                    limit: self.local_slots.len() as u8,
                });
                self.section = Section::Fabric;
                Ok(())
            }
            "mode" => {
                let (dnode, _) = self.parse_dnode_ref(&mut cur)?;
                let mode = cur.ident("`local` or `global`")?;
                cur.end()?;
                let local = match mode.as_str() {
                    "local" => true,
                    "global" => false,
                    other => {
                        return Err(AsmError::syntax(
                            line,
                            format!("expected `local` or `global`, got `{other}`"),
                        ))
                    }
                };
                self.preload.push(Preload::Mode { dnode, local });
                Ok(())
            }
            "code" => {
                self.section = Section::Code;
                cur.end()
            }
            "data" => {
                self.section = Section::Data;
                cur.end()
            }
            "word" => {
                if self.section != Section::Data {
                    return Err(AsmError::new(
                        line,
                        AsmErrorKind::Misplaced(".word outside .data".into()),
                    ));
                }
                loop {
                    let n = cur.num("word value")?;
                    if !(i32::MIN as i64..=u32::MAX as i64).contains(&n) {
                        return Err(AsmError::new(
                            line,
                            AsmErrorKind::OutOfRange {
                                what: "word".into(),
                                value: n,
                            },
                        ));
                    }
                    self.data.push(n as u32);
                    if !cur.eat(&Token::Comma) {
                        break;
                    }
                }
                cur.end()
            }
            other => Err(AsmError::new(
                line,
                AsmErrorKind::UnknownMnemonic(format!(".{other}")),
            )),
        }
    }

    /// Parses `LAYER , LANE` and returns (flat dnode index, (layer, lane)).
    fn parse_dnode_ref(&self, cur: &mut Cur<'_>) -> Result<(u16, (u16, u16)), AsmError> {
        let line = cur.line;
        let g = self.geometry(line)?;
        let layer = cur.unsigned("layer", 255)?;
        cur.expect(&Token::Comma, "`,` between layer and lane")?;
        let lane = cur.unsigned("lane", 255)?;
        if layer as usize >= g.layers() || lane as usize >= g.width() {
            return Err(AsmError::new(
                line,
                AsmErrorKind::Geometry(format!("dnode {layer},{lane} outside {g}",)),
            ));
        }
        Ok((
            g.dnode_index(layer as usize, lane as usize) as u16,
            (layer, lane),
        ))
    }

    fn fabric_line(&mut self, mut cur: Cur<'_>) -> Result<(), AsmError> {
        let line = cur.line;
        let keyword = cur.ident("fabric statement")?;
        match keyword.as_str() {
            "node" => {
                let (dnode, _) = self.parse_dnode_ref(&mut cur)?;
                cur.expect(&Token::Colon, "`:` after dnode reference")?;
                let instr = parse_micro(&mut cur)?;
                cur.end()?;
                self.preload.push(Preload::DnodeInstr {
                    ctx: self.ctx,
                    dnode,
                    word: instr.encode(),
                });
                Ok(())
            }
            "route" => {
                let g = self.geometry(line)?;
                let (_, (layer, lane)) = self.parse_dnode_ref(&mut cur)?;
                cur.expect(&Token::Dot, "`.` before port name")?;
                let port_name = cur.ident("port name")?;
                let input = match port_name.as_str() {
                    "in1" => 0u8,
                    "in2" => 1,
                    "fifo1" => 2,
                    "fifo2" => 3,
                    other => {
                        return Err(AsmError::syntax(
                            line,
                            format!("unknown port `{other}` (in1/in2/fifo1/fifo2)"),
                        ))
                    }
                };
                cur.expect(&Token::Equals, "`=` before source")?;
                let source = parse_source(&mut cur, g)?;
                cur.end()?;
                self.preload.push(Preload::SwitchPort {
                    ctx: self.ctx,
                    switch: layer,
                    lane,
                    input,
                    word: source.encode(),
                });
                Ok(())
            }
            "capture" => {
                let g = self.geometry(line)?;
                let switch = cur.unsigned("switch index", 255)?;
                if switch as usize >= g.switches() {
                    return Err(AsmError::new(
                        line,
                        AsmErrorKind::Geometry(format!("switch {switch} outside {g}")),
                    ));
                }
                // Optional `.P` selects the host-output port (default 0).
                let port = if cur.eat(&Token::Dot) {
                    let port = cur.unsigned("out-port", 255)?;
                    if port as usize >= g.width() {
                        return Err(AsmError::new(
                            line,
                            AsmErrorKind::Geometry(format!("out-port {port} outside {g}")),
                        ));
                    }
                    port
                } else {
                    0
                };
                cur.expect(&Token::Equals, "`=` after switch index")?;
                let what = cur.ident("`lane` or `off`")?;
                let capture = match what.as_str() {
                    "off" => HostCapture::DISABLED,
                    "lane" => {
                        let lane = cur.unsigned("lane", 255)?;
                        if lane as usize >= g.width() {
                            return Err(AsmError::new(
                                line,
                                AsmErrorKind::Geometry(format!("lane {lane} outside {g}")),
                            ));
                        }
                        HostCapture::lane(lane as u8)
                    }
                    other => {
                        return Err(AsmError::syntax(
                            line,
                            format!("expected `lane K` or `off`, got `{other}`"),
                        ))
                    }
                };
                cur.end()?;
                self.preload.push(Preload::HostCapture {
                    ctx: self.ctx,
                    switch,
                    port,
                    word: capture.encode(),
                });
                Ok(())
            }
            other => Err(AsmError::new(
                line,
                AsmErrorKind::UnknownMnemonic(other.into()),
            )),
        }
    }
}

/// Parses a routing source: `prev.K`, `pipe[S,STG].L`, `host.P`, `bus`,
/// `zero`.
fn parse_source(cur: &mut Cur<'_>, g: RingGeometry) -> Result<PortSource, AsmError> {
    let line = cur.line;
    let kind = cur.ident("routing source")?;
    let check = |ok: bool, msg: String| {
        if ok {
            Ok(())
        } else {
            Err(AsmError::new(line, AsmErrorKind::Geometry(msg)))
        }
    };
    match kind.as_str() {
        "zero" => Ok(PortSource::Zero),
        "bus" => Ok(PortSource::Bus),
        "prev" => {
            cur.expect(&Token::Dot, "`.` after `prev`")?;
            let lane = cur.unsigned("lane", 255)?;
            check(
                (lane as usize) < g.width(),
                format!("prev lane {lane} outside {g}"),
            )?;
            Ok(PortSource::PrevOut { lane: lane as u8 })
        }
        "host" => {
            cur.expect(&Token::Dot, "`.` after `host`")?;
            let port = cur.unsigned("host port", 255)?;
            check(
                (port as usize) < 2 * g.width(),
                format!("host port {port} outside 2*width of {g}"),
            )?;
            Ok(PortSource::HostIn { port: port as u8 })
        }
        "pipe" => {
            cur.expect(&Token::LBracket, "`[` after `pipe`")?;
            let switch = cur.unsigned("pipe switch", 255)?;
            cur.expect(&Token::Comma, "`,` between switch and stage")?;
            let stage = cur.unsigned("pipe stage", 255)?;
            cur.expect(&Token::RBracket, "`]` after stage")?;
            cur.expect(&Token::Dot, "`.` before lane")?;
            let lane = cur.unsigned("lane", 255)?;
            check(
                (switch as usize) < g.switches() && (lane as usize) < g.width(),
                format!("pipe[{switch}].{lane} outside {g}"),
            )?;
            Ok(PortSource::Pipe {
                switch: switch as u8,
                stage: stage as u8,
                lane: lane as u8,
            })
        }
        other => Err(AsmError::syntax(
            line,
            format!("unknown source `{other}` (prev/pipe/host/bus/zero)"),
        )),
    }
}

/// Parses one Dnode microinstruction: `OP [src[, src]] [> dest{,dest}]`.
fn parse_micro(cur: &mut Cur<'_>) -> Result<MicroInstr, AsmError> {
    let line = cur.line;
    let mnemonic = cur.ident("dnode mnemonic")?;
    let (alu, arity) = micro_op(&mnemonic)
        .ok_or_else(|| AsmError::new(line, AsmErrorKind::UnknownMnemonic(mnemonic.clone())))?;

    let mut imm: Option<i64> = None;
    let mut parse_operand = |cur: &mut Cur<'_>| -> Result<Operand, AsmError> {
        if cur.eat(&Token::Hash) {
            let value = cur.num("immediate")?;
            if !(i16::MIN as i64..=u16::MAX as i64).contains(&value) {
                return Err(AsmError::new(
                    line,
                    AsmErrorKind::OutOfRange {
                        what: "immediate".into(),
                        value,
                    },
                ));
            }
            if let Some(prev) = imm {
                if prev != value {
                    return Err(AsmError::syntax(
                        line,
                        "a microinstruction has a single immediate field",
                    ));
                }
            }
            imm = Some(value);
            return Ok(Operand::Imm);
        }
        let name = cur.ident("operand")?;
        operand(&name).ok_or_else(|| AsmError::syntax(line, format!("unknown operand `{name}`")))
    };

    let (src_a, src_b) = match arity {
        0 => (Operand::Zero, Operand::Zero),
        1 => {
            let a = parse_operand(cur)?;
            if alu == AluOp::PassB {
                (Operand::Zero, a)
            } else {
                (a, Operand::Zero)
            }
        }
        _ => {
            let a = parse_operand(cur)?;
            cur.expect(&Token::Comma, "`,` between operands")?;
            let b = parse_operand(cur)?;
            (a, b)
        }
    };

    let mut instr = MicroInstr::op(alu, src_a, src_b);
    if let Some(value) = imm {
        instr = instr.with_imm(Word16::new(value as u16));
    }

    if cur.eat(&Token::Arrow) {
        loop {
            let dest = cur.ident("destination")?;
            match dest.as_str() {
                "out" => instr.wr_out = true,
                "bus" => instr.wr_bus = true,
                "r0" | "r1" | "r2" | "r3" => {
                    let reg = Reg::from_index(dest[1..].parse().expect("digit")).expect("0..4");
                    if instr.wr_reg.is_some() {
                        return Err(AsmError::syntax(
                            line,
                            "a microinstruction writes at most one register",
                        ));
                    }
                    instr.wr_reg = Some(reg);
                }
                other => {
                    return Err(AsmError::syntax(
                        line,
                        format!("unknown destination `{other}` (r0-r3/out/bus)"),
                    ))
                }
            }
            if !cur.eat(&Token::Comma) {
                break;
            }
        }
    }
    Ok(instr)
}

fn micro_op(mnemonic: &str) -> Option<(AluOp, u8)> {
    let table: &[(&str, AluOp, u8)] = &[
        ("nop", AluOp::Nop, 0),
        ("mov", AluOp::PassA, 1),
        ("movb", AluOp::PassB, 1),
        ("add", AluOp::Add, 2),
        ("adds", AluOp::AddSat, 2),
        ("sub", AluOp::Sub, 2),
        ("subs", AluOp::SubSat, 2),
        ("neg", AluOp::Neg, 1),
        ("abs", AluOp::Abs, 1),
        ("absd", AluOp::AbsDiff, 2),
        ("and", AluOp::And, 2),
        ("or", AluOp::Or, 2),
        ("xor", AluOp::Xor, 2),
        ("not", AluOp::Not, 1),
        ("shl", AluOp::Shl, 2),
        ("shr", AluOp::Shr, 2),
        ("asr", AluOp::Asr, 2),
        ("min", AluOp::Min, 2),
        ("max", AluOp::Max, 2),
        ("minu", AluOp::MinU, 2),
        ("maxu", AluOp::MaxU, 2),
        ("slt", AluOp::Slt, 2),
        ("sltu", AluOp::SltU, 2),
        ("mul", AluOp::Mul, 2),
        ("mulh", AluOp::MulHi, 2),
        ("mulhu", AluOp::MulHiU, 2),
        ("mac", AluOp::Mac, 2),
        ("macs", AluOp::MacSat, 2),
        ("msu", AluOp::Msu, 2),
    ];
    table
        .iter()
        .find(|(name, _, _)| *name == mnemonic)
        .map(|(_, op, arity)| (*op, *arity))
}

fn operand(name: &str) -> Option<Operand> {
    Some(match name {
        "r0" => Operand::Reg(Reg::R0),
        "r1" => Operand::Reg(Reg::R1),
        "r2" => Operand::Reg(Reg::R2),
        "r3" => Operand::Reg(Reg::R3),
        "in1" => Operand::In1,
        "in2" => Operand::In2,
        "fifo1" => Operand::Fifo1,
        "fifo2" => Operand::Fifo2,
        "bus" => Operand::Bus,
        "zero" => Operand::Zero,
        "one" => Operand::One,
        _ => return None,
    })
}

// --------------------------------------------------------------------------
// Controller section (two passes over the retained lines)
// --------------------------------------------------------------------------

fn assemble_code(lines: &[(usize, Vec<Token>)]) -> Result<Vec<u32>, AsmError> {
    // Pass 1: label addresses.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut addr = 0u32;
    for (line, toks) in lines {
        let mut cur = Cur::new(toks, *line);
        let toks_after_label = strip_label(&mut cur, &mut labels, addr)?;
        if toks_after_label {
            let mnemonic = match cur.peek() {
                Some(Token::Ident(m)) => m.clone(),
                _ => return Err(AsmError::syntax(*line, "expected instruction")),
            };
            addr += instr_words(&mnemonic);
        }
    }
    // Pass 2: encode.
    let mut code = Vec::new();
    for (line, toks) in lines {
        let mut cur = Cur::new(toks, *line);
        let mut scratch = HashMap::new();
        let has_instr = strip_label(&mut cur, &mut scratch, 0)?;
        if !has_instr {
            continue;
        }
        encode_ctrl(&mut cur, &labels, code.len() as u32, &mut code)?;
        cur.end()?;
    }
    Ok(code)
}

/// Consumes a leading `label:`; returns `true` if tokens remain.
fn strip_label(
    cur: &mut Cur<'_>,
    labels: &mut HashMap<String, u32>,
    addr: u32,
) -> Result<bool, AsmError> {
    if let (Some(Token::Ident(name)), Some(Token::Colon)) = (cur.toks.first(), cur.toks.get(1)) {
        let name = name.clone();
        if labels.insert(name.clone(), addr).is_some() {
            return Err(AsmError::new(cur.line, AsmErrorKind::DuplicateLabel(name)));
        }
        cur.pos = 2;
        return Ok(cur.pos < cur.toks.len());
    }
    Ok(!cur.toks.is_empty())
}

fn instr_words(mnemonic: &str) -> u32 {
    if mnemonic == "li" {
        2
    } else {
        1
    }
}

fn creg(cur: &mut Cur<'_>) -> Result<CReg, AsmError> {
    let line = cur.line;
    let name = cur.ident("register")?;
    let idx = name
        .strip_prefix('r')
        .and_then(|digits| digits.parse::<u8>().ok())
        .and_then(CReg::new);
    idx.ok_or_else(|| AsmError::syntax(line, format!("expected register r0-r15, got `{name}`")))
}

fn imm_i16(cur: &mut Cur<'_>, what: &str) -> Result<i16, AsmError> {
    let line = cur.line;
    let n = cur.num(what)?;
    if (i16::MIN as i64..=i16::MAX as i64).contains(&n) {
        Ok(n as i16)
    } else {
        Err(AsmError::new(
            line,
            AsmErrorKind::OutOfRange {
                what: what.into(),
                value: n,
            },
        ))
    }
}

fn imm_u16(cur: &mut Cur<'_>, what: &str) -> Result<u16, AsmError> {
    let line = cur.line;
    let n = cur.num(what)?;
    if (0..=u16::MAX as i64).contains(&n) {
        Ok(n as u16)
    } else if (i16::MIN as i64..0).contains(&n) {
        // Accept negative literals for bit-pattern immediates (andi/ori).
        Ok(n as i16 as u16)
    } else {
        Err(AsmError::new(
            line,
            AsmErrorKind::OutOfRange {
                what: what.into(),
                value: n,
            },
        ))
    }
}

/// A jump/branch target: a label or a literal address/offset.
fn target(cur: &mut Cur<'_>, labels: &HashMap<String, u32>) -> Result<u32, AsmError> {
    let line = cur.line;
    match cur.next() {
        Some(Token::Num(n)) if *n >= 0 && *n <= u16::MAX as i64 => Ok(*n as u32),
        Some(Token::Ident(name)) => labels
            .get(name)
            .copied()
            .ok_or_else(|| AsmError::new(line, AsmErrorKind::UndefinedLabel(name.clone()))),
        _ => Err(AsmError::syntax(line, "expected label or address")),
    }
}

fn encode_ctrl(
    cur: &mut Cur<'_>,
    labels: &HashMap<String, u32>,
    addr: u32,
    code: &mut Vec<u32>,
) -> Result<(), AsmError> {
    use CtrlInstr::*;
    let line = cur.line;
    let mnemonic = cur.ident("instruction")?;

    let mut push = |instr: CtrlInstr| code.push(instr.encode());

    let r3 = |cur: &mut Cur<'_>| -> Result<(CReg, CReg, CReg), AsmError> {
        let rd = creg(cur)?;
        cur.expect(&Token::Comma, "`,`")?;
        let ra = creg(cur)?;
        cur.expect(&Token::Comma, "`,`")?;
        let rb = creg(cur)?;
        Ok((rd, ra, rb))
    };
    let rri = |cur: &mut Cur<'_>| -> Result<(CReg, CReg), AsmError> {
        let rd = creg(cur)?;
        cur.expect(&Token::Comma, "`,`")?;
        let ra = creg(cur)?;
        cur.expect(&Token::Comma, "`,`")?;
        Ok((rd, ra))
    };
    let mem = |cur: &mut Cur<'_>| -> Result<(CReg, CReg, i16), AsmError> {
        let r = creg(cur)?;
        cur.expect(&Token::Comma, "`,`")?;
        let offset = imm_i16(cur, "offset")?;
        cur.expect(&Token::LParen, "`(`")?;
        let base = creg(cur)?;
        cur.expect(&Token::RParen, "`)`")?;
        Ok((r, base, offset))
    };
    let branch = |cur: &mut Cur<'_>| -> Result<(CReg, CReg, i16), AsmError> {
        let ra = creg(cur)?;
        cur.expect(&Token::Comma, "`,`")?;
        let rb = creg(cur)?;
        cur.expect(&Token::Comma, "`,`")?;
        let dest = target(cur, labels)?;
        let offset = dest as i64 - (addr as i64 + 1);
        if !(i16::MIN as i64..=i16::MAX as i64).contains(&offset) {
            return Err(AsmError::new(
                cur.line,
                AsmErrorKind::OutOfRange {
                    what: "branch offset".into(),
                    value: offset,
                },
            ));
        }
        Ok((ra, rb, offset as i16))
    };
    let reg_imm = |cur: &mut Cur<'_>| -> Result<(CReg, u16), AsmError> {
        let r = creg(cur)?;
        cur.expect(&Token::Comma, "`,`")?;
        let imm = imm_u16(cur, "immediate")?;
        Ok((r, imm))
    };

    match mnemonic.as_str() {
        "nop" => push(Nop),
        "halt" => push(Halt),
        "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu" | "mul" => {
            let (rd, ra, rb) = r3(cur)?;
            push(match mnemonic.as_str() {
                "add" => Add { rd, ra, rb },
                "sub" => Sub { rd, ra, rb },
                "and" => And { rd, ra, rb },
                "or" => Or { rd, ra, rb },
                "xor" => Xor { rd, ra, rb },
                "sll" => Sll { rd, ra, rb },
                "srl" => Srl { rd, ra, rb },
                "sra" => Sra { rd, ra, rb },
                "slt" => Slt { rd, ra, rb },
                "sltu" => Sltu { rd, ra, rb },
                _ => Mul { rd, ra, rb },
            });
        }
        "addi" | "slti" => {
            let (rd, ra) = rri(cur)?;
            let imm = imm_i16(cur, "immediate")?;
            push(if mnemonic == "addi" {
                Addi { rd, ra, imm }
            } else {
                Slti { rd, ra, imm }
            });
        }
        "andi" | "ori" | "xori" => {
            let (rd, ra) = rri(cur)?;
            let imm = imm_u16(cur, "immediate")?;
            push(match mnemonic.as_str() {
                "andi" => Andi { rd, ra, imm },
                "ori" => Ori { rd, ra, imm },
                _ => Xori { rd, ra, imm },
            });
        }
        "lui" => {
            let (rd, imm) = reg_imm(cur)?;
            push(Lui { rd, imm });
        }
        "li" => {
            // Pseudo: lui + ori (always two words so pass-1 sizing holds).
            let rd = creg(cur)?;
            cur.expect(&Token::Comma, "`,`")?;
            let n = cur.num("immediate")?;
            if !(i32::MIN as i64..=u32::MAX as i64).contains(&n) {
                return Err(AsmError::new(
                    line,
                    AsmErrorKind::OutOfRange {
                        what: "li immediate".into(),
                        value: n,
                    },
                ));
            }
            let bits = n as u32;
            push(Lui {
                rd,
                imm: (bits >> 16) as u16,
            });
            push(Ori {
                rd,
                ra: rd,
                imm: (bits & 0xffff) as u16,
            });
        }
        "lw" => {
            let (rd, ra, imm) = mem(cur)?;
            push(Lw { rd, ra, imm });
        }
        "sw" => {
            let (rs, ra, imm) = mem(cur)?;
            push(Sw { rs, ra, imm });
        }
        "beq" | "bne" | "blt" | "bge" => {
            let (ra, rb, offset) = branch(cur)?;
            push(match mnemonic.as_str() {
                "beq" => Beq { ra, rb, offset },
                "bne" => Bne { ra, rb, offset },
                "blt" => Blt { ra, rb, offset },
                _ => Bge { ra, rb, offset },
            });
        }
        "j" | "jal" => {
            let dest = target(cur, labels)?;
            push(if mnemonic == "j" {
                J {
                    target: dest as u16,
                }
            } else {
                Jal {
                    target: dest as u16,
                }
            });
        }
        "jr" => {
            let ra = creg(cur)?;
            push(Jr { ra });
        }
        "cimm" | "wctx" | "ctx" | "wait" => {
            let imm = imm_u16(cur, "immediate")?;
            push(match mnemonic.as_str() {
                "cimm" => Cimm { imm },
                "wctx" => Wctx { ctx: imm },
                "ctx" => Ctx { ctx: imm },
                _ => Wait { cycles: imm },
            });
        }
        "wdn" | "wsw" | "who" | "wmode" | "wloc" | "wlim" => {
            let (rs, imm) = reg_imm(cur)?;
            push(match mnemonic.as_str() {
                "wdn" => Wdn { rs, dnode: imm },
                "wsw" => Wsw { rs, port: imm },
                "who" => Who { rs, switch: imm },
                "wmode" => Wmode { rs, dnode: imm },
                "wloc" => Wloc { rs, packed: imm },
                _ => Wlim { rs, dnode: imm },
            });
        }
        "busw" => {
            let rs = creg(cur)?;
            push(Busw { rs });
        }
        "busr" => {
            let rd = creg(cur)?;
            push(Busr { rd });
        }
        "hpush" => {
            let rs = creg(cur)?;
            cur.expect(&Token::Comma, "`,`")?;
            let a = imm_u16(cur, "switch")?;
            let packed = if cur.eat(&Token::Comma) {
                // Three-operand form: hpush rs, switch, port.
                let port = imm_u16(cur, "port")?;
                if a > 255 || port > 255 {
                    return Err(AsmError::new(
                        line,
                        AsmErrorKind::OutOfRange {
                            what: "hpush switch/port".into(),
                            value: a.max(port) as i64,
                        },
                    ));
                }
                (a << 8) | port
            } else {
                // Two-operand form: the operand is the switch, port 0.
                if a > 255 {
                    return Err(AsmError::new(
                        line,
                        AsmErrorKind::OutOfRange {
                            what: "hpush switch".into(),
                            value: a as i64,
                        },
                    ));
                }
                a << 8
            };
            push(Hpush { rs, switch: packed });
        }
        "hpop" => {
            let rd = creg(cur)?;
            cur.expect(&Token::Comma, "`,`")?;
            let a = imm_u16(cur, "switch")?;
            let packed = if cur.eat(&Token::Comma) {
                // Three-operand form: hpop rd, switch, port.
                let port = imm_u16(cur, "port")?;
                if a > 255 || port > 255 {
                    return Err(AsmError::new(
                        line,
                        AsmErrorKind::OutOfRange {
                            what: "hpop switch/port".into(),
                            value: a.max(port) as i64,
                        },
                    ));
                }
                (a << 8) | port
            } else {
                // Two-operand form: the operand is the switch, port 0.
                if a > 255 {
                    return Err(AsmError::new(
                        line,
                        AsmErrorKind::OutOfRange {
                            what: "hpop switch".into(),
                            value: a as i64,
                        },
                    ));
                }
                a << 8
            };
            push(Hpop { rd, switch: packed });
        }
        other => {
            return Err(AsmError::new(
                line,
                AsmErrorKind::UnknownMnemonic(other.into()),
            ))
        }
    }
    Ok(())
}
