//! Line-oriented tokenizer for Systolic Ring assembly.
//!
//! The language is strictly line-based: every statement fits on one line,
//! comments run from `;` or `//` to end of line, and tokens are identifiers,
//! integer literals (decimal or `0x` hexadecimal, optionally negative) and
//! single-character punctuation.

use crate::error::{AsmError, AsmErrorKind};

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or mnemonic (lower-cased).
    Ident(String),
    /// Integer literal.
    Num(i64),
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `>`
    Arrow,
    /// `=`
    Equals,
    /// `#`
    Hash,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
}

/// Tokenizes one source line (without its comment).
///
/// # Errors
///
/// Returns [`AsmError`] for unrecognized characters or malformed numbers.
pub fn tokenize(line: &str, line_no: usize) -> Result<Vec<Token>, AsmError> {
    let code = strip_comment(line);
    let mut tokens = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '>' => {
                tokens.push(Token::Arrow);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Equals);
                i += 1;
            }
            '#' => {
                tokens.push(Token::Hash);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                // Hex literal: 0x followed by hex digits; otherwise decimal
                // digits only (so `4x2` lexes as `4`, `x2`).
                if i + 1 < bytes.len()
                    && bytes[i] == b'0'
                    && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X')
                {
                    i += 2;
                    let digits_start = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == digits_start {
                        // `0x` with no digits: report the whole blob.
                        while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                            i += 1;
                        }
                        return Err(AsmError::new(
                            line_no,
                            AsmErrorKind::BadNumber(code[start..i].into()),
                        ));
                    }
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &code[start..i];
                let value = parse_number(text)
                    .ok_or_else(|| AsmError::new(line_no, AsmErrorKind::BadNumber(text.into())))?;
                tokens.push(Token::Num(value));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token::Ident(code[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(AsmError::new(
                    line_no,
                    AsmErrorKind::BadToken(other.to_string()),
                ))
            }
        }
    }
    Ok(tokens)
}

fn strip_comment(line: &str) -> &str {
    let end = line
        .find(';')
        .into_iter()
        .chain(line.find("//"))
        .min()
        .unwrap_or(line.len());
    &line[..end]
}

fn parse_number(text: &str) -> Option<i64> {
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -value } else { value })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_micro_line() {
        let toks = tokenize("  mac in1, in2 > r0, out  ; accumulate", 1).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("mac".into()),
                Token::Ident("in1".into()),
                Token::Comma,
                Token::Ident("in2".into()),
                Token::Arrow,
                Token::Ident("r0".into()),
                Token::Comma,
                Token::Ident("out".into()),
            ]
        );
    }

    #[test]
    fn tokenizes_numbers() {
        let toks = tokenize("addi r1, r0, -42", 1).unwrap();
        assert_eq!(toks.last(), Some(&Token::Num(-42)));
        let toks = tokenize("lui r1, 0xBEEF", 1).unwrap();
        assert_eq!(toks.last(), Some(&Token::Num(0xbeef)));
        let toks = tokenize("lw r1, 4(r2)", 1).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("lw".into()),
                Token::Ident("r1".into()),
                Token::Comma,
                Token::Num(4),
                Token::LParen,
                Token::Ident("r2".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn strips_both_comment_styles() {
        assert!(tokenize("; whole line", 1).unwrap().is_empty());
        assert!(tokenize("// whole line", 1).unwrap().is_empty());
        assert_eq!(tokenize("nop // tail", 1).unwrap().len(), 1);
    }

    #[test]
    fn identifiers_are_lowercased() {
        let toks = tokenize("ADD In1, ONE", 1).unwrap();
        assert_eq!(toks[0], Token::Ident("add".into()));
        assert_eq!(toks[1], Token::Ident("in1".into()));
    }

    #[test]
    fn rejects_bad_tokens() {
        assert!(matches!(
            tokenize("add $1", 3).unwrap_err().kind,
            AsmErrorKind::BadToken(_)
        ));
        assert!(matches!(
            tokenize("addi r1, r0, 0xZZ", 3).unwrap_err().kind,
            AsmErrorKind::BadNumber(_)
        ));
    }

    #[test]
    fn geometry_literal_splits_into_tokens() {
        // `4x2` is a number followed by the identifier `x2`; the `.ring`
        // directive reassembles them.
        let toks = tokenize(".ring 4x2", 1).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Dot,
                Token::Ident("ring".into()),
                Token::Num(4),
                Token::Ident("x2".into()),
            ]
        );
    }

    #[test]
    fn route_line_tokens() {
        let toks = tokenize("route 0,1.in2 = pipe[3,0].1", 1).unwrap();
        assert_eq!(toks[0], Token::Ident("route".into()));
        assert!(toks.contains(&Token::Equals));
        assert!(toks.contains(&Token::LBracket));
    }
}
