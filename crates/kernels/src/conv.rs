//! Separable 3x3 image convolution: the FIR engine applied in 2-D.
//!
//! Gaussian-style smoothing, Sobel gradients and most classic video
//! filters factor into a horizontal and a vertical 3-tap pass. Each pass
//! runs on the spatial FIR pipeline ([`crate::fir::spatial`], one pixel
//! per cycle); rows are streamed back-to-back with a two-zero inter-row
//! gap (the FIR's memory), giving zero-padded boundaries, and the host
//! transposes between passes — the same line-based division of labour as
//! the wavelet workload.

use systolic_ring_isa::RingGeometry;

use crate::fir;
use crate::image::Image;
use crate::{KernelError, KernelRun};

/// Runs one 3-tap pass over every row of a `width x height` plane.
///
/// Output pixel `(x, y)` is `k[0]*p(x+1,y) + k[1]*p(x,y) + k[2]*p(x-1,y)`
/// with zero padding.
fn row_pass(
    geometry: RingGeometry,
    k: &[i16; 3],
    width: usize,
    height: usize,
    data: &[i16],
) -> Result<(Vec<i16>, u64), KernelError> {
    // Slotted stream: each row followed by two zeros so the FIR delay line
    // drains between rows.
    let stride = width + 2;
    let mut stream = Vec::with_capacity(stride * height);
    for y in 0..height {
        stream.extend_from_slice(&data[y * width..(y + 1) * width]);
        stream.extend_from_slice(&[0, 0]);
    }
    let run = fir::spatial(geometry, k, &stream)?;
    let mut out = vec![0i16; width * height];
    for y in 0..height {
        for x in 0..width {
            // out(x) = fir output one slot later (the x+1 tap leads).
            out[y * width + x] = run.outputs[y * stride + x + 1];
        }
    }
    Ok((out, run.cycles))
}

/// Result of a 2-D convolution.
#[derive(Clone, Debug)]
pub struct ConvRun {
    /// Filtered plane, row-major.
    pub output: Vec<i16>,
    /// Total cycles (both passes).
    pub cycles: u64,
    /// Pixels processed.
    pub pixels: usize,
}

/// Convolves `image` with the separable 3x3 kernel `kh x kv`
/// (zero-padded borders, 16-bit wrapping arithmetic, matching
/// [`crate::golden::conv3x3_separable`] exactly).
///
/// # Errors
///
/// Returns [`KernelError`] if the geometry cannot host the FIR pipeline or
/// the image is empty.
pub fn conv3x3(
    geometry: RingGeometry,
    kh: &[i16; 3],
    kv: &[i16; 3],
    image: &Image,
) -> Result<ConvRun, KernelError> {
    let (w, h) = (image.width(), image.height());
    if w == 0 || h == 0 {
        return Err(KernelError::BadParams("empty image".into()));
    }
    // Horizontal pass over rows.
    let (hpass, c1) = row_pass(geometry, kh, w, h, image.data())?;
    // Vertical pass = horizontal pass over the transpose.
    let mut transposed = vec![0i16; w * h];
    for y in 0..h {
        for x in 0..w {
            transposed[x * h + y] = hpass[y * w + x];
        }
    }
    let (vpass_t, c2) = row_pass(geometry, kv, h, w, &transposed)?;
    let mut output = vec![0i16; w * h];
    for x in 0..w {
        for y in 0..h {
            output[y * w + x] = vpass_t[x * h + y];
        }
    }
    Ok(ConvRun {
        output,
        cycles: c1 + c2,
        pixels: w * h,
    })
}

/// Convenience wrapper returning a [`KernelRun`] for uniform harness code.
pub fn conv3x3_run(
    geometry: RingGeometry,
    kh: &[i16; 3],
    kv: &[i16; 3],
    image: &Image,
) -> Result<KernelRun, KernelError> {
    let run = conv3x3(geometry, kh, kv, image)?;
    Ok(KernelRun {
        outputs: run.output,
        cycles: run.cycles,
        stats: systolic_ring_core::Stats::new(geometry.dnodes()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden;

    #[test]
    fn identity_kernel_passes_the_image_through() {
        let image = Image::textured(12, 9, 5);
        let run = conv3x3(RingGeometry::RING_16, &[0, 1, 0], &[0, 1, 0], &image).unwrap();
        assert_eq!(run.output, image.data());
    }

    #[test]
    fn box_blur_matches_golden() {
        let image = Image::textured(16, 12, 6);
        let kh = [1, 1, 1];
        let kv = [1, 1, 1];
        let run = conv3x3(RingGeometry::RING_16, &kh, &kv, &image).unwrap();
        assert_eq!(
            run.output,
            golden::conv3x3_separable(&kh, &kv, 16, 12, image.data())
        );
    }

    #[test]
    fn sobel_x_matches_golden() {
        // Sobel horizontal gradient: [-1 0 1] x [1 2 1].
        let image = Image::textured(20, 10, 7);
        let kh = [1, 0, -1];
        let kv = [1, 2, 1];
        let run = conv3x3(RingGeometry::RING_16, &kh, &kv, &image).unwrap();
        assert_eq!(
            run.output,
            golden::conv3x3_separable(&kh, &kv, 20, 10, image.data())
        );
    }

    #[test]
    fn throughput_is_about_one_pixel_per_cycle_per_pass() {
        let image = Image::textured(32, 32, 8);
        let run = conv3x3(RingGeometry::RING_16, &[1, 2, 1], &[1, 2, 1], &image).unwrap();
        let cpp = run.cycles as f64 / run.pixels as f64;
        // Two passes plus inter-row gaps: a little over 2 cycles/pixel.
        assert!(cpp < 2.5, "cycles/pixel = {cpp:.2}");
    }

    #[test]
    fn rejects_empty_images() {
        let empty = Image::zeros(0, 0);
        assert!(matches!(
            conv3x3(RingGeometry::RING_16, &[1, 1, 1], &[1, 1, 1], &empty),
            Err(KernelError::BadParams(_))
        ));
    }

    #[test]
    fn too_narrow_geometry_is_reported() {
        let image = Image::textured(8, 8, 1);
        assert!(matches!(
            conv3x3(RingGeometry::RING_8, &[1, 1, 1], &[1, 1, 1], &image),
            Err(KernelError::DoesNotFit(_))
        ));
    }
}
