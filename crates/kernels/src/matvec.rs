//! Matrix-vector multiplication: batched MAC lanes with parallel capture
//! drain.
//!
//! `y = A x` maps naturally onto the fabric: each layer-0 lane runs a MAC
//! over one matrix row's stream, so a batch of `width` rows completes
//! every `cols` cycles. Between batches the controller flips to a drain
//! context in which every lane exposes its accumulator and the downstream
//! switch's **per-lane host-output ports** capture all of them in a single
//! cycle — the parallel-extraction pattern the switches' "direct dedicated
//! ports" exist for — then a reset context clears the accumulators.
//!
//! Context schedule (driven by an assembled controller program):
//!
//! | context | role |
//! |---------|------|
//! | 0 | idle (reset state while the controller boots) |
//! | 1 | compute: every lane MACs `A[row][k] * x[k]` |
//! | 2 | drain: lanes expose accumulators; switch 1 captures all lanes |
//! | 3 | reset: accumulators cleared |

use systolic_ring_asm::assemble;
use systolic_ring_core::{MachineParams, RingMachine};
use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand, Reg};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

use crate::{KernelError, KernelRun};

/// Computes `y = A x` on the fabric (`a` is `rows x cols`, row-major).
///
/// # Errors
///
/// Returns [`KernelError`] for inconsistent dimensions or machine faults.
///
/// # Examples
///
/// ```
/// use systolic_ring_isa::RingGeometry;
/// use systolic_ring_kernels::matvec::multiply;
///
/// // [1 2; 3 4] * [5, 6]
/// let run = multiply(RingGeometry::RING_16, &[1, 2, 3, 4], 2, 2, &[5, 6])?;
/// assert_eq!(run.outputs, vec![17, 39]);
/// # Ok::<(), systolic_ring_kernels::KernelError>(())
/// ```
pub fn multiply(
    geometry: RingGeometry,
    a: &[i16],
    rows: usize,
    cols: usize,
    x: &[i16],
) -> Result<KernelRun, KernelError> {
    if a.len() != rows * cols {
        return Err(KernelError::BadParams(format!(
            "matrix is {}x{} but {} elements were given",
            rows,
            cols,
            a.len()
        )));
    }
    if x.len() != cols {
        return Err(KernelError::BadParams(format!(
            "vector length {} does not match {} columns",
            x.len(),
            cols
        )));
    }
    if rows == 0 || cols == 0 {
        return Err(KernelError::BadParams("empty matrix".into()));
    }
    let width = geometry.width();
    let batches = rows.div_ceil(width);

    let params = MachineParams::PAPER
        .with_contexts(4)
        .with_host_fifo_capacity(1 << 17);
    let mut m = RingMachine::new(geometry, params);

    let ctx_compute = 1;
    let ctx_drain = 2;
    let ctx_reset = 3;
    for lane in 0..width {
        let d = geometry.dnode_index(0, lane);
        let cfg = m.configure();
        cfg.set_port(
            ctx_compute,
            0,
            lane,
            0,
            PortSource::HostIn {
                port: (2 * lane) as u8,
            },
        )?;
        cfg.set_port(
            ctx_compute,
            0,
            lane,
            1,
            PortSource::HostIn {
                port: (2 * lane + 1) as u8,
            },
        )?;
        cfg.set_dnode_instr(
            ctx_compute,
            d,
            MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2).write_reg(Reg::R0),
        )?;
        cfg.set_dnode_instr(
            ctx_drain,
            d,
            MicroInstr::op(AluOp::PassA, Operand::Reg(Reg::R0), Operand::Zero).write_out(),
        )?;
        cfg.set_dnode_instr(
            ctx_reset,
            d,
            MicroInstr::op(AluOp::PassA, Operand::Zero, Operand::Zero).write_reg(Reg::R0),
        )?;
        // The drain context captures every lane in parallel on switch 1's
        // per-lane host-output ports.
        cfg.set_capture(ctx_drain, 1, lane, HostCapture::lane(lane as u8))?;
        m.open_sink(1, lane)?;
    }

    // Streams: lane l's row stream (port 2l) carries A[b*width + l][*] per
    // batch (zero rows for padding); the x stream (port 2l+1) repeats x.
    for lane in 0..width {
        let mut row_stream = Vec::with_capacity(batches * cols);
        let mut x_stream = Vec::with_capacity(batches * cols);
        for b in 0..batches {
            let r = b * width + lane;
            if r < rows {
                row_stream.extend(
                    a[r * cols..(r + 1) * cols]
                        .iter()
                        .map(|&v| Word16::from_i16(v)),
                );
            } else {
                row_stream.extend(std::iter::repeat_n(Word16::ZERO, cols));
            }
            x_stream.extend(x.iter().map(|&v| Word16::from_i16(v)));
        }
        m.attach_input(0, 2 * lane, row_stream)?;
        m.attach_input(0, 2 * lane + 1, x_stream)?;
    }

    // Controller: per batch, compute for `cols` cycles, drain two cycles
    // (the first capture is stale, the second fresh), reset.
    let mut asm = String::from(".code\n");
    asm.push_str(&format!("  addi r4, r0, {batches}\n"));
    asm.push_str("top:\n");
    asm.push_str(&format!("  ctx {ctx_compute}\n"));
    if cols > 1 {
        asm.push_str(&format!("  wait {}\n", cols - 1));
    }
    asm.push_str(&format!("  ctx {ctx_drain}\n"));
    asm.push_str("  nop\n");
    asm.push_str(&format!("  ctx {ctx_reset}\n"));
    asm.push_str("  addi r4, r4, -1\n");
    asm.push_str("  bne r4, r0, top\n");
    asm.push_str("  halt\n");
    let object = assemble(&asm).map_err(|e| KernelError::BadParams(format!("asm: {e}")))?;
    m.load(&object)?;

    let budget = (batches * (cols + 8) + 16) as u64;
    let cycles = m.run_until_halt(budget)?;

    // Each batch leaves two captures per port: a stale one (the previous
    // drain's output register) and the fresh accumulator.
    let mut outputs = vec![0i16; rows];
    for lane in 0..width {
        let sink = m.take_sink(1, lane)?;
        for b in 0..batches {
            let r = b * width + lane;
            if r < rows {
                outputs[r] = sink
                    .get(2 * b + 1)
                    .copied()
                    .unwrap_or(Word16::ZERO)
                    .as_i16();
            }
        }
    }
    Ok(KernelRun {
        outputs,
        cycles,
        stats: m.stats().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden;
    use crate::image::test_signal;

    #[test]
    fn small_matrix_matches_golden() {
        let a = [1i16, 2, 3, 4, 5, 6];
        let x = [7i16, -8];
        let run = multiply(RingGeometry::RING_16, &a, 3, 2, &x).unwrap();
        assert_eq!(run.outputs, golden::matvec(&a, 3, 2, &x));
    }

    #[test]
    fn larger_matrix_matches_golden() {
        let rows = 13;
        let cols = 9;
        let a = test_signal(rows * cols, 31);
        let x = test_signal(cols, 32);
        let run = multiply(RingGeometry::RING_16, &a, rows, cols, &x).unwrap();
        assert_eq!(run.outputs, golden::matvec(&a, rows, cols, &x));
    }

    #[test]
    fn single_column_matrix() {
        let a = [3i16, -4, 5];
        let x = [6i16];
        let run = multiply(RingGeometry::RING_8, &a, 3, 1, &x).unwrap();
        assert_eq!(run.outputs, vec![18, -24, 30]);
    }

    #[test]
    fn batches_scale_with_width() {
        // Same problem on a wider ring takes fewer cycles.
        let rows = 16;
        let cols = 24;
        let a = test_signal(rows * cols, 41);
        let x = test_signal(cols, 42);
        let narrow = multiply(RingGeometry::RING_8, &a, rows, cols, &x).unwrap();
        let wide = multiply(RingGeometry::RING_16, &a, rows, cols, &x).unwrap();
        assert_eq!(narrow.outputs, wide.outputs);
        assert!(wide.cycles < narrow.cycles);
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert!(matches!(
            multiply(RingGeometry::RING_8, &[1, 2, 3], 2, 2, &[1, 2]),
            Err(KernelError::BadParams(_))
        ));
        assert!(matches!(
            multiply(RingGeometry::RING_8, &[1, 2], 1, 2, &[1]),
            Err(KernelError::BadParams(_))
        ));
        assert!(matches!(
            multiply(RingGeometry::RING_8, &[], 0, 0, &[]),
            Err(KernelError::BadParams(_))
        ));
    }

    #[test]
    fn wrapping_matches_golden() {
        let a = vec![i16::MAX; 8];
        let x = vec![7i16; 4];
        let run = multiply(RingGeometry::RING_8, &a, 2, 4, &x).unwrap();
        assert_eq!(run.outputs, golden::matvec(&a, 2, 4, &x));
    }
}
