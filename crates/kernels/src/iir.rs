//! IIR (RII) filters through the feedback network.
//!
//! Recursive filters are the workload the **reverse dataflow** exists for
//! (§4.2, Figure 5): the filter state flows backwards through the feedback
//! pipelines instead of long routing wires.
//!
//! [`first_order`] realizes `y[n] = x[n] + (a * y[n-1]) >> shift` with
//! three Dnodes:
//!
//! * `D_add` (layer 0) — `y = x + fb`, in local mode with a period equal to
//!   the feedback-loop latency so each sample sees the *previous* output,
//! * `D_mul` (layer 1) — `a * y`, reading `y` from switch 1's pipeline,
//! * `D_shr` (layer 2) — the fixed-point scale `>> shift`, whose output
//!   returns to `D_add` through switch 3's pipeline.
//!
//! The registered loop (Dnode output register plus a pipeline stage at the
//! capture hops) is **five cycles** long, so the filter runs at one sample
//! per five cycles — the price of recursion on a pipelined fabric, made
//! explicit by the cycle counter.
//!
//! [`biquad`] extends the idea to the second-order section (the building
//! block of all classical IIR designs): a folded FIR macro-operator for
//! the feedforward taps plus a two-tap feedback path whose `y[n-1]` and
//! `y[n-2]` are **two pipeline stages of the same switch, one loop period
//! apart** — the output updates once per period, so consecutive samples
//! sit exactly `period` stages apart in the feedback pipeline.

use systolic_ring_core::{MachineParams, RingMachine};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand};
use systolic_ring_isa::switch::PortSource;
use systolic_ring_isa::{RingGeometry, Word16};

use crate::{KernelError, KernelRun};

/// Clock cycles per sample of the first-order IIR mapping.
pub const LOOP_CYCLES: u64 = 5;

/// Runs `y[n] = x[n] + (a * y[n-1]) >> shift` on the feedback network.
///
/// # Errors
///
/// Returns [`KernelError::DoesNotFit`] if the ring has fewer than 4 layers.
pub fn first_order(
    geometry: RingGeometry,
    a: i16,
    shift: u16,
    input: &[i16],
) -> Result<KernelRun, KernelError> {
    if geometry.layers() < 4 {
        return Err(KernelError::DoesNotFit(format!(
            "first-order IIR needs 4 layers, {geometry} has {}",
            geometry.layers()
        )));
    }
    let mut m = RingMachine::new(geometry, MachineParams::PAPER);
    let cfg = m.configure();

    // D_add at (0,0): local mode, period LOOP_CYCLES, samples x and the
    // returned feedback once per period.
    cfg.set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })?;
    cfg.set_port(
        0,
        0,
        0,
        2,
        PortSource::Pipe {
            switch: 3,
            stage: 0,
            lane: 0,
        },
    )?;

    // D_mul at (1,0): a * y, y read from switch 1's pipeline (capture of
    // layer 0).
    cfg.set_port(
        0,
        1,
        0,
        2,
        PortSource::Pipe {
            switch: 1,
            stage: 0,
            lane: 0,
        },
    )?;
    cfg.set_dnode_instr(
        0,
        geometry.dnode_index(1, 0),
        MicroInstr::op(AluOp::Mul, Operand::Fifo1, Operand::Imm)
            .with_imm(Word16::from_i16(a))
            .write_out(),
    )?;

    // D_shr at (2,0): >> shift.
    cfg.set_port(0, 2, 0, 0, PortSource::PrevOut { lane: 0 })?;
    cfg.set_dnode_instr(
        0,
        geometry.dnode_index(2, 0),
        MicroInstr::op(AluOp::Asr, Operand::In1, Operand::Imm)
            .with_imm(Word16::new(shift))
            .write_out(),
    )?;

    let add = MicroInstr::op(AluOp::Add, Operand::In1, Operand::Fifo1).write_out();
    let mut program = vec![add];
    program.extend(std::iter::repeat_n(
        MicroInstr::NOP,
        LOOP_CYCLES as usize - 1,
    ));
    m.set_local_program(0, &program)?;
    m.set_mode(0, DnodeMode::Local);

    m.attach_input(0, 0, input.iter().map(|&v| Word16::from_i16(v)))?;

    // Sample y after each add commit (logic-analyzer observation). The
    // first loop iteration reads an empty FIFO (x arrives one cycle after
    // the stream starts), so skip one warm-up period.
    let mut outputs = Vec::with_capacity(input.len());
    m.run(LOOP_CYCLES)?;
    for _ in 0..input.len() {
        // The add executes at the first cycle of each period; its result is
        // visible from the second cycle on.
        m.run(LOOP_CYCLES)?;
        outputs.push(m.dnode(0).out().as_i16());
    }
    Ok(KernelRun {
        outputs,
        cycles: m.cycle(),
        stats: m.stats().clone(),
    })
}

/// Clock cycles per sample of the biquad mapping (the folded feedforward
/// FIR's loop length paces the whole filter).
pub const BIQUAD_PERIOD: u64 = 7;

/// Runs the biquad `y[n] = (b0 x[n] + b1 x[n-1] + b2 x[n-2]) +
/// ((a1 y[n-1] + a2 y[n-2]) >> shift)` on six Dnodes:
///
/// * `D_ff` (1,0) — the folded 3-tap FIR macro-operator (local mode,
///   7-instruction loop) computing the feedforward part,
/// * `D_acc` (2,0) — local mode, period 7: `y = ff + fb` once per sample,
/// * `D_fb1` (3,0) / `D_fb2` (3,1) — `a1 * y[n-1]` and `a2 * y[n-2]`,
///   both read from **stage 1 and stage 8 of `D_acc`'s feedback
///   pipeline**: because `y` updates once per period, consecutive taps sit
///   exactly one period (7 stages) apart,
/// * `D_sum` (0,0) / `D_shr` (1,1) — the feedback sum and fixed-point
///   scale, re-entering `D_acc` through the crossbar.
///
/// # Errors
///
/// Returns [`KernelError::DoesNotFit`] for rings with fewer than 4 layers
/// or 2 lanes.
pub fn biquad(
    geometry: RingGeometry,
    b: &[i16; 3],
    a: &[i16; 2],
    shift: u16,
    input: &[i16],
) -> Result<KernelRun, KernelError> {
    if geometry.layers() < 4 || geometry.width() < 2 {
        return Err(KernelError::DoesNotFit(format!(
            "the biquad needs a 4x2 fabric, {geometry} is too small"
        )));
    }
    use systolic_ring_isa::dnode::Reg;
    let params = MachineParams::PAPER.with_pipe_depth(16);
    let mut m = RingMachine::new(geometry, params);
    let imm = Word16::from_i16;

    // D_ff at (1,0): the folded FIR-3 (x stream on switch 1, port 0).
    let d_ff = geometry.dnode_index(1, 0);
    m.configure()
        .set_port(0, 1, 0, 0, PortSource::HostIn { port: 0 })?;
    let ff_program = [
        MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_reg(Reg::R2),
        MicroInstr::op(AluOp::Mul, Operand::Reg(Reg::R2), Operand::Imm)
            .with_imm(imm(b[0]))
            .write_reg(Reg::R3),
        MicroInstr::op(AluOp::Mac, Operand::Reg(Reg::R0), Operand::Imm)
            .with_imm(imm(b[1]))
            .write_reg(Reg::R3),
        MicroInstr::op(AluOp::Mac, Operand::Reg(Reg::R1), Operand::Imm)
            .with_imm(imm(b[2]))
            .write_reg(Reg::R3),
        MicroInstr::op(AluOp::PassA, Operand::Reg(Reg::R0), Operand::Zero).write_reg(Reg::R1),
        MicroInstr::op(AluOp::PassA, Operand::Reg(Reg::R2), Operand::Zero).write_reg(Reg::R0),
        MicroInstr::op(AluOp::PassA, Operand::Reg(Reg::R3), Operand::Zero).write_out(),
    ];
    m.set_local_program(d_ff, &ff_program)?;
    m.set_mode(d_ff, DnodeMode::Local);

    // D_acc at (2,0): y = ff + fb, once per period.
    let d_acc = geometry.dnode_index(2, 0);
    m.configure()
        .set_port(0, 2, 0, 0, PortSource::PrevOut { lane: 0 })?; // ff
    m.configure()
        .set_port(0, 2, 0, 1, PortSource::PrevOut { lane: 1 })?; // fb (D_shr)
    let mut acc_program = vec![MicroInstr::op(AluOp::Add, Operand::In1, Operand::In2).write_out()];
    acc_program.extend(std::iter::repeat_n(
        MicroInstr::NOP,
        BIQUAD_PERIOD as usize - 1,
    ));
    m.set_local_program(d_acc, &acc_program)?;
    m.set_mode(d_acc, DnodeMode::Local);

    // Feedback taps read D_acc's pipeline (switch 3 captures layer 2):
    // stage 1 = y[n-1], stage 1 + period = y[n-2].
    let q1: u8 = 1;
    let q2: u8 = q1 + BIQUAD_PERIOD as u8;
    let d_fb1 = geometry.dnode_index(3, 0);
    m.configure().set_port(
        0,
        3,
        0,
        2,
        PortSource::Pipe {
            switch: 3,
            stage: q1,
            lane: 0,
        },
    )?;
    m.configure().set_dnode_instr(
        0,
        d_fb1,
        MicroInstr::op(AluOp::Mul, Operand::Fifo1, Operand::Imm)
            .with_imm(imm(a[0]))
            .write_out(),
    )?;
    let d_fb2 = geometry.dnode_index(3, 1);
    m.configure().set_port(
        0,
        3,
        1,
        2,
        PortSource::Pipe {
            switch: 3,
            stage: q2,
            lane: 0,
        },
    )?;
    m.configure().set_dnode_instr(
        0,
        d_fb2,
        MicroInstr::op(AluOp::Mul, Operand::Fifo1, Operand::Imm)
            .with_imm(imm(a[1]))
            .write_out(),
    )?;
    // D_sum at (0,0): a1*y1 + a2*y2.
    let d_sum = geometry.dnode_index(0, 0);
    m.configure()
        .set_port(0, 0, 0, 0, PortSource::PrevOut { lane: 0 })?;
    m.configure()
        .set_port(0, 0, 0, 1, PortSource::PrevOut { lane: 1 })?;
    m.configure().set_dnode_instr(
        0,
        d_sum,
        MicroInstr::op(AluOp::Add, Operand::In1, Operand::In2).write_out(),
    )?;
    // D_shr at (1,1): >> shift.
    let d_shr = geometry.dnode_index(1, 1);
    m.configure()
        .set_port(0, 1, 1, 0, PortSource::PrevOut { lane: 0 })?;
    m.configure().set_dnode_instr(
        0,
        d_shr,
        MicroInstr::op(AluOp::Asr, Operand::In1, Operand::Imm)
            .with_imm(Word16::new(shift))
            .write_out(),
    )?;

    m.attach_input(1, 0, input.iter().map(|&v| Word16::from_i16(v)))?;

    // The FF FIR's iteration j consumes x[j-1], and D_acc adds one period
    // later: sample y after two warm-up periods, then once per period.
    let mut outputs = Vec::with_capacity(input.len());
    m.run(2 * BIQUAD_PERIOD)?;
    for _ in 0..input.len() {
        m.run(BIQUAD_PERIOD)?;
        outputs.push(m.dnode(d_acc).out().as_i16());
    }
    Ok(KernelRun {
        outputs,
        cycles: m.cycle(),
        stats: m.stats().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden;
    use crate::image::test_signal;

    #[test]
    fn impulse_decays_like_golden() {
        // Pole 0.5: a = 128, shift = 8.
        let mut input = vec![0i16; 8];
        input[0] = 64;
        let run = first_order(RingGeometry::RING_8, 128, 8, &input).unwrap();
        assert_eq!(run.outputs, golden::iir_first_order(128, 8, &input));
        assert_eq!(run.outputs[..4], [64, 32, 16, 8]);
    }

    #[test]
    fn general_signal_matches_golden() {
        let input = test_signal(40, 21);
        let run = first_order(RingGeometry::RING_8, 100, 8, &input).unwrap();
        assert_eq!(run.outputs, golden::iir_first_order(100, 8, &input));
    }

    #[test]
    fn negative_pole_oscillates_like_golden() {
        let input = test_signal(30, 4);
        let run = first_order(RingGeometry::RING_16, -90, 8, &input).unwrap();
        assert_eq!(run.outputs, golden::iir_first_order(-90, 8, &input));
    }

    #[test]
    fn throughput_is_one_sample_per_loop() {
        let input = test_signal(20, 2);
        let run = first_order(RingGeometry::RING_8, 50, 8, &input).unwrap();
        assert_eq!(run.cycles, LOOP_CYCLES * (input.len() as u64 + 1));
    }

    #[test]
    fn biquad_matches_golden() {
        let b = [2i16, -1, 3];
        let a = [100i16, -40];
        let input = test_signal(32, 13);
        let run = biquad(RingGeometry::RING_8, &b, &a, 8, &input).unwrap();
        assert_eq!(run.outputs, golden::iir_biquad(&b, &a, 8, &input));
    }

    #[test]
    fn biquad_without_feedback_is_the_fir() {
        let b = [3i16, -2, 5];
        let input = test_signal(24, 14);
        let run = biquad(RingGeometry::RING_8, &b, &[0, 0], 8, &input).unwrap();
        assert_eq!(run.outputs, golden::fir(&b, &input));
    }

    #[test]
    fn biquad_resonator_rings() {
        // A damped resonator: poles near the unit circle produce a ringing
        // impulse response that must match the golden model exactly.
        let mut input = vec![0i16; 40];
        input[0] = 100;
        let b = [1i16, 0, 0];
        let a = [200i16, -120];
        let run = biquad(RingGeometry::RING_16, &b, &a, 7, &input).unwrap();
        let expect = golden::iir_biquad(&b, &a, 7, &input);
        assert_eq!(run.outputs, expect);
        // It actually oscillates (sign changes in the tail).
        let flips = run
            .outputs
            .windows(2)
            .filter(|w| (w[0] as i32) * (w[1] as i32) < 0)
            .count();
        assert!(flips >= 2, "outputs: {:?}", run.outputs);
    }

    #[test]
    fn biquad_throughput_is_one_sample_per_period() {
        let input = test_signal(10, 3);
        let run = biquad(RingGeometry::RING_8, &[1, 0, 0], &[50, 10], 8, &input).unwrap();
        assert_eq!(run.cycles, BIQUAD_PERIOD * (input.len() as u64 + 2));
        // Six Dnodes busy.
        assert_eq!(run.stats.idle_dnodes(), 2);
    }

    #[test]
    fn biquad_needs_a_4x2_fabric() {
        let tiny = RingGeometry::new(4, 1).unwrap();
        assert!(matches!(
            biquad(tiny, &[1, 0, 0], &[0, 0], 0, &[1]),
            Err(KernelError::DoesNotFit(_))
        ));
    }

    #[test]
    fn needs_four_layers() {
        let tiny = RingGeometry::new(2, 4).unwrap();
        assert!(matches!(
            first_order(tiny, 1, 0, &[1]),
            Err(KernelError::DoesNotFit(_))
        ));
    }
}
