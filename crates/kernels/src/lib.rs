//! DSP kernels mapped onto the Systolic Ring, with bit-exact golden models.
//!
//! This crate reproduces the paper's application layer:
//!
//! * the **macro-operator library** the local (stand-alone) mode is designed
//!   for — [`mac`] (multiply-accumulate), [`fir`] (RIF filters), [`iir`]
//!   (RII filters with the feedback network), [`fifo`] (FIFO emulation) —
//!   §4.1 and §6,
//! * the two evaluation workloads — [`motion`] (H.261-style full-search
//!   block matching, Table 1) and [`wavelet`] (JPEG2000-style 5/3 lifting
//!   transform, Table 2),
//! * further DSP applications in the paper's target domain — [`matvec`]
//!   (batched matrix-vector products), [`conv`] (separable 3x3 image
//!   convolution) and [`fft`] (radix-2 butterflies / a full streamed FFT),
//! * [`golden`] software reference models and [`image`] synthetic workload
//!   generators.
//!
//! Every kernel returns a [`KernelRun`] carrying its outputs *and* the
//! exact cycle count, which the benchmark harness turns into the paper's
//! tables.

use systolic_ring_core::Stats;

pub mod batch;
pub mod conv;
pub mod fft;
pub mod fifo;
pub mod fir;
pub mod golden;
pub mod iir;
pub mod image;
pub mod mac;
pub mod matvec;
pub mod motion;
pub mod objects;
pub mod wavelet;

/// Result of running a kernel on the simulator.
#[derive(Clone, Debug)]
pub struct KernelRun {
    /// Kernel outputs in producer order.
    pub outputs: Vec<i16>,
    /// Clock cycles consumed (from machine reset to result availability).
    pub cycles: u64,
    /// Machine statistics over the run.
    pub stats: Stats,
}

/// Error raised by a kernel driver.
#[derive(Clone, Debug, PartialEq)]
pub enum KernelError {
    /// The requested geometry cannot host this kernel mapping.
    DoesNotFit(String),
    /// Invalid kernel parameters.
    BadParams(String),
    /// The underlying machine rejected the configuration.
    Config(systolic_ring_core::ConfigError),
    /// The machine faulted while running.
    Sim(systolic_ring_core::SimError),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::DoesNotFit(msg) => write!(f, "kernel does not fit: {msg}"),
            KernelError::BadParams(msg) => write!(f, "bad kernel parameters: {msg}"),
            KernelError::Config(e) => write!(f, "configuration rejected: {e}"),
            KernelError::Sim(e) => write!(f, "machine fault: {e}"),
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelError::Config(e) => Some(e),
            KernelError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<systolic_ring_core::ConfigError> for KernelError {
    fn from(e: systolic_ring_core::ConfigError) -> Self {
        KernelError::Config(e)
    }
}

impl From<systolic_ring_core::SimError> for KernelError {
    fn from(e: systolic_ring_core::SimError) -> Self {
        KernelError::Sim(e)
    }
}
