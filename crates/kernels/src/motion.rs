//! Full-search block-matching motion estimation (Table 1 workload).
//!
//! The paper evaluates "matching a 8x8 reference block against its search
//! area of 8 pixels displacement" (H.261-style) on a Ring-16. This module
//! reproduces that computation end to end on the simulator, orchestrated by
//! an **assembled controller program** — the full paper tool flow.
//!
//! # Mapping
//!
//! SAD units are layer pairs: for unit `(p, l)` the Dnode at
//! `(layer 2p, lane l)` computes per-pixel `absd` on two host streams
//! (reference and candidate pixels) and the Dnode at `(layer 2p+1, lane l)`
//! accumulates. A `layers/2 x width` geometry therefore hosts
//! `units = (layers/2) * width` candidates in flight (Ring-16: 8), each
//! taking `block_pixels` cycles.
//!
//! # Dynamic reconfiguration schedule
//!
//! The controller cycles configuration contexts per round:
//!
//! | context   | role |
//! |-----------|------|
//! | 0         | idle (active at reset, while the controller sets up) |
//! | 1         | compute: `absd` + accumulate, one pixel/cycle/unit |
//! | 2         | finish: one extra accumulate for the in-flight last pixel |
//! | 3+u       | drain: unit `u`'s accumulator drives the shared bus |
//! | 3+units   | reset: accumulators and `absd` outputs cleared |
//!
//! The controller reads each SAD off the bus (`busr`) and stores it to its
//! data memory (`sw`); the host driver performs the argmin, exactly like
//! the host CPU in the paper's SoC usage model.

use systolic_ring_asm::assemble;
use systolic_ring_core::{MachineParams, RingMachine};
use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand, Reg};
use systolic_ring_isa::switch::PortSource;
use systolic_ring_isa::{RingGeometry, Word16};

use crate::image::Image;
use crate::{KernelError, KernelRun};

/// Parameters of one block-matching problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMatch {
    /// Top-left x of the tracked block in the current frame.
    pub x0: usize,
    /// Top-left y of the tracked block in the current frame.
    pub y0: usize,
    /// Block side in pixels (the paper uses 8).
    pub block: usize,
    /// Maximum displacement in pixels (the paper uses 8).
    pub range: isize,
}

impl BlockMatch {
    /// The paper's Table 1 configuration: 8x8 block, ±8 displacement.
    pub const PAPER: BlockMatch = BlockMatch {
        x0: 0,
        y0: 0,
        block: 8,
        range: 8,
    };

    /// The paper configuration centred at (`x0`, `y0`).
    pub fn paper_at(x0: usize, y0: usize) -> Self {
        BlockMatch {
            x0,
            y0,
            ..BlockMatch::PAPER
        }
    }
}

/// Result of a hardware block-matching run.
#[derive(Clone, Debug)]
pub struct MotionEstimate {
    /// Winning displacement.
    pub best: (isize, isize),
    /// Winning SAD.
    pub best_sad: u32,
    /// All evaluated `(dx, dy, sad)` candidates in evaluation order.
    pub candidates: Vec<(isize, isize, u32)>,
    /// Total clock cycles, controller setup and drains included.
    pub cycles: u64,
    /// Machine statistics.
    pub stats: systolic_ring_core::Stats,
}

/// Number of SAD units a geometry hosts (`layers/2 * width`).
pub fn sad_units(geometry: RingGeometry) -> usize {
    (geometry.layers() / 2) * geometry.width()
}

/// Closed-form cycle model of the hardware schedule, used for geometry
/// sweeps and cross-checked against simulation in the tests.
///
/// Per round: 1 (`ctx 0`) + `px-1` (`wait`) + 1 (finish) + `4*units`
/// (drain) + 1 (reset) + 3 (loop bookkeeping); plus 1 setup cycle and 1
/// halt.
pub fn analytic_cycles(geometry: RingGeometry, candidates: usize, block_pixels: usize) -> u64 {
    let units = sad_units(geometry);
    if units == 0 || candidates == 0 {
        return 0;
    }
    let rounds = candidates.div_ceil(units) as u64;
    let per_round = 1 + (block_pixels as u64 - 1) + 1 + 4 * units as u64 + 1 + 3;
    1 + rounds * per_round + 1
}

/// Runs full-search block matching for `spec` on the simulator.
///
/// `current` supplies the tracked block, `reference` the search area — the
/// H.261 usage where motion is estimated against the previous frame.
///
/// # Errors
///
/// Returns [`KernelError`] if the geometry has an odd layer count, the
/// block leaves the frame, or the machine faults.
pub fn block_match(
    geometry: RingGeometry,
    reference: &Image,
    current: &Image,
    spec: BlockMatch,
) -> Result<MotionEstimate, KernelError> {
    if !geometry.layers().is_multiple_of(2) {
        return Err(KernelError::DoesNotFit(format!(
            "{geometry} has an odd layer count; SAD units need layer pairs"
        )));
    }
    let units = sad_units(geometry);
    if units == 0 {
        return Err(KernelError::DoesNotFit("no SAD units".into()));
    }
    if units + 4 > 256 {
        return Err(KernelError::DoesNotFit(format!(
            "{units} SAD units exceed the 253-unit context budget"
        )));
    }
    let bs = spec.block;
    if bs == 0 || spec.x0 + bs > current.width() || spec.y0 + bs > current.height() {
        return Err(KernelError::BadParams(format!(
            "block {bs}x{bs} at ({}, {}) leaves the {}x{} frame",
            spec.x0,
            spec.y0,
            current.width(),
            current.height()
        )));
    }
    if reference.width() != current.width() || reference.height() != current.height() {
        return Err(KernelError::BadParams("frame size mismatch".into()));
    }
    let px = bs * bs;
    let block = current.block(spec.x0, spec.y0, bs, bs);

    // Enumerate in-frame candidates in row-major displacement order (the
    // golden model's tie-break order).
    let mut displacements = Vec::new();
    for dy in -spec.range..=spec.range {
        for dx in -spec.range..=spec.range {
            let cx = spec.x0 as isize + dx;
            let cy = spec.y0 as isize + dy;
            if cx < 0
                || cy < 0
                || cx as usize + bs > reference.width()
                || cy as usize + bs > reference.height()
            {
                continue;
            }
            displacements.push((dx, dy));
        }
    }
    if displacements.is_empty() {
        return Err(KernelError::BadParams("no in-frame candidates".into()));
    }
    let rounds = displacements.len().div_ceil(units);

    // ---- Machine and fabric configuration --------------------------------
    let params = MachineParams::PAPER
        .with_contexts(units + 4)
        .with_host_fifo_capacity(1 << 17);
    let mut m = RingMachine::new(geometry, params);
    // Context 0 is active at reset (while the controller sets up), so it
    // stays the all-NOP idle configuration; compute lives in context 1.
    let ctx_compute = 1usize;
    let ctx_finish = 2usize;
    let ctx_drain0 = 3usize;
    let ctx_reset = units + 3;

    for p in 0..geometry.layers() / 2 {
        for l in 0..geometry.width() {
            let u = p * geometry.width() + l;
            let absd = geometry.dnode_index(2 * p, l);
            let acc = geometry.dnode_index(2 * p + 1, l);
            let cfg = m.configure();
            // Compute context.
            cfg.set_port(
                ctx_compute,
                2 * p,
                l,
                0,
                PortSource::HostIn {
                    port: (2 * l) as u8,
                },
            )?;
            cfg.set_port(
                ctx_compute,
                2 * p,
                l,
                1,
                PortSource::HostIn {
                    port: (2 * l + 1) as u8,
                },
            )?;
            cfg.set_dnode_instr(
                ctx_compute,
                absd,
                MicroInstr::op(AluOp::AbsDiff, Operand::In1, Operand::In2).write_out(),
            )?;
            cfg.set_port(
                ctx_compute,
                2 * p + 1,
                l,
                0,
                PortSource::PrevOut { lane: l as u8 },
            )?;
            let accumulate =
                MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::In1).write_reg(Reg::R0);
            cfg.set_dnode_instr(ctx_compute, acc, accumulate)?;
            // Finish context: one extra accumulate, no host reads.
            cfg.set_port(
                ctx_finish,
                2 * p + 1,
                l,
                0,
                PortSource::PrevOut { lane: l as u8 },
            )?;
            cfg.set_dnode_instr(ctx_finish, acc, accumulate)?;
            // Drain context for this unit.
            cfg.set_dnode_instr(
                ctx_drain0 + u,
                acc,
                MicroInstr::op(AluOp::PassA, Operand::Reg(Reg::R0), Operand::Zero).write_bus(),
            )?;
            // Reset context: clear accumulator and absd output.
            cfg.set_dnode_instr(
                ctx_reset,
                acc,
                MicroInstr::op(AluOp::PassA, Operand::Zero, Operand::Zero).write_reg(Reg::R0),
            )?;
            cfg.set_dnode_instr(
                ctx_reset,
                absd,
                MicroInstr::op(AluOp::PassA, Operand::Zero, Operand::Zero).write_out(),
            )?;
        }
    }

    // ---- Streams ----------------------------------------------------------
    // Unit u, round r handles candidate r*units + u; idle slots are padded
    // with zeros so every unit consumes exactly px words per round.
    for p in 0..geometry.layers() / 2 {
        for l in 0..geometry.width() {
            let u = p * geometry.width() + l;
            let mut ref_stream = Vec::with_capacity(rounds * px);
            let mut cand_stream = Vec::with_capacity(rounds * px);
            for r in 0..rounds {
                let i = r * units + u;
                match displacements.get(i) {
                    Some(&(dx, dy)) => {
                        ref_stream.extend(block.iter().map(|&v| Word16::from_i16(v)));
                        let cx = (spec.x0 as isize + dx) as usize;
                        let cy = (spec.y0 as isize + dy) as usize;
                        cand_stream.extend(
                            reference
                                .block(cx, cy, bs, bs)
                                .iter()
                                .map(|&v| Word16::from_i16(v)),
                        );
                    }
                    None => {
                        ref_stream.extend(std::iter::repeat_n(Word16::ZERO, px));
                        cand_stream.extend(std::iter::repeat_n(Word16::ZERO, px));
                    }
                }
            }
            m.attach_input(2 * p, 2 * l, ref_stream)?;
            m.attach_input(2 * p, 2 * l + 1, cand_stream)?;
        }
    }

    // ---- Controller program -----------------------------------------------
    let mut asm = String::from(".code\n");
    asm.push_str(&format!("  addi r4, r0, {rounds}\n"));
    asm.push_str("round_top:\n");
    asm.push_str(&format!("  ctx {ctx_compute}\n"));
    asm.push_str(&format!("  wait {}\n", px - 1));
    asm.push_str(&format!("  ctx {ctx_finish}\n"));
    for u in 0..units {
        asm.push_str(&format!("  ctx {}\n", ctx_drain0 + u));
        asm.push_str("  nop\n");
        asm.push_str("  busr r2\n");
        asm.push_str(&format!("  sw r2, {u}(r3)\n"));
    }
    asm.push_str(&format!("  ctx {ctx_reset}\n"));
    asm.push_str(&format!("  addi r3, r3, {units}\n"));
    asm.push_str("  addi r4, r4, -1\n");
    asm.push_str("  bne r4, r0, round_top\n");
    asm.push_str("  halt\n");
    let object = assemble(&asm).map_err(|e| KernelError::BadParams(format!("asm: {e}")))?;
    m.load(&object)?;

    // ---- Run ----------------------------------------------------------------
    let budget = analytic_cycles(geometry, displacements.len(), px) * 2 + 1000;
    let cycles = m.run_until_halt(budget)?;

    // ---- Collect -------------------------------------------------------------
    let mut candidates = Vec::with_capacity(displacements.len());
    let mut best = (0isize, 0isize);
    let mut best_sad = u32::MAX;
    for (i, &(dx, dy)) in displacements.iter().enumerate() {
        let sad = m
            .controller()
            .dmem(i)
            .expect("dmem slot exists for every candidate");
        candidates.push((dx, dy, sad));
        if sad < best_sad {
            best_sad = sad;
            best = (dx, dy);
        }
    }
    Ok(MotionEstimate {
        best,
        best_sad,
        candidates,
        cycles,
        stats: m.stats().clone(),
    })
}

/// Convenience wrapper returning a [`KernelRun`]-shaped summary (SADs as
/// outputs) for harness code that treats all kernels uniformly.
pub fn block_match_run(
    geometry: RingGeometry,
    reference: &Image,
    current: &Image,
    spec: BlockMatch,
) -> Result<KernelRun, KernelError> {
    let est = block_match(geometry, reference, current, spec)?;
    Ok(KernelRun {
        outputs: est.candidates.iter().map(|&(_, _, s)| s as i16).collect(),
        cycles: est.cycles,
        stats: est.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden;

    /// A small problem that still exercises multiple rounds: 4x4 block,
    /// ±2 displacement on Ring-8 (4 SAD units).
    fn small_case() -> (Image, Image, BlockMatch) {
        let (reference, current) = Image::motion_pair(24, 24, 1, -1, 3);
        let spec = BlockMatch {
            x0: 8,
            y0: 8,
            block: 4,
            range: 2,
        };
        (reference, current, spec)
    }

    #[test]
    fn sads_match_golden_for_every_candidate() {
        let (reference, current, spec) = small_case();
        let est = block_match(RingGeometry::RING_8, &reference, &current, spec).unwrap();
        let block = current.block(spec.x0, spec.y0, spec.block, spec.block);
        for &(dx, dy, sad) in &est.candidates {
            let cx = (spec.x0 as isize + dx) as usize;
            let cy = (spec.y0 as isize + dy) as usize;
            let cand = reference.block(cx, cy, spec.block, spec.block);
            assert_eq!(
                sad as i32,
                golden::sad(&block, &cand),
                "candidate ({dx},{dy})"
            );
        }
        assert_eq!(est.candidates.len(), 25);
    }

    #[test]
    fn best_match_agrees_with_golden_full_search() {
        let (reference, current, spec) = small_case();
        let est = block_match(RingGeometry::RING_8, &reference, &current, spec).unwrap();
        let block = current.block(spec.x0, spec.y0, spec.block, spec.block);
        let (dx, dy, sad) = golden::full_search(
            reference.data(),
            reference.width(),
            reference.height(),
            &block,
            spec.block,
            spec.block,
            spec.x0 as isize,
            spec.y0 as isize,
            spec.range,
        );
        assert_eq!(est.best, (dx, dy));
        assert_eq!(est.best_sad as i32, sad);
        // The planted motion is (1, -1); tracking back finds (-1, 1).
        assert_eq!(est.best, (-1, 1));
    }

    #[test]
    fn cycle_count_matches_the_analytic_model() {
        let (reference, current, spec) = small_case();
        let est = block_match(RingGeometry::RING_8, &reference, &current, spec).unwrap();
        let predicted = analytic_cycles(RingGeometry::RING_8, est.candidates.len(), 16);
        assert_eq!(est.cycles, predicted);
    }

    #[test]
    fn wider_rings_take_fewer_cycles() {
        let (reference, current, spec) = small_case();
        let small = block_match(RingGeometry::RING_8, &reference, &current, spec).unwrap();
        let large = block_match(RingGeometry::RING_16, &reference, &current, spec).unwrap();
        assert_eq!(small.best, large.best);
        assert_eq!(small.best_sad, large.best_sad);
        assert!(large.cycles < small.cycles);
    }

    #[test]
    fn rejects_bad_geometry_and_params() {
        let (reference, current, spec) = small_case();
        let odd = RingGeometry::new(3, 2).unwrap();
        assert!(matches!(
            block_match(odd, &reference, &current, spec),
            Err(KernelError::DoesNotFit(_))
        ));
        let bad = BlockMatch {
            x0: 30,
            y0: 0,
            block: 4,
            range: 2,
        };
        assert!(matches!(
            block_match(RingGeometry::RING_8, &reference, &current, bad),
            Err(KernelError::BadParams(_))
        ));
    }

    #[test]
    fn analytic_model_shape() {
        // Ring-16: 8 units; paper problem: 289 candidates of 64 pixels.
        let cycles = analytic_cycles(RingGeometry::RING_16, 289, 64);
        let rounds = 289u64.div_ceil(8);
        // Per round: ctx + wait 63 + finish + 4*8 drain + reset + 3 loop.
        assert_eq!(cycles, 1 + rounds * (1 + 63 + 1 + 32 + 1 + 3) + 1);
        assert_eq!(analytic_cycles(RingGeometry::RING_16, 0, 64), 0);
    }

    #[test]
    fn edge_blocks_skip_out_of_frame_candidates() {
        let (reference, current) = Image::motion_pair(16, 16, 0, 0, 9);
        let spec = BlockMatch {
            x0: 0,
            y0: 0,
            block: 4,
            range: 3,
        };
        let est = block_match(RingGeometry::RING_8, &reference, &current, spec).unwrap();
        // Only non-negative displacements stay in frame.
        assert!(est.candidates.iter().all(|&(dx, dy, _)| dx >= 0 && dy >= 0));
        assert_eq!(est.candidates.len(), 16);
    }
}
