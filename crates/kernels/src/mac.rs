//! Multiply-accumulate macro-operators: dot products on the ring.
//!
//! The single-cycle MAC is the paper's flagship Dnode feature ("its
//! instruction set features for instance a MAC operation using this
//! resources, thus accelerating multiply-and-accumulate operations", §4.1).
//! Two mappings are provided:
//!
//! * [`dot_product`] — one Dnode in **local mode** accumulating two host
//!   streams: the canonical stand-alone macro-operator.
//! * [`dot_product_parallel`] — one MAC lane per Dnode of the first layer,
//!   each handling an interleaved slice of the vectors; results drain
//!   through a second configuration context that turns the accumulators
//!   into outputs (dynamic reconfiguration for result extraction).

use systolic_ring_core::{MachineParams, RingMachine};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

use crate::{KernelError, KernelRun};

/// Computes `sum(a[i] * b[i])` (16-bit wrapping) on a single local-mode
/// MAC Dnode.
///
/// # Errors
///
/// Returns [`KernelError::BadParams`] if the vectors differ in length.
///
/// # Examples
///
/// ```
/// use systolic_ring_isa::RingGeometry;
/// use systolic_ring_kernels::mac::dot_product;
///
/// let run = dot_product(RingGeometry::RING_8, &[1, 2, 3], &[4, 5, 6])?;
/// assert_eq!(run.outputs, vec![32]);
/// # Ok::<(), systolic_ring_kernels::KernelError>(())
/// ```
pub fn dot_product(geometry: RingGeometry, a: &[i16], b: &[i16]) -> Result<KernelRun, KernelError> {
    if a.len() != b.len() {
        return Err(KernelError::BadParams(format!(
            "vector lengths differ: {} vs {}",
            a.len(),
            b.len()
        )));
    }
    let mut m = RingMachine::new(geometry, MachineParams::PAPER);
    m.configure()
        .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })?;
    m.configure()
        .set_port(0, 0, 0, 1, PortSource::HostIn { port: 1 })?;
    let mac = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2).write_reg(Reg::R0);
    m.set_local_program(0, &[mac])?;
    m.set_mode(0, DnodeMode::Local);
    m.attach_input(0, 0, a.iter().map(|&v| Word16::from_i16(v)))?;
    m.attach_input(0, 1, b.iter().map(|&v| Word16::from_i16(v)))?;
    // One word per port per cycle, plus one warm-up cycle; trailing cycles
    // accumulate zero products and are harmless.
    let cycles = a.len() as u64 + 2;
    m.run(cycles)?;
    Ok(KernelRun {
        outputs: vec![m.dnode(0).reg(Reg::R0).as_i16()],
        cycles: m.cycle(),
        stats: m.stats().clone(),
    })
}

/// Computes a dot product with `width` parallel MAC lanes (layer 0), each
/// accumulating an interleaved slice, then drains the lane accumulators
/// through a second configuration context and a host capture.
///
/// The drain path exercises exactly the mechanism the evaluation workloads
/// use: context 0 computes, context 1 turns every lane into `mov r0 > out`
/// and sums pairwise through the next layer.
///
/// # Errors
///
/// Returns [`KernelError`] if the vectors differ in length or the machine
/// rejects the mapping.
pub fn dot_product_parallel(
    geometry: RingGeometry,
    a: &[i16],
    b: &[i16],
) -> Result<KernelRun, KernelError> {
    if a.len() != b.len() {
        return Err(KernelError::BadParams(format!(
            "vector lengths differ: {} vs {}",
            a.len(),
            b.len()
        )));
    }
    let width = geometry.width();
    let mut m = RingMachine::new(geometry, MachineParams::PAPER);

    // Context 0: every lane of layer 0 MACs its two host streams.
    for lane in 0..width {
        m.configure().set_port(
            0,
            0,
            lane,
            0,
            PortSource::HostIn {
                port: (2 * lane) as u8,
            },
        )?;
        m.configure().set_port(
            0,
            0,
            lane,
            1,
            PortSource::HostIn {
                port: (2 * lane + 1) as u8,
            },
        )?;
        let d = geometry.dnode_index(0, lane);
        m.configure().set_dnode_instr(
            0,
            d,
            MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2).write_reg(Reg::R0),
        )?;
    }

    // Context 1: lanes expose their accumulators; switch 1 captures them
    // one lane at a time is not possible (capture selects a single lane),
    // so lanes take turns via the drain loop below.
    for lane in 0..width {
        let d = geometry.dnode_index(0, lane);
        m.configure().set_dnode_instr(
            1,
            d,
            MicroInstr::op(AluOp::PassA, Operand::Reg(Reg::R0), Operand::Zero).write_out(),
        )?;
    }
    m.open_sink(1, 0)?;

    // Interleave the vectors across lanes.
    for lane in 0..width {
        let slice_a: Vec<Word16> = a
            .iter()
            .skip(lane)
            .step_by(width)
            .map(|&v| Word16::from_i16(v))
            .collect();
        let slice_b: Vec<Word16> = b
            .iter()
            .skip(lane)
            .step_by(width)
            .map(|&v| Word16::from_i16(v))
            .collect();
        m.attach_input(0, 2 * lane, slice_a)?;
        m.attach_input(0, 2 * lane + 1, slice_b)?;
    }

    let compute_cycles = a.len().div_ceil(width) as u64 + 2;
    m.run(compute_cycles)?;

    // Drain: context 1, capture each lane in turn.
    m.configure().select(1)?;
    let mut outputs = Vec::with_capacity(width);
    for lane in 0..width {
        m.configure()
            .set_capture(1, 1, 0, HostCapture::lane(lane as u8))?;
        // out is registered and the capture runs off the registered value:
        // give each lane three cycles to appear at the sink.
        m.run(3)?;
        let sink = m.take_sink(1, 0)?;
        let value = sink.last().copied().unwrap_or(Word16::ZERO);
        outputs.push(value.as_i16());
    }
    Ok(KernelRun {
        outputs,
        cycles: m.cycle(),
        stats: m.stats().clone(),
    })
}

/// Host-side reduction of the per-lane partial sums produced by
/// [`dot_product_parallel`].
pub fn reduce_partials(partials: &[i16]) -> i16 {
    partials.iter().fold(0i16, |acc, &v| acc.wrapping_add(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden;

    #[test]
    fn single_lane_matches_golden() {
        let a: Vec<i16> = (1..=20).collect();
        let b: Vec<i16> = (1..=20).map(|v| v * 3 % 17).collect();
        let run = dot_product(RingGeometry::RING_8, &a, &b).unwrap();
        assert_eq!(run.outputs[0], golden::dot_product(&a, &b));
        // One MAC per element (plus warm-up idle cycles).
        assert_eq!(run.stats.dnodes[0].mult_ops, run.stats.cycles);
    }

    #[test]
    fn single_lane_wraps_like_golden() {
        let a = vec![i16::MAX; 9];
        let b = vec![3; 9];
        let run = dot_product(RingGeometry::RING_8, &a, &b).unwrap();
        assert_eq!(run.outputs[0], golden::dot_product(&a, &b));
    }

    #[test]
    fn rejects_mismatched_lengths() {
        assert!(matches!(
            dot_product(RingGeometry::RING_8, &[1], &[1, 2]),
            Err(KernelError::BadParams(_))
        ));
        assert!(matches!(
            dot_product_parallel(RingGeometry::RING_8, &[1], &[]),
            Err(KernelError::BadParams(_))
        ));
    }

    #[test]
    fn parallel_lanes_match_golden() {
        let a: Vec<i16> = (0..32).map(|v| v - 11).collect();
        let b: Vec<i16> = (0..32).map(|v| 2 * v % 23 - 7).collect();
        let run = dot_product_parallel(RingGeometry::RING_8, &a, &b).unwrap();
        assert_eq!(run.outputs.len(), 2); // Ring-8 width
        assert_eq!(reduce_partials(&run.outputs), golden::dot_product(&a, &b));
    }

    #[test]
    fn parallel_is_faster_per_element() {
        let a: Vec<i16> = vec![1; 64];
        let b: Vec<i16> = vec![2; 64];
        let serial = dot_product(RingGeometry::RING_16, &a, &b).unwrap();
        let parallel = dot_product_parallel(RingGeometry::RING_16, &a, &b).unwrap();
        assert!(
            parallel.cycles < serial.cycles,
            "parallel {} vs serial {}",
            parallel.cycles,
            serial.cycles
        );
    }

    #[test]
    fn empty_vectors_yield_zero() {
        let run = dot_product(RingGeometry::RING_8, &[], &[]).unwrap();
        assert_eq!(run.outputs, vec![0]);
    }
}
