//! Synthetic image and signal generators.
//!
//! The paper evaluates on 16-bit-coded images (64x64 on the APEX prototype,
//! 1024x768 for the wavelet workload) and H.261-style video for motion
//! estimation. Those inputs are not archived, so every experiment here uses
//! deterministic, seeded synthetic data with the same statistics the
//! kernels care about: textured frames for SAD landscapes, smooth gradients
//! plus noise for wavelet energy compaction, and frame pairs with known
//! motion for block matching.

use systolic_ring_harness::testkit::TestRng;

/// A 16-bit grayscale image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<i16>,
}

impl Image {
    /// An all-zero image.
    pub fn zeros(width: usize, height: usize) -> Self {
        Image {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Wraps existing pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_data(width: usize, height: usize, data: Vec<i16>) -> Self {
        assert_eq!(data.len(), width * height, "pixel count mismatch");
        Image {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major pixel data.
    pub fn data(&self) -> &[i16] {
        &self.data
    }

    /// Pixel at (`x`, `y`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn pixel(&self, x: usize, y: usize) -> i16 {
        assert!(x < self.width && y < self.height, "pixel out of range");
        self.data[y * self.width + x]
    }

    /// Sets pixel (`x`, `y`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn set_pixel(&mut self, x: usize, y: usize, value: i16) {
        assert!(x < self.width && y < self.height, "pixel out of range");
        self.data[y * self.width + x] = value;
    }

    /// Copies the `bw` x `bh` block at (`x0`, `y0`) into a vector.
    ///
    /// # Panics
    ///
    /// Panics if the block leaves the image.
    pub fn block(&self, x0: usize, y0: usize, bw: usize, bh: usize) -> Vec<i16> {
        assert!(
            x0 + bw <= self.width && y0 + bh <= self.height,
            "block out of range"
        );
        let mut out = Vec::with_capacity(bw * bh);
        for y in 0..bh {
            for x in 0..bw {
                out.push(self.pixel(x0 + x, y0 + y));
            }
        }
        out
    }

    /// A deterministic textured test frame: smooth gradient plus seeded
    /// noise, pixel values in `0..=255` (8-bit video samples carried in
    /// 16-bit words, as in the paper's workloads).
    pub fn textured(width: usize, height: usize, seed: u64) -> Self {
        let mut rng = TestRng::new(seed);
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let grad = ((x * 151) / width.max(1) + (y * 83) / height.max(1)) as i16;
                let noise: i16 = rng.i16_in(-20..21);
                data.push((grad + noise).clamp(0, 255));
            }
        }
        Image {
            width,
            height,
            data,
        }
    }

    /// A motion-estimation frame pair: `reference` is textured; `current`
    /// is `reference` shifted by (`dx`, `dy`) with fresh sensor noise, so a
    /// block tracked from `current` back into `reference` has true motion
    /// `(-dx, -dy)` up to the noise floor.
    pub fn motion_pair(
        width: usize,
        height: usize,
        dx: isize,
        dy: isize,
        seed: u64,
    ) -> (Image, Image) {
        let reference = Image::textured(width, height, seed);
        let mut rng = TestRng::new(seed ^ 0x5eed);
        let mut current = Image::zeros(width, height);
        for y in 0..height {
            for x in 0..width {
                let sx = (x as isize - dx).clamp(0, width as isize - 1) as usize;
                let sy = (y as isize - dy).clamp(0, height as isize - 1) as usize;
                let noise: i16 = rng.i16_in(-2..3);
                current.set_pixel(x, y, (reference.pixel(sx, sy) + noise).clamp(0, 255));
            }
        }
        (reference, current)
    }
}

/// A deterministic test signal: a slow ramp with seeded perturbations,
/// bounded to keep 16-bit kernels far from saturation.
pub fn test_signal(len: usize, seed: u64) -> Vec<i16> {
    let mut rng = TestRng::new(seed);
    (0..len)
        .map(|i| ((i % 97) as i16 - 48) + rng.i16_in(-10..11))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(Image::textured(16, 16, 7), Image::textured(16, 16, 7));
        assert_ne!(
            Image::textured(16, 16, 7).data(),
            Image::textured(16, 16, 8).data()
        );
        assert_eq!(test_signal(64, 1), test_signal(64, 1));
    }

    #[test]
    fn pixels_are_video_range() {
        let img = Image::textured(32, 32, 3);
        assert!(img.data().iter().all(|&p| (0..=255).contains(&p)));
    }

    #[test]
    fn block_extraction() {
        let mut img = Image::zeros(8, 8);
        img.set_pixel(2, 3, 42);
        let block = img.block(2, 3, 2, 2);
        assert_eq!(block, vec![42, 0, 0, 0]);
        assert_eq!(img.pixel(2, 3), 42);
    }

    #[test]
    fn motion_pair_embeds_the_shift() {
        let (reference, current) = Image::motion_pair(64, 64, 3, -2, 11);
        // A block in `current` matches the reference at the shifted spot.
        let block = current.block(20, 20, 8, 8);
        let (dx, dy, best) =
            crate::golden::full_search(reference.data(), 64, 64, &block, 8, 8, 20, 20, 8);
        assert_eq!((dx, dy), (-3, 2));
        // Only sensor noise remains.
        assert!(best < 8 * 8 * 5, "best = {best}");
    }

    #[test]
    #[should_panic(expected = "pixel count mismatch")]
    fn from_data_validates_size() {
        Image::from_data(4, 4, vec![0; 15]);
    }
}
