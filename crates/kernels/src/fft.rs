//! Radix-2 FFT butterflies: complex arithmetic on the fabric.
//!
//! §6 lists "trigonometric op." among the macro-operators the architecture
//! targets. This module maps the radix-2 DIT **butterfly**
//! `(X, Y) = (A + W·B, A − W·B)` onto twelve Dnodes of a 4x4 ring —
//! four multipliers, the complex cross sums, a fixed-point scale, and the
//! final add/subtract pairs — streaming one butterfly per cycle, with all
//! four result words captured in parallel on the downstream switch's
//! per-lane host-output ports.
//!
//! A full FFT ([`fft`]) composes `log2(N)` streamed stages with host-side
//! reordering between them (the SoC usage model: the host owns the data
//! layout, the ring owns the arithmetic).
//!
//! # Fixed point
//!
//! Twiddles are in Q(`shift`) fixed point ([`twiddle`], `shift <= 15`);
//! the products use the Dnode's high-half multiply (`mulh`) and a left
//! shift by `16 - shift` after the complex cross sums restores the scale —
//! the classic truncating Q15 complex multiply. All arithmetic is exactly
//! mirrored by [`golden_fft`], so hardware/golden comparisons are
//! bit-exact, while accuracy versus an ideal DFT is the usual fixed-point
//! truncation trade-off.

use systolic_ring_core::{MachineParams, RingMachine};
use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

use crate::golden::{butterfly, Complex16};
use crate::{KernelError, KernelRun};

/// Pipeline latency from a butterfly's stream slot to its results at the
/// capture sinks.
const LATENCY: usize = 5;

/// The Q(`shift`) twiddle factor `W_m^j = exp(-2*pi*i*j/m)`, clamped to
/// the i16 range (`+1.0` in Q15 becomes `32767`).
pub fn twiddle(j: usize, m: usize, shift: u16) -> Complex16 {
    let theta = -2.0 * std::f64::consts::PI * j as f64 / m as f64;
    let scale = (1i32 << shift) as f64;
    let q = |v: f64| (v * scale).round().clamp(-32768.0, 32767.0) as i16;
    (q(theta.cos()), q(theta.sin()))
}

/// Result of a hardware FFT.
#[derive(Clone, Debug)]
pub struct FftRun {
    /// Output spectrum (natural order).
    pub output: Vec<Complex16>,
    /// Total cycles across all stages.
    pub cycles: u64,
    /// Number of butterfly stages executed.
    pub stages: usize,
}

/// Streams one batch of butterflies through the fabric.
///
/// Returns `(x, y)` with `x[i], y[i] = butterfly(a[i], b[i], w[i], shift)`.
///
/// # Errors
///
/// Returns [`KernelError`] if the geometry is smaller than 4x4, the slices
/// differ in length, or the machine faults.
pub fn butterfly_stage(
    geometry: RingGeometry,
    a: &[Complex16],
    b: &[Complex16],
    w: &[Complex16],
    shift: u16,
) -> Result<(Vec<Complex16>, Vec<Complex16>, KernelRun), KernelError> {
    if geometry.layers() < 4 || geometry.width() < 4 {
        return Err(KernelError::DoesNotFit(format!(
            "the butterfly pipeline needs a 4x4 fabric, {geometry} is too small"
        )));
    }
    if a.len() != b.len() || a.len() != w.len() {
        return Err(KernelError::BadParams(format!(
            "operand lengths differ: {} / {} / {}",
            a.len(),
            b.len(),
            w.len()
        )));
    }
    let n = a.len();
    let params = MachineParams::PAPER.with_host_fifo_capacity(1 << 17);
    let mut m = RingMachine::new(geometry, params);
    configure_butterfly(&mut m, shift)?;

    // B and W streams on switch 0; A streams on switch 3 with the
    // alignment prefix.
    let words = |f: fn(&Complex16) -> i16, v: &[Complex16]| -> Vec<Word16> {
        v.iter().map(|c| Word16::from_i16(f(c))).collect()
    };
    m.attach_input(0, 0, words(|c| c.0, b))?;
    m.attach_input(0, 1, words(|c| c.1, b))?;
    m.attach_input(0, 2, words(|c| c.0, w))?;
    m.attach_input(0, 3, words(|c| c.1, w))?;
    let mut a_re = vec![Word16::ZERO; 3];
    let mut a_im = vec![Word16::ZERO; 3];
    a_re.extend(words(|c| c.0, a));
    a_im.extend(words(|c| c.1, a));
    m.attach_input(3, 0, a_re)?;
    m.attach_input(3, 1, a_im)?;

    m.run(n as u64 + LATENCY as u64 + 4)?;

    let take = |m: &mut RingMachine, port: usize| -> Result<Vec<i16>, KernelError> {
        Ok(m.take_sink(0, port)?
            .iter()
            .skip(LATENCY)
            .take(n)
            .map(|v| v.as_i16())
            .collect())
    };
    let xr = take(&mut m, 0)?;
    let xi = take(&mut m, 1)?;
    let yr = take(&mut m, 2)?;
    let yi = take(&mut m, 3)?;
    let x: Vec<Complex16> = xr.into_iter().zip(xi).collect();
    let y: Vec<Complex16> = yr.into_iter().zip(yi).collect();
    let run = KernelRun {
        outputs: Vec::new(),
        cycles: m.cycle(),
        stats: m.stats().clone(),
    };
    Ok((x, y, run))
}

fn configure_butterfly(m: &mut RingMachine, shift: u16) -> Result<(), KernelError> {
    use Operand::{In1, In2};
    let g = m.geometry();
    let d = |layer: usize, lane: usize| g.dnode_index(layer, lane);
    let cfg = m.configure();

    // Layer 0: the four high-half products.
    let mul = MicroInstr::op(AluOp::MulHi, In1, In2).write_out();
    let prods = [(0usize, 0u8, 2u8), (1, 1, 3), (2, 0, 3), (3, 1, 2)];
    for (lane, p1, p2) in prods {
        cfg.set_port(0, 0, lane, 0, PortSource::HostIn { port: p1 })?;
        cfg.set_port(0, 0, lane, 1, PortSource::HostIn { port: p2 })?;
        cfg.set_dnode_instr(0, d(0, lane), mul)?;
    }
    // Layer 1: complex cross sums.
    cfg.set_port(0, 1, 0, 0, PortSource::PrevOut { lane: 0 })?;
    cfg.set_port(0, 1, 0, 1, PortSource::PrevOut { lane: 1 })?;
    cfg.set_dnode_instr(0, d(1, 0), MicroInstr::op(AluOp::Sub, In1, In2).write_out())?;
    cfg.set_port(0, 1, 1, 0, PortSource::PrevOut { lane: 2 })?;
    cfg.set_port(0, 1, 1, 1, PortSource::PrevOut { lane: 3 })?;
    cfg.set_dnode_instr(0, d(1, 1), MicroInstr::op(AluOp::Add, In1, In2).write_out())?;
    // Layer 2: restore the fixed-point scale (high half lost 16 bits, the
    // twiddle carried `shift` of them).
    for lane in 0..2 {
        cfg.set_port(0, 2, lane, 0, PortSource::PrevOut { lane: lane as u8 })?;
        cfg.set_dnode_instr(
            0,
            d(2, lane),
            MicroInstr::op(AluOp::Shl, In1, Operand::Imm)
                .with_imm(Word16::new(16 - shift))
                .write_out(),
        )?;
    }
    // Layer 3: X = A + t, Y = A - t; A arrives on switch 3's host ports.
    let specs = [
        (0usize, 0u8, 0u8, AluOp::Add), // X_re
        (1, 1, 1, AluOp::Add),          // X_im
        (2, 0, 0, AluOp::Sub),          // Y_re
        (3, 1, 1, AluOp::Sub),          // Y_im
    ];
    for (lane, host, prev, op) in specs {
        cfg.set_port(0, 3, lane, 0, PortSource::HostIn { port: host })?;
        cfg.set_port(0, 3, lane, 1, PortSource::PrevOut { lane: prev })?;
        cfg.set_dnode_instr(0, d(3, lane), MicroInstr::op(op, In1, In2).write_out())?;
    }
    // Captures: switch 0 sees layer 3; port p captures lane p.
    for port in 0..4 {
        cfg.set_capture(0, 0, port, HostCapture::lane(port as u8))?;
    }
    for port in 0..4 {
        m.open_sink(0, port)?;
    }
    Ok(())
}

fn bit_reverse(n: usize, bits: u32) -> usize {
    n.reverse_bits() >> (usize::BITS - bits)
}

/// One DIT stage applied in software, mirroring the hardware exactly —
/// used by [`golden_fft`] and for cross-checking stage decompositions.
fn stage_lists(
    data: &[Complex16],
    m_size: usize,
    shift: u16,
) -> (Vec<usize>, Vec<usize>, Vec<Complex16>) {
    let n = data.len();
    let mut ia = Vec::with_capacity(n / 2);
    let mut ib = Vec::with_capacity(n / 2);
    let mut tw = Vec::with_capacity(n / 2);
    for k in (0..n).step_by(m_size) {
        for j in 0..m_size / 2 {
            ia.push(k + j);
            ib.push(k + j + m_size / 2);
            tw.push(twiddle(j, m_size, shift));
        }
    }
    (ia, ib, tw)
}

/// The bit-exact software reference: the same stage decomposition and
/// butterfly arithmetic as [`fft`], entirely in software.
pub fn golden_fft(signal: &[Complex16], shift: u16) -> Vec<Complex16> {
    let n = signal.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "length must be a power of two"
    );
    let bits = n.trailing_zeros();
    let mut data: Vec<Complex16> = (0..n).map(|i| signal[bit_reverse(i, bits)]).collect();
    let mut m_size = 2;
    while m_size <= n {
        let (ia, ib, tw) = stage_lists(&data, m_size, shift);
        for i in 0..ia.len() {
            let (x, y) = butterfly(data[ia[i]], data[ib[i]], tw[i], shift);
            data[ia[i]] = x;
            data[ib[i]] = y;
        }
        m_size *= 2;
    }
    data
}

/// Computes the radix-2 DIT FFT of `signal` (power-of-two length) on the
/// fabric, one streamed butterfly stage at a time.
///
/// # Errors
///
/// Returns [`KernelError::BadParams`] for non-power-of-two lengths and
/// propagates fabric errors.
pub fn fft(
    geometry: RingGeometry,
    signal: &[Complex16],
    shift: u16,
) -> Result<FftRun, KernelError> {
    let n = signal.len();
    if !n.is_power_of_two() || n < 2 {
        return Err(KernelError::BadParams(format!(
            "FFT length must be a power of two >= 2 (got {n})"
        )));
    }
    let bits = n.trailing_zeros();
    let mut data: Vec<Complex16> = (0..n).map(|i| signal[bit_reverse(i, bits)]).collect();
    let mut cycles = 0u64;
    let mut stages = 0usize;
    let mut m_size = 2;
    while m_size <= n {
        let (ia, ib, tw) = stage_lists(&data, m_size, shift);
        let a: Vec<Complex16> = ia.iter().map(|&i| data[i]).collect();
        let b: Vec<Complex16> = ib.iter().map(|&i| data[i]).collect();
        let (x, y, run) = butterfly_stage(geometry, &a, &b, &tw, shift)?;
        for i in 0..ia.len() {
            data[ia[i]] = x[i];
            data[ib[i]] = y[i];
        }
        cycles += run.cycles;
        stages += 1;
        m_size *= 2;
    }
    Ok(FftRun {
        output: data,
        cycles,
        stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, freq: usize, amp: i16) -> Vec<Complex16> {
        (0..n)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * (freq * i) as f64 / n as f64;
                (
                    (amp as f64 * theta.cos()) as i16,
                    (amp as f64 * theta.sin()) as i16,
                )
            })
            .collect()
    }

    #[test]
    fn butterfly_stage_matches_golden() {
        let a = [(100i16, -50i16), (7, 8), (-3, 4), (0, 0)];
        let b = [(30i16, 20i16), (-9, 1), (5, 5), (1, -1)];
        let w: Vec<Complex16> = (0..4).map(|j| twiddle(j, 8, 15)).collect();
        let (x, y, _) = butterfly_stage(RingGeometry::RING_16, &a, &b, &w, 15).unwrap();
        for i in 0..4 {
            let (gx, gy) = butterfly(a[i], b[i], w[i], 15);
            assert_eq!(x[i], gx, "x[{i}]");
            assert_eq!(y[i], gy, "y[{i}]");
        }
    }

    #[test]
    fn fft_matches_golden_bit_exactly() {
        for n in [2usize, 4, 8, 16, 32] {
            let signal = tone(n, 1, 900);
            let hw = fft(RingGeometry::RING_16, &signal, 15).unwrap();
            assert_eq!(hw.output, golden_fft(&signal, 15), "n = {n}");
            assert_eq!(hw.stages, n.trailing_zeros() as usize);
        }
    }

    #[test]
    fn fft_finds_the_tone_bin() {
        // A complex exponential at bin 3 concentrates energy there.
        let n = 16;
        let signal = tone(n, 3, 1000);
        let hw = fft(RingGeometry::RING_16, &signal, 15).unwrap();
        let mag: Vec<i64> = hw
            .output
            .iter()
            .map(|&(re, im)| (re as i64).pow(2) + (im as i64).pow(2))
            .collect();
        let peak = mag
            .iter()
            .position(|&v| v == *mag.iter().max().unwrap())
            .unwrap();
        assert_eq!(peak, 3, "magnitudes: {mag:?}");
        // The peak dominates the spectrum.
        let rest: i64 = mag
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 3)
            .map(|(_, &v)| v)
            .sum();
        assert!(mag[3] > rest, "peak {} vs rest {rest}", mag[3]);
    }

    #[test]
    fn dc_signal_concentrates_at_bin_zero() {
        let signal = vec![(500i16, 0i16); 8];
        let hw = fft(RingGeometry::RING_16, &signal, 15).unwrap();
        // 8 * 500 = 4000, minus a few counts of Q15 truncation per stage.
        assert!(
            (3950..=4000).contains(&hw.output[0].0),
            "bin 0 = {:?}",
            hw.output[0]
        );
        for &(re, im) in &hw.output[1..] {
            assert!(re.abs() <= 32 && im.abs() <= 32, "leakage ({re}, {im})");
        }
    }

    #[test]
    fn throughput_is_one_butterfly_per_cycle() {
        let n = 64;
        let a = vec![(1i16, 2i16); n];
        let b = vec![(3i16, 4i16); n];
        let w = vec![twiddle(0, 2, 10); n];
        let (_, _, run) = butterfly_stage(RingGeometry::RING_16, &a, &b, &w, 10).unwrap();
        assert!(run.cycles < n as u64 + 16, "cycles = {}", run.cycles);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            fft(RingGeometry::RING_16, &[(1, 2), (3, 4), (5, 6)], 10),
            Err(KernelError::BadParams(_))
        ));
        assert!(matches!(
            butterfly_stage(RingGeometry::RING_8, &[], &[], &[], 10),
            Err(KernelError::DoesNotFit(_))
        ));
        assert!(matches!(
            butterfly_stage(RingGeometry::RING_16, &[(1, 1)], &[], &[], 10),
            Err(KernelError::BadParams(_))
        ));
    }

    #[test]
    fn twiddles_are_unit_magnitude() {
        for j in 0..8 {
            let (re, im) = twiddle(j, 16, 14);
            let mag = ((re as f64).powi(2) + (im as f64).powi(2)).sqrt();
            assert!((mag - 16384.0).abs() < 16.0, "w_16^{j} = ({re}, {im})");
        }
    }
}
