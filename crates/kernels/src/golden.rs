//! Bit-exact software reference models for every kernel.
//!
//! Each hardware mapping in this crate is validated against these functions;
//! they use the same 16-bit wrapping arithmetic as the Dnode ALU so the
//! comparison is exact, not approximate.

/// Dot product of `a` and `b` with 16-bit wrapping accumulation (the
/// semantics of a chained Dnode MAC).
pub fn dot_product(a: &[i16], b: &[i16]) -> i16 {
    assert_eq!(a.len(), b.len(), "operand length mismatch");
    let mut acc: i16 = 0;
    for (&x, &y) in a.iter().zip(b) {
        acc = acc.wrapping_add(x.wrapping_mul(y));
    }
    acc
}

/// FIR filter `y[n] = sum_k c[k] * x[n-k]` with 16-bit wrapping arithmetic
/// and zero initial state. Returns one output per input sample.
pub fn fir(coeffs: &[i16], input: &[i16]) -> Vec<i16> {
    let mut out = Vec::with_capacity(input.len());
    for n in 0..input.len() {
        let mut acc: i16 = 0;
        for (k, &c) in coeffs.iter().enumerate() {
            let x = if n >= k { input[n - k] } else { 0 };
            acc = acc.wrapping_add(c.wrapping_mul(x));
        }
        out.push(acc);
    }
    out
}

/// First-order IIR filter `y[n] = x[n] + (a * y[n-1]) >> shift` with 16-bit
/// wrapping arithmetic (`shift` keeps the fixed-point pole below one).
pub fn iir_first_order(a: i16, shift: u16, input: &[i16]) -> Vec<i16> {
    let mut out = Vec::with_capacity(input.len());
    let mut y: i16 = 0;
    for &x in input {
        let fb = a.wrapping_mul(y) >> shift;
        y = x.wrapping_add(fb);
        out.push(y);
    }
    out
}

/// Biquad (second-order) IIR filter with 16-bit wrapping arithmetic:
///
/// ```text
/// y[n] = (b0 x[n] + b1 x[n-1] + b2 x[n-2])
///      + ((a1 y[n-1] + a2 y[n-2]) >> shift)
/// ```
pub fn iir_biquad(b: &[i16; 3], a: &[i16; 2], shift: u16, input: &[i16]) -> Vec<i16> {
    let mut out = Vec::with_capacity(input.len());
    let (mut y1, mut y2) = (0i16, 0i16);
    for n in 0..input.len() {
        let x = |k: usize| if n >= k { input[n - k] } else { 0 };
        let ff = b[0]
            .wrapping_mul(x(0))
            .wrapping_add(b[1].wrapping_mul(x(1)))
            .wrapping_add(b[2].wrapping_mul(x(2)));
        let fb = a[0].wrapping_mul(y1).wrapping_add(a[1].wrapping_mul(y2)) >> shift;
        let y = ff.wrapping_add(fb);
        y2 = y1;
        y1 = y;
        out.push(y);
    }
    out
}

/// Sum of absolute differences between two equally-sized pixel blocks,
/// saturating per-pixel as the Dnode `absd` does.
pub fn sad(a: &[i16], b: &[i16]) -> i32 {
    assert_eq!(a.len(), b.len(), "block size mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x as i32 - y as i32).abs();
            d.min(i16::MAX as i32)
        })
        .sum()
}

/// The 5/3 (LeGall) lifting forward transform of one signal, returning
/// `(approx, detail)` coefficients.
///
/// Uses the JPEG2000 reversible lifting steps with symmetric boundary
/// extension:
///
/// ```text
/// d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2)
/// s[i] = x[2i]   + floor((d[i-1] + d[i] + 2) / 4)
/// ```
///
/// # Panics
///
/// Panics if `input.len()` is not even or is zero.
pub fn lifting53_forward(input: &[i16]) -> (Vec<i16>, Vec<i16>) {
    assert!(
        !input.is_empty() && input.len().is_multiple_of(2),
        "length must be even"
    );
    let half = input.len() / 2;
    let x = |i: isize| -> i32 {
        // Symmetric (whole-sample) extension.
        let n = input.len() as isize;
        let idx = if i < 0 {
            -i
        } else if i >= n {
            2 * n - 2 - i
        } else {
            i
        };
        input[idx as usize] as i32
    };
    let mut detail = Vec::with_capacity(half);
    for i in 0..half as isize {
        let d = x(2 * i + 1) - ((x(2 * i) + x(2 * i + 2)) >> 1);
        detail.push(d as i16);
    }
    let d = |i: isize| -> i32 {
        let idx = if i < 0 { -i - 1 } else { i };
        detail[(idx as usize).min(detail.len() - 1)] as i32
    };
    let mut approx = Vec::with_capacity(half);
    for i in 0..half as isize {
        let s = x(2 * i) + ((d(i - 1) + d(i) + 2) >> 2);
        approx.push(s as i16);
    }
    (approx, detail)
}

/// Inverse of [`lifting53_forward`] (bit-exact reconstruction).
///
/// # Panics
///
/// Panics if the operand lengths differ or are zero.
pub fn lifting53_inverse(approx: &[i16], detail: &[i16]) -> Vec<i16> {
    assert_eq!(approx.len(), detail.len(), "subband length mismatch");
    assert!(!approx.is_empty(), "empty subbands");
    let half = approx.len();
    let d = |i: isize| -> i32 {
        let idx = if i < 0 { -i - 1 } else { i };
        detail[(idx as usize).min(half - 1)] as i32
    };
    // Undo update: x[2i] = s[i] - floor((d[i-1] + d[i] + 2) / 4).
    let mut even = Vec::with_capacity(half);
    for i in 0..half as isize {
        even.push(approx[i as usize] as i32 - ((d(i - 1) + d(i) + 2) >> 2));
    }
    // Undo predict: x[2i+1] = d[i] + floor((x[2i] + x[2i+2]) / 2).
    let e = |i: isize| -> i32 {
        let n = half as isize;
        let idx = if i >= n { 2 * n - 2 - i + 1 } else { i };
        even[(idx.max(0) as usize).min(half - 1)]
    };
    let mut out = Vec::with_capacity(half * 2);
    for i in 0..half as isize {
        out.push(even[i as usize] as i16);
        let odd = detail[i as usize] as i32 + ((e(i) + e(i + 1)) >> 1);
        out.push(odd as i16);
    }
    out
}

/// One-level 2-D 5/3 transform: rows then columns. Returns the transformed
/// image in-place layout (LL/HL over LH/HH after deinterleaving, but kept
/// interleaved per the line-based hardware: `[approx | detail]` per row,
/// then per column).
pub fn lifting53_forward_2d(width: usize, height: usize, data: &[i16]) -> Vec<i16> {
    assert_eq!(data.len(), width * height, "image size mismatch");
    assert!(
        width.is_multiple_of(2) && height.is_multiple_of(2),
        "dimensions must be even"
    );
    let mut rows = vec![0i16; width * height];
    for y in 0..height {
        let row = &data[y * width..(y + 1) * width];
        let (a, d) = lifting53_forward(row);
        rows[y * width..y * width + width / 2].copy_from_slice(&a);
        rows[y * width + width / 2..(y + 1) * width].copy_from_slice(&d);
    }
    let mut out = vec![0i16; width * height];
    let mut column = vec![0i16; height];
    for x in 0..width {
        for y in 0..height {
            column[y] = rows[y * width + x];
        }
        let (a, d) = lifting53_forward(&column);
        for y in 0..height / 2 {
            out[y * width + x] = a[y];
            out[(y + height / 2) * width + x] = d[y];
        }
    }
    out
}

/// Full-search block matching: returns `(best_dx, best_dy, best_sad)` for
/// matching `block` (of `bw` x `bh` pixels) against `frame` around
/// (`x0`, `y0`) with displacements in `[-range, +range]`.
///
/// Candidates whose window leaves the frame are skipped. Ties resolve to
/// the first candidate in row-major displacement order, matching the
/// hardware kernel's comparison order.
#[allow(clippy::too_many_arguments)]
pub fn full_search(
    frame: &[i16],
    fw: usize,
    fh: usize,
    block: &[i16],
    bw: usize,
    bh: usize,
    x0: isize,
    y0: isize,
    range: isize,
) -> (isize, isize, i32) {
    assert_eq!(block.len(), bw * bh, "block size mismatch");
    assert_eq!(frame.len(), fw * fh, "frame size mismatch");
    let mut best = (0isize, 0isize, i32::MAX);
    for dy in -range..=range {
        for dx in -range..=range {
            let cx = x0 + dx;
            let cy = y0 + dy;
            if cx < 0 || cy < 0 || cx as usize + bw > fw || cy as usize + bh > fh {
                continue;
            }
            let mut acc = 0i32;
            for by in 0..bh {
                for bx in 0..bw {
                    let p = frame[(cy as usize + by) * fw + cx as usize + bx];
                    let q = block[by * bw + bx];
                    acc += ((p as i32 - q as i32).abs()).min(i16::MAX as i32);
                }
            }
            if acc < best.2 {
                best = (dx, dy, acc);
            }
        }
    }
    best
}

/// Multi-level 2-D 5/3 transform: each level re-transforms the LL
/// quadrant of the previous one (the JPEG2000 dyadic decomposition).
///
/// # Panics
///
/// Panics if any level's LL quadrant has odd dimensions.
pub fn lifting53_forward_2d_multi(
    width: usize,
    height: usize,
    data: &[i16],
    levels: usize,
) -> Vec<i16> {
    assert!(levels >= 1, "at least one level");
    let mut out = data.to_vec();
    let (mut w, mut h) = (width, height);
    for _ in 0..levels {
        // Extract the current LL region, transform it, write it back.
        let mut region = vec![0i16; w * h];
        for y in 0..h {
            for x in 0..w {
                region[y * w + x] = out[y * width + x];
            }
        }
        let transformed = lifting53_forward_2d(w, h, &region);
        for y in 0..h {
            for x in 0..w {
                out[y * width + x] = transformed[y * w + x];
            }
        }
        w /= 2;
        h /= 2;
    }
    out
}

/// Matrix-vector product `y = A x` with 16-bit wrapping arithmetic
/// (`A` is `rows x cols`, row-major).
///
/// # Panics
///
/// Panics if the dimensions are inconsistent.
pub fn matvec(a: &[i16], rows: usize, cols: usize, x: &[i16]) -> Vec<i16> {
    assert_eq!(a.len(), rows * cols, "matrix size mismatch");
    assert_eq!(x.len(), cols, "vector size mismatch");
    (0..rows)
        .map(|r| dot_product(&a[r * cols..(r + 1) * cols], x))
        .collect()
}

/// A complex sample as a `(re, im)` pair of 16-bit words.
pub type Complex16 = (i16, i16);

/// One radix-2 DIT butterfly with the fabric's exact arithmetic.
///
/// Twiddles are in Q(`shift`) fixed point (`shift <= 15`); the products
/// are formed with the Dnode's **high-half multiply** (`mulh`, the top 16
/// bits of the 32-bit product, i.e. `>> 16`), the cross sums are wrapping,
/// and a left shift by `16 - shift` restores the scale. This is the
/// classic truncating Q15 complex multiply — small per-stage truncation
/// error, no wraparound.
///
/// Returns `(a + w*b, a - w*b)`.
pub fn butterfly(a: Complex16, b: Complex16, w: Complex16, shift: u16) -> (Complex16, Complex16) {
    debug_assert!(shift <= 15, "twiddle scale must fit i16");
    let hi = |x: i16, y: i16| -> i16 { ((x as i32 * y as i32) >> 16) as i16 };
    let back = (16 - shift) as u32;
    let rr = hi(b.0, w.0);
    let ii = hi(b.1, w.1);
    let ri = hi(b.0, w.1);
    let ir = hi(b.1, w.0);
    let t_re = rr.wrapping_sub(ii).wrapping_shl(back);
    let t_im = ri.wrapping_add(ir).wrapping_shl(back);
    (
        (a.0.wrapping_add(t_re), a.1.wrapping_add(t_im)),
        (a.0.wrapping_sub(t_re), a.1.wrapping_sub(t_im)),
    )
}

/// Separable 3x3 convolution with zero padding: the horizontal kernel `kh`
/// then the vertical kernel `kv`, 16-bit wrapping arithmetic.
///
/// `kh[1]`/`kv[1]` are the center taps (output pixel (x,y) sees
/// `p(x-1..=x+1, y-1..=y+1)`).
///
/// # Panics
///
/// Panics if `data.len() != width * height`.
pub fn conv3x3_separable(
    kh: &[i16; 3],
    kv: &[i16; 3],
    width: usize,
    height: usize,
    data: &[i16],
) -> Vec<i16> {
    assert_eq!(data.len(), width * height, "image size mismatch");
    let px = |x: isize, y: isize| -> i16 {
        if x < 0 || y < 0 || x >= width as isize || y >= height as isize {
            0
        } else {
            data[y as usize * width + x as usize]
        }
    };
    // Horizontal pass.
    let mut h = vec![0i16; width * height];
    for y in 0..height as isize {
        for x in 0..width as isize {
            let mut acc: i16 = 0;
            for (k, &c) in kh.iter().enumerate() {
                acc = acc.wrapping_add(c.wrapping_mul(px(x + 1 - k as isize, y)));
            }
            h[y as usize * width + x as usize] = acc;
        }
    }
    // Vertical pass on the horizontal result.
    let hx = |x: isize, y: isize| -> i16 {
        if x < 0 || y < 0 || x >= width as isize || y >= height as isize {
            0
        } else {
            h[y as usize * width + x as usize]
        }
    };
    let mut out = vec![0i16; width * height];
    for y in 0..height as isize {
        for x in 0..width as isize {
            let mut acc: i16 = 0;
            for (k, &c) in kv.iter().enumerate() {
                acc = acc.wrapping_add(c.wrapping_mul(hx(x, y + 1 - k as isize)));
            }
            out[y as usize * width + x as usize] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_matches_hand_result() {
        assert_eq!(dot_product(&[1, 2, 3], &[4, 5, 6]), 32);
        assert_eq!(dot_product(&[], &[]), 0);
    }

    #[test]
    fn fir_impulse_response_is_the_coefficients() {
        let coeffs = [3, -2, 5];
        let mut input = vec![0i16; 6];
        input[0] = 1;
        assert_eq!(fir(&coeffs, &input), vec![3, -2, 5, 0, 0, 0]);
    }

    #[test]
    fn fir_step_response_accumulates() {
        let coeffs = [1, 1, 1];
        let input = vec![2i16; 5];
        assert_eq!(fir(&coeffs, &input), vec![2, 4, 6, 6, 6]);
    }

    #[test]
    fn iir_decays_geometrically() {
        // a = 128, shift = 8 -> pole 0.5.
        let mut input = vec![0i16; 5];
        input[0] = 64;
        assert_eq!(iir_first_order(128, 8, &input), vec![64, 32, 16, 8, 4]);
    }

    #[test]
    fn biquad_reduces_to_fir_without_feedback() {
        let input: Vec<i16> = (0..12).map(|v| v * 3 - 7).collect();
        let ff_only = iir_biquad(&[2, -1, 4], &[0, 0], 8, &input);
        assert_eq!(ff_only, fir(&[2, -1, 4], &input));
    }

    #[test]
    fn biquad_impulse_with_single_pole() {
        // b = delta, a1 = 128 @ shift 8 -> pole 0.5 like the first-order.
        let mut input = vec![0i16; 5];
        input[0] = 64;
        assert_eq!(
            iir_biquad(&[1, 0, 0], &[128, 0], 8, &input),
            iir_first_order(128, 8, &input)
        );
    }

    #[test]
    fn sad_of_identical_blocks_is_zero() {
        let block = [10i16, 20, 30, 40];
        assert_eq!(sad(&block, &block), 0);
        assert_eq!(sad(&block, &[11, 19, 33, 36]), 1 + 1 + 3 + 4);
    }

    #[test]
    fn lifting_round_trips() {
        let signal: Vec<i16> = (0..32).map(|i| (i * 13 % 251) as i16 - 100).collect();
        let (a, d) = lifting53_forward(&signal);
        assert_eq!(a.len(), 16);
        assert_eq!(d.len(), 16);
        assert_eq!(lifting53_inverse(&a, &d), signal);
    }

    #[test]
    fn lifting_on_constant_signal_has_zero_detail() {
        let signal = vec![100i16; 16];
        let (a, d) = lifting53_forward(&signal);
        assert!(d.iter().all(|&v| v == 0));
        assert!(a.iter().all(|&v| v == 100));
    }

    #[test]
    fn lifting_2d_preserves_energy_structure() {
        // A constant image transforms to constant LL and zero elsewhere.
        let (w, h) = (8, 8);
        let data = vec![50i16; w * h];
        let out = lifting53_forward_2d(w, h, &data);
        for y in 0..h {
            for x in 0..w {
                let v = out[y * w + x];
                if x < w / 2 && y < h / 2 {
                    assert_eq!(v, 50);
                } else {
                    assert_eq!(v, 0, "at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn full_search_finds_a_planted_block() {
        let (fw, fh) = (16, 16);
        let mut frame = vec![0i16; fw * fh];
        // Plant a distinctive 4x4 block at (9, 6).
        let block: Vec<i16> = (0..16).map(|i| 100 + i as i16 * 7).collect();
        for by in 0..4 {
            for bx in 0..4 {
                frame[(6 + by) * fw + 9 + bx] = block[by * 4 + bx];
            }
        }
        let (dx, dy, s) = full_search(&frame, fw, fh, &block, 4, 4, 8, 8, 4);
        assert_eq!((dx, dy), (1, -2));
        assert_eq!(s, 0);
    }

    #[test]
    fn matvec_matches_hand_result() {
        // [1 2; 3 4] * [5, 6] = [17, 39]
        assert_eq!(matvec(&[1, 2, 3, 4], 2, 2, &[5, 6]), vec![17, 39]);
    }

    #[test]
    fn butterfly_near_identity_twiddle() {
        // w = 0.99997 in Q15: t = w*b with ~0.05% truncation error.
        let (x, y) = butterfly((100, -50), (4000, 7000), (32767, 0), 15);
        // hi(4000*32767) = 1999, <<1 = 3998; hi(7000*32767) = 3499, <<1 = 6998.
        assert_eq!(x, (100 + 3998, -50 + 6998));
        assert_eq!(y, (100 - 3998, -50 - 6998));
    }

    #[test]
    fn butterfly_exact_minus_i_twiddle() {
        // w = -i = (0, -32768) is exact in Q15: -i*(3000+5000i) = 5000-3000i.
        let (x, y) = butterfly((0, 0), (3000, 5000), (0, -32768), 15);
        assert_eq!(x, (5000, -3000));
        assert_eq!(y, (-5000, 3000));
    }

    #[test]
    fn conv3x3_identity_kernel() {
        let data: Vec<i16> = (0..12).collect();
        let out = conv3x3_separable(&[0, 1, 0], &[0, 1, 0], 4, 3, &data);
        assert_eq!(out, data);
    }

    #[test]
    fn conv3x3_box_blur_shape() {
        let mut data = vec![0i16; 25];
        data[12] = 9; // center impulse
        let out = conv3x3_separable(&[1, 1, 1], &[1, 1, 1], 5, 5, &data);
        // 3x3 neighbourhood of the impulse all become 9.
        for y in 1..4 {
            for x in 1..4 {
                assert_eq!(out[y * 5 + x], 9);
            }
        }
        assert_eq!(out[0], 0);
    }

    #[test]
    fn full_search_skips_out_of_frame_candidates() {
        let frame = vec![0i16; 64];
        let block = vec![0i16; 16];
        let (dx, dy, s) = full_search(&frame, 8, 8, &block, 4, 4, 0, 0, 8);
        // Only displacements keeping the window in-frame are considered.
        assert_eq!(s, 0);
        assert!(dx >= 0 && dy >= 0);
    }
}
