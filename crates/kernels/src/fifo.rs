//! FIFO emulation macro-operator.
//!
//! §4.1 lists "FIFO emulation without RISC controller overheading" among
//! the local-mode macro-operators. A single Dnode emulates a small FIFO by
//! circulating its register file: each loop iteration emits the oldest
//! element, shifts the line, and latches a fresh input word.
//!
//! With depth `k` (1..=3) the local program is `k + 1` microinstructions,
//! and the Dnode behaves as a `k`-deep FIFO clocked at one word per
//! iteration.

use systolic_ring_core::{MachineParams, RingMachine};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::switch::PortSource;
use systolic_ring_isa::{RingGeometry, Word16};

use crate::{KernelError, KernelRun};

/// Runs a depth-`depth` FIFO emulation (1..=3) over `input`, returning the
/// delayed stream (first `depth` outputs are the zero fill).
///
/// # Errors
///
/// Returns [`KernelError::BadParams`] for depths outside 1..=3 (the Dnode
/// register file holds at most three queued words plus the input latch).
pub fn emulate(
    geometry: RingGeometry,
    depth: usize,
    input: &[i16],
) -> Result<KernelRun, KernelError> {
    if !(1..=3).contains(&depth) {
        return Err(KernelError::BadParams(format!(
            "FIFO emulation depth must be 1..=3 (got {depth})"
        )));
    }
    let mut m = RingMachine::new(geometry, MachineParams::PAPER);
    m.configure()
        .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })?;

    // Registers r0..r(depth-1) hold the queue, oldest in r(depth-1).
    let regs = [Reg::R0, Reg::R1, Reg::R2];
    let mut program = Vec::new();
    // Emit the oldest element.
    program.push(
        MicroInstr::op(AluOp::PassA, Operand::Reg(regs[depth - 1]), Operand::Zero).write_out(),
    );
    // Shift towards the tail: r(i) <- r(i-1) for i = depth-1 .. 1.
    for i in (1..depth).rev() {
        program.push(
            MicroInstr::op(AluOp::PassA, Operand::Reg(regs[i - 1]), Operand::Zero)
                .write_reg(regs[i]),
        );
    }
    // Latch the new word.
    program.push(MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_reg(regs[0]));

    let period = program.len() as u64;
    m.set_local_program(0, &program)?;
    m.set_mode(0, DnodeMode::Local);
    m.attach_input(0, 0, input.iter().map(|&v| Word16::from_i16(v)))?;

    // Iteration j emits x[j - depth] (zero fill before that): sample right
    // after each iteration's first microinstruction commits.
    let mut outputs = Vec::with_capacity(input.len());
    for _ in 0..input.len() {
        m.run(1)?;
        outputs.push(m.dnode(0).out().as_i16());
        m.run(period - 1)?;
    }
    Ok(KernelRun {
        outputs,
        cycles: m.cycle(),
        stats: m.stats().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::test_signal;

    fn delayed(input: &[i16], depth: usize) -> Vec<i16> {
        let mut expect = vec![0i16; depth];
        expect.extend_from_slice(&input[..input.len() - depth]);
        expect
    }

    #[test]
    fn depth_one_delays_by_one() {
        let input = test_signal(12, 1);
        let run = emulate(RingGeometry::RING_8, 1, &input).unwrap();
        assert_eq!(run.outputs, delayed(&input, 1));
    }

    #[test]
    fn depth_two_delays_by_two() {
        let input = test_signal(12, 2);
        let run = emulate(RingGeometry::RING_8, 2, &input).unwrap();
        assert_eq!(run.outputs, delayed(&input, 2));
    }

    #[test]
    fn depth_three_delays_by_three() {
        let input = test_signal(12, 3);
        let run = emulate(RingGeometry::RING_8, 3, &input).unwrap();
        assert_eq!(run.outputs, delayed(&input, 3));
    }

    #[test]
    fn rejects_bad_depths() {
        assert!(matches!(
            emulate(RingGeometry::RING_8, 0, &[1]),
            Err(KernelError::BadParams(_))
        ));
        assert!(matches!(
            emulate(RingGeometry::RING_8, 4, &[1]),
            Err(KernelError::BadParams(_))
        ));
    }

    #[test]
    fn period_scales_with_depth() {
        let input = test_signal(8, 4);
        let d1 = emulate(RingGeometry::RING_8, 1, &input).unwrap();
        let d3 = emulate(RingGeometry::RING_8, 3, &input).unwrap();
        assert_eq!(d1.cycles, 2 * input.len() as u64);
        assert_eq!(d3.cycles, 4 * input.len() as u64);
    }
}
