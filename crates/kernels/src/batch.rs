//! Batch-engine adapters and the differential oracle.
//!
//! Every kernel in this crate gets a *job adapter* that wraps its driver
//! into a [`Job`] the harness [`BatchRunner`] can schedule on any worker
//! thread. Each adapter is paired with the kernel's bit-exact golden
//! software model from [`golden`], forming an [`OracleCase`]: the
//! differential oracle runs the whole suite through the batch engine and
//! demands that every hardware output equal its golden reference exactly.
//!
//! [`oracle_suite`] generates a randomized sweep (geometries, stream
//! contents, kernel parameters) from a deterministic
//! [`TestRng`] seed, so any failure replays from the
//! printed seed, and [`kernel_sweep`] reuses the same generators to
//! produce arbitrarily large mixed batches for scaling experiments.

use systolic_ring_core::Stats;
use systolic_ring_harness::campaign::CampaignCase;
use systolic_ring_harness::job::{Job, JobOutput};
use systolic_ring_harness::runner::{BatchRunner, BatchSummary};
use systolic_ring_harness::testkit::TestRng;
use systolic_ring_isa::RingGeometry;

use crate::golden::{self, Complex16};
use crate::image::Image;
use crate::motion::BlockMatch;
use crate::{conv, fft, fifo, fir, iir, mac, matvec, motion, wavelet, KernelRun};

/// One differential-oracle case: a schedulable job plus the exact outputs
/// its golden model predicts.
#[derive(Debug)]
pub struct OracleCase {
    /// Display name (kernel + parameters).
    pub name: String,
    /// The job to run.
    pub job: Job,
    /// Expected job outputs, lane by lane.
    pub expected: Vec<Vec<i16>>,
}

fn from_kernel_run(run: KernelRun) -> JobOutput {
    JobOutput {
        outputs: vec![run.outputs],
        cycles: run.cycles,
        stats: run.stats,
    }
}

/// Splits an unsigned 32-bit figure into two output words (low, high).
fn encode_u32(value: u32) -> Vec<i16> {
    vec![value as u16 as i16, (value >> 16) as u16 as i16]
}

/// MAC dot product vs [`golden::dot_product`].
pub fn dot_product_case(geometry: RingGeometry, a: Vec<i16>, b: Vec<i16>) -> OracleCase {
    let expected = vec![vec![golden::dot_product(&a, &b)]];
    let name = format!("mac/dot{}x{}", a.len(), geometry.dnodes());
    OracleCase {
        name: name.clone(),
        job: Job::custom(name, move || {
            mac::dot_product(geometry, &a, &b)
                .map(from_kernel_run)
                .map_err(|e| e.to_string())
        }),
        expected,
    }
}

/// Spatial (systolic) FIR vs [`golden::fir`].
pub fn fir_spatial_case(geometry: RingGeometry, coeffs: Vec<i16>, input: Vec<i16>) -> OracleCase {
    let expected = vec![golden::fir(&coeffs, &input)];
    let name = format!("fir/spatial-{}tap-{}", coeffs.len(), input.len());
    OracleCase {
        name: name.clone(),
        job: Job::custom(name, move || {
            fir::spatial(geometry, &coeffs, &input)
                .map(from_kernel_run)
                .map_err(|e| e.to_string())
        }),
        expected,
    }
}

/// Folded local-mode FIR vs [`golden::fir`].
pub fn fir_local_case(geometry: RingGeometry, coeffs: Vec<i16>, input: Vec<i16>) -> OracleCase {
    let expected = vec![golden::fir(&coeffs, &input)];
    let name = format!("fir/local-{}tap-{}", coeffs.len(), input.len());
    OracleCase {
        name: name.clone(),
        job: Job::custom(name, move || {
            fir::local_serial(geometry, &coeffs, &input)
                .map(from_kernel_run)
                .map_err(|e| e.to_string())
        }),
        expected,
    }
}

/// First-order IIR on the feedback network vs
/// [`golden::iir_first_order`].
pub fn iir_first_order_case(
    geometry: RingGeometry,
    a: i16,
    shift: u16,
    input: Vec<i16>,
) -> OracleCase {
    let expected = vec![golden::iir_first_order(a, shift, &input)];
    let name = format!("iir/first-a{a}-{}", input.len());
    OracleCase {
        name: name.clone(),
        job: Job::custom(name, move || {
            iir::first_order(geometry, a, shift, &input)
                .map(from_kernel_run)
                .map_err(|e| e.to_string())
        }),
        expected,
    }
}

/// Biquad IIR vs [`golden::iir_biquad`].
pub fn iir_biquad_case(
    geometry: RingGeometry,
    b: [i16; 3],
    a: [i16; 2],
    shift: u16,
    input: Vec<i16>,
) -> OracleCase {
    let expected = vec![golden::iir_biquad(&b, &a, shift, &input)];
    let name = format!("iir/biquad-{}", input.len());
    OracleCase {
        name: name.clone(),
        job: Job::custom(name, move || {
            iir::biquad(geometry, &b, &a, shift, &input)
                .map(from_kernel_run)
                .map_err(|e| e.to_string())
        }),
        expected,
    }
}

/// FIFO emulation vs the shifted input stream.
pub fn fifo_case(geometry: RingGeometry, depth: usize, input: Vec<i16>) -> OracleCase {
    let mut expected_lane = vec![0i16; depth.min(input.len())];
    if input.len() > depth {
        expected_lane.extend_from_slice(&input[..input.len() - depth]);
    }
    let expected = vec![expected_lane];
    let name = format!("fifo/depth{depth}-{}", input.len());
    OracleCase {
        name: name.clone(),
        job: Job::custom(name, move || {
            fifo::emulate(geometry, depth, &input)
                .map(from_kernel_run)
                .map_err(|e| e.to_string())
        }),
        expected,
    }
}

/// Batched matrix-vector product vs [`golden::matvec`].
pub fn matvec_case(
    geometry: RingGeometry,
    a: Vec<i16>,
    rows: usize,
    cols: usize,
    x: Vec<i16>,
) -> OracleCase {
    let expected = vec![golden::matvec(&a, rows, cols, &x)];
    let name = format!("matvec/{rows}x{cols}");
    OracleCase {
        name: name.clone(),
        job: Job::custom(name, move || {
            matvec::multiply(geometry, &a, rows, cols, &x)
                .map(from_kernel_run)
                .map_err(|e| e.to_string())
        }),
        expected,
    }
}

/// 1-D 5/3 lifting wavelet vs [`golden::lifting53_forward`].
pub fn wavelet_case(geometry: RingGeometry, signal: Vec<i16>) -> OracleCase {
    let (approx, detail) = golden::lifting53_forward(&signal);
    let expected = vec![approx.into_iter().chain(detail).collect()];
    let name = format!("wavelet/1d-{}", signal.len());
    OracleCase {
        name: name.clone(),
        job: Job::custom(name, move || {
            wavelet::forward_1d(geometry, &signal)
                .map(|run| JobOutput {
                    outputs: vec![run.coefficients],
                    cycles: run.cycles,
                    stats: run.stats,
                })
                .map_err(|e| e.to_string())
        }),
        expected,
    }
}

/// Separable 3x3 convolution vs [`golden::conv3x3_separable`].
pub fn conv_case(geometry: RingGeometry, kh: [i16; 3], kv: [i16; 3], image: Image) -> OracleCase {
    let expected = vec![golden::conv3x3_separable(
        &kh,
        &kv,
        image.width(),
        image.height(),
        image.data(),
    )];
    let name = format!("conv/3x3-{}x{}", image.width(), image.height());
    OracleCase {
        name: name.clone(),
        job: Job::custom(name, move || {
            conv::conv3x3(geometry, &kh, &kv, &image)
                .map(|run| JobOutput {
                    outputs: vec![run.output],
                    cycles: run.cycles,
                    stats: Stats::new(0),
                })
                .map_err(|e| e.to_string())
        }),
        expected,
    }
}

/// Full-search block matching vs [`golden::full_search`].
///
/// Outputs two lanes: `[dx, dy]` and the winning SAD as `[low, high]`
/// 16-bit halves.
pub fn motion_case(
    geometry: RingGeometry,
    reference: Image,
    current: Image,
    spec: BlockMatch,
) -> OracleCase {
    let block = current.block(spec.x0, spec.y0, spec.block, spec.block);
    let (dx, dy, sad) = golden::full_search(
        reference.data(),
        reference.width(),
        reference.height(),
        &block,
        spec.block,
        spec.block,
        spec.x0 as isize,
        spec.y0 as isize,
        spec.range,
    );
    let expected = vec![vec![dx as i16, dy as i16], encode_u32(sad as u32)];
    let name = format!("motion/b{}r{}", spec.block, spec.range);
    OracleCase {
        name: name.clone(),
        job: Job::custom(name, move || {
            motion::block_match(geometry, &reference, &current, spec)
                .map(|estimate| JobOutput {
                    outputs: vec![
                        vec![estimate.best.0 as i16, estimate.best.1 as i16],
                        encode_u32(estimate.best_sad),
                    ],
                    cycles: estimate.cycles,
                    stats: estimate.stats,
                })
                .map_err(|e| e.to_string())
        }),
        expected,
    }
}

/// Streamed radix-2 FFT vs [`fft::golden_fft`], spectra flattened to
/// interleaved `re, im` words.
pub fn fft_case(geometry: RingGeometry, signal: Vec<Complex16>, shift: u16) -> OracleCase {
    let flatten = |spectrum: &[Complex16]| -> Vec<i16> {
        spectrum.iter().flat_map(|&(re, im)| [re, im]).collect()
    };
    let expected = vec![flatten(&fft::golden_fft(&signal, shift))];
    let name = format!("fft/{}", signal.len());
    OracleCase {
        name: name.clone(),
        job: Job::custom(name, move || {
            fft::fft(geometry, &signal, shift)
                .map(|run| JobOutput {
                    outputs: vec![flatten(&run.output)],
                    cycles: run.cycles,
                    stats: Stats::new(0),
                })
                .map_err(|e| e.to_string())
        }),
        expected,
    }
}

/// One randomized case per kernel family, drawn from `rng`.
fn random_round(rng: &mut TestRng) -> Vec<OracleCase> {
    let mut cases = Vec::new();

    let n = rng.index(39) + 1;
    cases.push(dot_product_case(
        *rng.choose(&[RingGeometry::RING_8, RingGeometry::RING_16]),
        rng.vec_i16(n, -300..300),
        rng.vec_i16(n, -300..300),
    ));

    let taps = rng.index(3) + 1;
    let stream_len = rng.index(48) + 8;
    cases.push(fir_spatial_case(
        RingGeometry::RING_16,
        rng.vec_i16(taps, -20..20),
        rng.vec_i16(stream_len, -100..100),
    ));
    // The local-mode serial driver is fixed at three taps.
    let stream_len = rng.index(32) + 8;
    cases.push(fir_local_case(
        RingGeometry::RING_16,
        rng.vec_i16(3, -20..20),
        rng.vec_i16(stream_len, -100..100),
    ));

    let stream_len = rng.index(40) + 8;
    cases.push(iir_first_order_case(
        RingGeometry::RING_8,
        rng.i16_in(-120..121),
        8,
        rng.vec_i16(stream_len, -100..100),
    ));
    let stream_len = rng.index(32) + 8;
    cases.push(iir_biquad_case(
        RingGeometry::RING_16,
        [
            rng.i16_in(-30..31),
            rng.i16_in(-30..31),
            rng.i16_in(-30..31),
        ],
        [rng.i16_in(-60..61), rng.i16_in(-60..61)],
        8,
        rng.vec_i16(stream_len, -80..80),
    ));

    let depth = rng.index(3) + 1;
    let stream_len = rng.index(24) + 4;
    cases.push(fifo_case(
        RingGeometry::RING_8,
        depth,
        rng.vec_i16(stream_len, -1000..1000),
    ));

    let rows = rng.index(5) + 1;
    let cols = rng.index(7) + 1;
    cases.push(matvec_case(
        RingGeometry::RING_16,
        rng.vec_i16(rows * cols, -100..100),
        rows,
        cols,
        rng.vec_i16(cols, -100..100),
    ));

    let wlen = 2 * (rng.index(28) + 2);
    cases.push(wavelet_case(
        RingGeometry::RING_16,
        rng.vec_i16(wlen, -4000..4000),
    ));

    let (w, h) = (rng.index(8) + 6, rng.index(6) + 6);
    cases.push(conv_case(
        RingGeometry::RING_16,
        [rng.i16_in(-3..4), rng.i16_in(-3..4), rng.i16_in(-3..4)],
        [rng.i16_in(-3..4), rng.i16_in(-3..4), rng.i16_in(-3..4)],
        Image::textured(w, h, rng.next_u64()),
    ));

    let (dx, dy) = (rng.range_i64(-3..4) as isize, rng.range_i64(-3..4) as isize);
    let (reference, current) = Image::motion_pair(32, 32, dx, dy, rng.next_u64());
    cases.push(motion_case(
        RingGeometry::RING_16,
        reference,
        current,
        BlockMatch {
            x0: 12,
            y0: 12,
            block: 8,
            range: 4,
        },
    ));

    let bits = rng.index(3) + 3; // 8, 16 or 32 points
    let len = 1usize << bits;
    let signal: Vec<Complex16> = (0..len)
        .map(|_| (rng.i16_in(-900..900), rng.i16_in(-900..900)))
        .collect();
    cases.push(fft_case(RingGeometry::RING_16, signal, 15));

    cases
}

/// A randomized differential-oracle suite covering every kernel family.
///
/// `rounds` random parameterizations of each of the 11 adapters; all
/// randomness derives from `seed`.
pub fn oracle_suite(seed: u64, rounds: usize) -> Vec<OracleCase> {
    let mut rng = TestRng::new(seed);
    let mut cases = Vec::new();
    for _ in 0..rounds {
        cases.extend(random_round(&mut rng));
    }
    cases
}

/// The oracle suite reshaped for the harness chaos-campaign driver: the
/// same jobs and golden expectations as [`oracle_suite`], as
/// [`CampaignCase`]s. Because the suite is deterministic in `seed`, the
/// campaign can re-derive identical cases for every fault rate in a
/// sweep and attribute any outcome difference to the injection alone.
pub fn campaign_suite(seed: u64, rounds: usize) -> Vec<CampaignCase> {
    oracle_suite(seed, rounds)
        .into_iter()
        .map(|case| CampaignCase {
            name: case.name,
            job: case.job,
            expected: case.expected,
        })
        .collect()
}

/// A mixed batch of `n` kernel jobs for scaling experiments (the oracle
/// expectations are dropped; only the work remains).
pub fn kernel_sweep(seed: u64, n: usize) -> Vec<Job> {
    let rounds = n.div_ceil(11).max(1);
    oracle_suite(seed, rounds)
        .into_iter()
        .take(n)
        .map(|case| case.job)
        .collect()
}

/// The differential oracle's verdict over one suite run.
#[derive(Clone, Debug)]
pub struct OracleReport {
    /// Cases executed.
    pub cases: usize,
    /// Case names whose hardware outputs differed from the golden model.
    pub mismatches: Vec<String>,
    /// Case names that faulted instead of completing.
    pub faults: Vec<String>,
    /// Batch-level execution summary.
    pub summary: BatchSummary,
}

impl OracleReport {
    /// `true` when every case completed and matched its golden model.
    pub fn all_match(&self) -> bool {
        self.mismatches.is_empty() && self.faults.is_empty()
    }
}

/// Runs `suite` through `runner` and checks every output against its
/// golden expectation.
pub fn run_oracle(runner: &BatchRunner, suite: Vec<OracleCase>) -> OracleReport {
    let mut jobs = Vec::with_capacity(suite.len());
    let mut expectations = Vec::with_capacity(suite.len());
    for case in suite {
        jobs.push(case.job);
        expectations.push((case.name, case.expected));
    }
    let report = runner.run(&jobs);
    let mut mismatches = Vec::new();
    let mut faults = Vec::new();
    for (job_report, (name, expected)) in report.reports.iter().zip(&expectations) {
        match job_report.outcome.output() {
            Some(out) => {
                if &out.outputs != expected {
                    mismatches.push(format!(
                        "{name}: hardware {:?} != golden {:?}",
                        out.outputs, expected
                    ));
                }
            }
            None => faults.push(format!("{name}: {:?}", job_report.outcome)),
        }
    }
    OracleReport {
        cases: expectations.len(),
        mismatches,
        faults,
        summary: report.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_every_kernel_family_deterministically() {
        let a = oracle_suite(42, 1);
        let b = oracle_suite(42, 1);
        assert_eq!(a.len(), 11);
        assert_eq!(
            a.iter().map(|c| &c.name).collect::<Vec<_>>(),
            b.iter().map(|c| &c.name).collect::<Vec<_>>()
        );
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(ca.expected, cb.expected, "{}", ca.name);
        }
    }

    #[test]
    fn single_case_differential_check() {
        let case = dot_product_case(RingGeometry::RING_8, vec![1, 2, 3], vec![4, 5, 6]);
        let report = run_oracle(&BatchRunner::with_workers(1), vec![case]);
        assert!(report.all_match(), "{:?}", report.mismatches);
        assert_eq!(report.cases, 1);
    }

    #[test]
    fn sweep_produces_exactly_n_jobs() {
        assert_eq!(kernel_sweep(1, 7).len(), 7);
        assert_eq!(kernel_sweep(1, 23).len(), 23);
    }
}
