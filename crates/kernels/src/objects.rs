//! Representative kernel configurations as loadable [`Object`]s.
//!
//! The kernel drivers in this crate configure machines imperatively
//! (through [`systolic_ring_core::RingMachine`] configuration calls);
//! this module renders the same macro-operator families as self-contained
//! object files — the form the static lint (`ringlint`), the object
//! tools and the batch harness consume. Each object is a faithful
//! structural representative of one kernel family:
//!
//! * [`mac_local`] — the stand-alone local-mode MAC (§4.1),
//! * [`fir_spatial`] — a routed multiply-add chain with a feedback
//!   pipeline tap (the §4.2 delay mechanism),
//! * [`mac_context_drain`] — compute in context 0, drain accumulators
//!   through context 1 (dynamic reconfiguration for result extraction),
//! * [`fifo_chain`] — the FIFO-emulation pass-through chain (§6),
//! * [`pipe_deep_tap`] — a route reading the deepest legal feedback
//!   pipeline stage (the boundary the lint checks).
//!
//! Every object here lints clean and simulates without faults; the
//! repository-level cross-check suite enforces both.

use systolic_ring_isa::ctrl::CtrlInstr;
use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand, Reg};
use systolic_ring_isa::object::{Object, Preload};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

/// `wait N; halt` controller code.
fn wait_halt(cycles: u16) -> Vec<u32> {
    vec![
        CtrlInstr::Wait { cycles }.encode(),
        CtrlInstr::Halt.encode(),
    ]
}

fn route(ctx: u16, switch: u16, lane: u16, input: u8, source: PortSource) -> Preload {
    Preload::SwitchPort {
        ctx,
        switch,
        lane,
        input,
        word: source.encode(),
    }
}

fn node(ctx: u16, dnode: u16, instr: MicroInstr) -> Preload {
    Preload::DnodeInstr {
        ctx,
        dnode,
        word: instr.encode(),
    }
}

fn capture(ctx: u16, switch: u16, port: u16, lane: u8) -> Preload {
    Preload::HostCapture {
        ctx,
        switch,
        port,
        word: HostCapture::lane(lane).encode(),
    }
}

/// The stand-alone local-mode MAC: Dnode 0 accumulates the product of two
/// host streams into `r0` under its own sequencer.
pub fn mac_local() -> Object {
    let mac = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2).write_reg(Reg::R0);
    Object {
        geometry: Some(RingGeometry::RING_8),
        contexts: 1,
        code: wait_halt(64),
        data: Vec::new(),
        preload: vec![
            route(0, 0, 0, 0, PortSource::HostIn { port: 0 }),
            route(0, 0, 0, 1, PortSource::HostIn { port: 1 }),
            Preload::Mode {
                dnode: 0,
                local: true,
            },
            Preload::LocalSlot {
                dnode: 0,
                slot: 0,
                word: mac.encode(),
            },
            Preload::LocalLimit { dnode: 0, limit: 1 },
        ],
    }
}

/// A routed multiply-add chain: layer 0 scales the input stream, layer 1
/// adds the direct product to a one-slot-older product tapped from the
/// feedback pipeline — the §4.2 "required delays are automatically
/// achieved" mechanism.
pub fn fir_spatial() -> Object {
    let scale = MicroInstr::op(AluOp::Mul, Operand::In1, Operand::Imm)
        .with_imm(Word16::from_i16(3))
        .write_out();
    let sum = MicroInstr::op(AluOp::Add, Operand::In1, Operand::In2).write_out();
    Object {
        geometry: Some(RingGeometry::RING_8),
        contexts: 1,
        code: wait_halt(128),
        data: Vec::new(),
        preload: vec![
            route(0, 0, 0, 0, PortSource::HostIn { port: 0 }),
            node(0, 0, scale),
            route(0, 1, 0, 0, PortSource::PrevOut { lane: 0 }),
            route(
                0,
                1,
                0,
                1,
                PortSource::Pipe {
                    switch: 1,
                    stage: 0,
                    lane: 0,
                },
            ),
            node(0, 2, sum), // dnode (layer 1, lane 0)
            capture(0, 2, 0, 0),
        ],
    }
}

/// Compute-then-drain across two configuration contexts: context 0 MACs
/// two host streams into `r0`, context 1 exposes the accumulator on the
/// layer output where a capture collects it. The controller switches
/// contexts mid-run — the dynamic-reconfiguration pattern of the
/// evaluation workloads.
pub fn mac_context_drain() -> Object {
    let mac = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2).write_reg(Reg::R0);
    let expose = MicroInstr::op(AluOp::PassA, Operand::Reg(Reg::R0), Operand::Zero).write_out();
    Object {
        geometry: Some(RingGeometry::RING_8),
        contexts: 2,
        code: vec![
            CtrlInstr::Wait { cycles: 32 }.encode(),
            CtrlInstr::Ctx { ctx: 1 }.encode(),
            CtrlInstr::Wait { cycles: 8 }.encode(),
            CtrlInstr::Halt.encode(),
        ],
        data: Vec::new(),
        preload: vec![
            route(0, 0, 0, 0, PortSource::HostIn { port: 0 }),
            route(0, 0, 0, 1, PortSource::HostIn { port: 1 }),
            node(0, 0, mac),
            node(1, 0, expose),
            capture(1, 1, 0, 0),
        ],
    }
}

/// FIFO emulation: a pass-through chain of Dnodes, one per layer, each
/// forwarding its input one hop around the ring — the §6 macro-operator
/// that turns fabric area into buffering.
pub fn fifo_chain() -> Object {
    let pass = MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_out();
    Object {
        geometry: Some(RingGeometry::RING_8),
        contexts: 1,
        code: wait_halt(64),
        data: Vec::new(),
        preload: vec![
            route(0, 0, 0, 0, PortSource::HostIn { port: 0 }),
            node(0, 0, pass),
            route(0, 1, 0, 0, PortSource::PrevOut { lane: 0 }),
            node(0, 2, pass),
            route(0, 2, 0, 0, PortSource::PrevOut { lane: 0 }),
            node(0, 4, pass),
            capture(0, 3, 0, 0),
        ],
    }
}

/// A route reading the deepest legal feedback-pipeline stage
/// (`pipe_depth - 1` under the paper's sizing): the longest value
/// lifetime the fabric supports without spilling, and the boundary the
/// lint's dataflow pass checks.
pub fn pipe_deep_tap() -> Object {
    let src = MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_out();
    let diff = MicroInstr::op(AluOp::Sub, Operand::In1, Operand::In2).write_out();
    Object {
        geometry: Some(RingGeometry::RING_8),
        contexts: 1,
        code: wait_halt(96),
        data: Vec::new(),
        preload: vec![
            route(0, 0, 0, 0, PortSource::HostIn { port: 0 }),
            node(0, 0, src),
            route(0, 1, 0, 0, PortSource::PrevOut { lane: 0 }),
            route(
                0,
                1,
                0,
                1,
                PortSource::Pipe {
                    switch: 1,
                    stage: 7, // MachineParams::PAPER.pipe_depth - 1
                    lane: 0,
                },
            ),
            node(0, 2, diff),
            capture(0, 2, 0, 0),
        ],
    }
}

/// Every named object in this module, for sweep-style tests and tools.
pub fn all() -> Vec<(&'static str, Object)> {
    vec![
        ("mac-local", mac_local()),
        ("fir-spatial", fir_spatial()),
        ("mac-context-drain", mac_context_drain()),
        ("fifo-chain", fifo_chain()),
        ("pipe-deep-tap", pipe_deep_tap()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ring_core::{MachineParams, RingMachine};

    /// Every named object loads onto a paper-sized machine and runs to
    /// halt without faulting.
    #[test]
    fn objects_load_and_run() {
        for (name, object) in all() {
            let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER);
            m.load(&object).unwrap_or_else(|e| panic!("{name}: {e}"));
            m.run_until_halt(10_000)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    /// The objects survive a byte round-trip through the container
    /// format.
    #[test]
    fn objects_round_trip_bytes() {
        for (name, object) in all() {
            let bytes = object.to_bytes();
            let back = Object::from_bytes(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, object, "{name}");
        }
    }
}
