//! FIR (RIF) filters: spatial systolic mapping and the local-mode serial
//! macro-operator.
//!
//! Two mappings demonstrate the paper's central trade-off (§6):
//!
//! * [`spatial`] — a fully spatial direct-form systolic FIR producing **one
//!   output per cycle**, using three fabric lanes: the sample stream, the
//!   tap products, and the accumulating partial sums. The per-stage
//!   two-cycle sample skew required by the direct form is realized with the
//!   **feedback pipelines** ("the required delays ... are automatically
//!   achieved in them", §4.2).
//! * [`local_serial`] — a 3-tap FIR folded onto a **single Dnode** in local
//!   mode: 7 microinstructions per sample, one output every 7 cycles, zero
//!   controller overhead. This is exactly the resource-shared RIF of §6
//!   that "is impossible without very efficient dynamical reconfiguration"
//!   on conventional CGRAs.

use systolic_ring_core::{MachineParams, RingMachine};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

use crate::{KernelError, KernelRun};

/// Runs an N-tap direct-form systolic FIR at one output per cycle.
///
/// Requires `coeffs.len() <= layers - 1` and `width >= 3`.
///
/// Lane roles:
/// * lane 0 — sample stream, moving one layer per **two** cycles (each hop
///   routed through the previous switch's feedback pipeline, stage 0),
/// * lane 1 — tap products `c_k * x`, one multiplier per layer,
/// * lane 2 — partial sums, moving one layer per cycle.
///
/// # Errors
///
/// Returns [`KernelError::DoesNotFit`] when the geometry is too small.
pub fn spatial(
    geometry: RingGeometry,
    coeffs: &[i16],
    input: &[i16],
) -> Result<KernelRun, KernelError> {
    let taps = coeffs.len();
    if taps == 0 {
        return Err(KernelError::BadParams("at least one coefficient".into()));
    }
    if taps > geometry.layers() - 1 {
        return Err(KernelError::DoesNotFit(format!(
            "{taps} taps need {} layers, {} has {}",
            taps + 1,
            geometry,
            geometry.layers()
        )));
    }
    if geometry.width() < 3 {
        return Err(KernelError::DoesNotFit(format!(
            "spatial FIR needs width >= 3, {geometry} has {}",
            geometry.width()
        )));
    }

    let mut m = RingMachine::new(geometry, MachineParams::PAPER);
    let cfg = m.configure();

    for (k, &coeff) in coeffs.iter().enumerate() {
        let x_src = if k == 0 {
            PortSource::HostIn { port: 0 }
        } else {
            // Route through the pipe to add the extra skew register.
            PortSource::Pipe {
                switch: k as u8,
                stage: 0,
                lane: 0,
            }
        };
        // Lane 0: sample chain (skewed).
        cfg.set_port(0, k, 0, 0, x_src)?;
        cfg.set_dnode_instr(
            0,
            geometry.dnode_index(k, 0),
            MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_out(),
        )?;
        // Lane 1: tap product from the same skewed sample.
        cfg.set_port(0, k, 1, 0, x_src)?;
        cfg.set_dnode_instr(
            0,
            geometry.dnode_index(k, 1),
            MicroInstr::op(AluOp::Mul, Operand::In1, Operand::Imm)
                .with_imm(Word16::from_i16(coeff))
                .write_out(),
        )?;
    }
    // Lane 2: partial sums through layers 1..=taps.
    for k in 1..=taps {
        let layer = k % geometry.layers();
        let sum_src = if k == 1 {
            PortSource::Zero
        } else {
            PortSource::PrevOut { lane: 2 }
        };
        cfg.set_port(0, layer, 2, 0, sum_src)?;
        cfg.set_port(0, layer, 2, 1, PortSource::PrevOut { lane: 1 })?;
        cfg.set_dnode_instr(
            0,
            geometry.dnode_index(layer, 2),
            MicroInstr::op(AluOp::Add, Operand::In1, Operand::In2).write_out(),
        )?;
    }
    // Capture the finished sums at the switch after the last adder.
    let out_switch = (taps + 1) % geometry.layers();
    cfg.set_capture(0, out_switch, 0, HostCapture::lane(2))?;
    m.open_sink(out_switch, 0)?;

    m.attach_input(0, 0, input.iter().map(|&v| Word16::from_i16(v)))?;

    // Latency: x_n enters at cycle n+1 (one cycle of host delivery); the
    // first adder output appears after the systolic fill; run long enough
    // to flush everything and trim on extraction.
    let fill = (2 * taps + 4) as u64;
    m.run(input.len() as u64 + fill)?;

    let sink = m.take_sink(out_switch, 0)?;
    // Warm-up produces a deterministic prefix of zeros (underflow samples
    // propagate zero products and sums). The first real output y[0]
    // corresponds to x[0] = input[0]; locate it by timing: x[0] is read at
    // cycle 1, reaches the final adder after (taps - 1) sum hops plus the
    // product stage, and its capture lands `latency` cycles in.
    let latency = 1 + 1 + taps; // host delivery + product stage + sum hops
    let outputs: Vec<i16> = sink
        .iter()
        .skip(latency)
        .take(input.len())
        .map(|w| w.as_i16())
        .collect();
    Ok(KernelRun {
        outputs,
        cycles: m.cycle(),
        stats: m.stats().clone(),
    })
}

/// Runs a 3-tap FIR folded onto one local-mode Dnode (one output per 7
/// cycles).
///
/// The local program keeps the delay line in the register file
/// (`r0 = x[n-1]`, `r1 = x[n-2]`, `r2` latches `x[n]`, `r3` accumulates):
///
/// ```text
/// s1: mov in1        > r2   ; latch x[n] (single host read per loop)
/// s2: mul r2,  #c0   > r3
/// s3: mac r0,  #c1   > r3
/// s4: mac r1,  #c2   > r3
/// s5: mov r0         > r1   ; shift delay line
/// s6: mov r2         > r0
/// s7: mov r3         > out  ; emit y[n]
/// ```
///
/// # Errors
///
/// Returns [`KernelError::BadParams`] unless exactly three coefficients are
/// given.
pub fn local_serial(
    geometry: RingGeometry,
    coeffs: &[i16],
    input: &[i16],
) -> Result<KernelRun, KernelError> {
    if coeffs.len() != 3 {
        return Err(KernelError::BadParams(format!(
            "local serial FIR is 3-tap (got {})",
            coeffs.len()
        )));
    }
    let mut m = RingMachine::new(geometry, MachineParams::PAPER);
    m.configure()
        .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })?;
    let imm = |c: i16| Word16::from_i16(c);
    let program = [
        MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_reg(Reg::R2),
        MicroInstr::op(AluOp::Mul, Operand::Reg(Reg::R2), Operand::Imm)
            .with_imm(imm(coeffs[0]))
            .write_reg(Reg::R3),
        MicroInstr::op(AluOp::Mac, Operand::Reg(Reg::R0), Operand::Imm)
            .with_imm(imm(coeffs[1]))
            .write_reg(Reg::R3),
        MicroInstr::op(AluOp::Mac, Operand::Reg(Reg::R1), Operand::Imm)
            .with_imm(imm(coeffs[2]))
            .write_reg(Reg::R3),
        MicroInstr::op(AluOp::PassA, Operand::Reg(Reg::R0), Operand::Zero).write_reg(Reg::R1),
        MicroInstr::op(AluOp::PassA, Operand::Reg(Reg::R2), Operand::Zero).write_reg(Reg::R0),
        MicroInstr::op(AluOp::PassA, Operand::Reg(Reg::R3), Operand::Zero).write_out(),
    ];
    m.set_local_program(0, &program)?;
    m.set_mode(0, DnodeMode::Local);
    m.attach_input(0, 0, input.iter().map(|&v| Word16::from_i16(v)))?;

    // Sample the Dnode output right after each s7 commit (logic-analyzer
    // style observation, as on the paper's APEX prototype). The host FIFO
    // delivers x[0] during cycle 0, the first loop iteration starts at
    // cycle 0 but reads an empty FIFO... so step one warm-up loop first:
    // iteration i consumes x[i-1] (the FIFO fills one word ahead).
    let mut outputs = Vec::with_capacity(input.len());
    let period = program.len() as u64;
    // Warm-up iteration 0 (reads underflow zero).
    m.run(period)?;
    for _ in 0..input.len() {
        m.run(period)?;
        outputs.push(m.dnode(0).out().as_i16());
    }
    Ok(KernelRun {
        outputs,
        cycles: m.cycle(),
        stats: m.stats().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden;
    use crate::image::test_signal;

    #[test]
    fn spatial_matches_golden_on_impulse() {
        let coeffs = [3, -2, 5];
        let mut input = vec![0i16; 10];
        input[0] = 1;
        let run = spatial(RingGeometry::RING_16, &coeffs, &input).unwrap();
        assert_eq!(run.outputs, golden::fir(&coeffs, &input));
    }

    #[test]
    fn spatial_matches_golden_on_signal() {
        let coeffs = [7, 1, -4];
        let input = test_signal(64, 5);
        let run = spatial(RingGeometry::RING_16, &coeffs, &input).unwrap();
        assert_eq!(run.outputs, golden::fir(&coeffs, &input));
    }

    #[test]
    fn spatial_two_taps() {
        let coeffs = [2, 3];
        let input = test_signal(32, 9);
        let run = spatial(RingGeometry::RING_16, &coeffs, &input).unwrap();
        assert_eq!(run.outputs, golden::fir(&coeffs, &input));
    }

    #[test]
    fn spatial_single_tap_is_a_scaler() {
        let input = test_signal(16, 2);
        let run = spatial(RingGeometry::RING_16, &[4], &input).unwrap();
        assert_eq!(run.outputs, golden::fir(&[4], &input));
    }

    #[test]
    fn spatial_throughput_is_one_sample_per_cycle() {
        let input = test_signal(200, 3);
        let run = spatial(RingGeometry::RING_16, &[1, 2, 3], &input).unwrap();
        // cycles ~ n + constant fill.
        assert!(run.cycles < input.len() as u64 + 16);
    }

    #[test]
    fn spatial_rejects_oversized_filters() {
        assert!(matches!(
            spatial(RingGeometry::RING_16, &[1, 2, 3, 4], &[0]),
            Err(KernelError::DoesNotFit(_))
        ));
        assert!(matches!(
            spatial(RingGeometry::RING_8, &[1], &[0]), // width 2 < 3
            Err(KernelError::DoesNotFit(_))
        ));
        assert!(matches!(
            spatial(RingGeometry::RING_16, &[], &[0]),
            Err(KernelError::BadParams(_))
        ));
    }

    #[test]
    fn local_serial_matches_golden() {
        let coeffs = [3, -2, 5];
        let input = test_signal(24, 7);
        let run = local_serial(RingGeometry::RING_8, &coeffs, &input).unwrap();
        assert_eq!(run.outputs, golden::fir(&coeffs, &input));
    }

    #[test]
    fn local_serial_is_seven_cycles_per_sample() {
        let input = test_signal(10, 1);
        let run = local_serial(RingGeometry::RING_8, &[1, 1, 1], &input).unwrap();
        assert_eq!(run.cycles, 7 * (input.len() as u64 + 1));
        // Only one Dnode ever active.
        assert_eq!(run.stats.idle_dnodes(), 7);
    }

    #[test]
    fn local_serial_requires_three_taps() {
        assert!(matches!(
            local_serial(RingGeometry::RING_8, &[1, 2], &[0]),
            Err(KernelError::BadParams(_))
        ));
    }

    #[test]
    fn spatial_beats_local_serial_by_the_fold_factor() {
        let coeffs = [1, 2, 3];
        let input = test_signal(70, 4);
        let fast = spatial(RingGeometry::RING_16, &coeffs, &input).unwrap();
        let slow = local_serial(RingGeometry::RING_16, &coeffs, &input).unwrap();
        assert_eq!(fast.outputs, slow.outputs);
        let ratio = slow.cycles as f64 / fast.cycles as f64;
        assert!(ratio > 5.0, "expected ~7x, got {ratio:.2}x");
    }
}
