//! Dnode microinstruction set: operations, operand selectors and the
//! 48-bit configuration-word encoding.
//!
//! A Dnode executes exactly one microinstruction per clock cycle. In
//! *global mode* the word is supplied by the active configuration context;
//! in *local mode* it comes from the Dnode's own sequencer registers
//! (`S1..S8`). Either way the semantics are identical: read two operands,
//! combine them through the ALU and/or the hardwired multiplier, and commit
//! the result to a register, the layer output and/or the shared bus.
//!
//! The multiply-accumulate family ([`AluOp::Mac`], [`AluOp::MacSat`],
//! [`AluOp::Msu`]) chains the multiplier into the adder combinationally, the
//! paper's "up to two arithmetic operations each clock cycle".

use std::fmt;

use crate::Word16;

/// One of the four 16-bit registers in a Dnode's register file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// Register 0.
    R0,
    /// Register 1.
    R1,
    /// Register 2.
    R2,
    /// Register 3.
    R3,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 4] = [Reg::R0, Reg::R1, Reg::R2, Reg::R3];

    /// The register's index (0..=3).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Reg::R0 => 0,
            Reg::R1 => 1,
            Reg::R2 => 2,
            Reg::R3 => 3,
        }
    }

    /// Register with the given index.
    ///
    /// # Errors
    ///
    /// Returns `None` if `index > 3`.
    #[inline]
    pub const fn from_index(index: usize) -> Option<Reg> {
        match index {
            0 => Some(Reg::R0),
            1 => Some(Reg::R1),
            2 => Some(Reg::R2),
            3 => Some(Reg::R3),
            _ => None,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// Source selector for a Dnode ALU operand.
///
/// Mirrors the input multiplexer of the paper's Figure 3:
/// `In(1,2), fifo(1,2), bus, R(i)` plus an immediate and constants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register file read port.
    Reg(Reg),
    /// First switch input port (forward dataflow).
    In1,
    /// Second switch input port (forward dataflow).
    In2,
    /// First feedback-pipeline read port (reverse dataflow).
    Fifo1,
    /// Second feedback-pipeline read port (reverse dataflow).
    Fifo2,
    /// The shared bus (driven by the configuration controller or a Dnode).
    Bus,
    /// The microinstruction's 16-bit immediate field.
    Imm,
    /// Constant zero.
    Zero,
    /// Constant one.
    One,
}

impl Operand {
    const ENCODINGS: [(Operand, u8); 12] = [
        (Operand::Reg(Reg::R0), 0),
        (Operand::Reg(Reg::R1), 1),
        (Operand::Reg(Reg::R2), 2),
        (Operand::Reg(Reg::R3), 3),
        (Operand::In1, 4),
        (Operand::In2, 5),
        (Operand::Fifo1, 6),
        (Operand::Fifo2, 7),
        (Operand::Bus, 8),
        (Operand::Imm, 9),
        (Operand::Zero, 10),
        (Operand::One, 11),
    ];

    /// 4-bit field encoding.
    pub fn encode(self) -> u8 {
        Self::ENCODINGS
            .iter()
            .find(|(op, _)| *op == self)
            .map(|(_, code)| *code)
            .expect("every operand has an encoding")
    }

    /// Decodes a 4-bit field.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeMicroError`] for the four reserved encodings.
    pub fn decode(code: u8) -> Result<Self, DecodeMicroError> {
        Self::ENCODINGS
            .iter()
            .find(|(_, c)| *c == code)
            .map(|(op, _)| *op)
            .ok_or(DecodeMicroError::Operand(code))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::In1 => write!(f, "in1"),
            Operand::In2 => write!(f, "in2"),
            Operand::Fifo1 => write!(f, "fifo1"),
            Operand::Fifo2 => write!(f, "fifo2"),
            Operand::Bus => write!(f, "bus"),
            Operand::Imm => write!(f, "imm"),
            Operand::Zero => write!(f, "zero"),
            Operand::One => write!(f, "one"),
        }
    }
}

/// Dnode datapath operation.
///
/// The three-operand multiply-accumulate family uses the destination
/// register as implicit accumulator (`acc = acc op a*b`), keeping the
/// two-read-port register file of the paper sufficient.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// No operation; the Dnode output holds zero.
    Nop,
    /// Pass operand A through.
    PassA,
    /// Pass operand B through.
    PassB,
    /// Wrapping addition `a + b`.
    Add,
    /// Saturating signed addition.
    AddSat,
    /// Wrapping subtraction `a - b`.
    Sub,
    /// Saturating signed subtraction.
    SubSat,
    /// Two's-complement negation of A.
    Neg,
    /// Saturating absolute value of A.
    Abs,
    /// Saturating absolute difference `|a - b|`.
    AbsDiff,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT of A.
    Not,
    /// Logical left shift of A by `b & 15`.
    Shl,
    /// Logical right shift of A by `b & 15`.
    Shr,
    /// Arithmetic right shift of A by `b & 15`.
    Asr,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Unsigned minimum.
    MinU,
    /// Unsigned maximum.
    MaxU,
    /// Signed set-less-than (1 or 0).
    Slt,
    /// Unsigned set-less-than (1 or 0).
    SltU,
    /// Low half of the 16x16 product.
    Mul,
    /// High half of the signed 16x16 product.
    MulHi,
    /// High half of the unsigned 16x16 product.
    MulHiU,
    /// Multiply-accumulate: `dst + a*b` (wrapping), the paper's single-cycle
    /// MAC chaining multiplier into adder.
    Mac,
    /// Saturating multiply-accumulate: `sat(dst + a*b)`.
    MacSat,
    /// Multiply-subtract: `dst - a*b` (wrapping).
    Msu,
}

impl AluOp {
    const ENCODINGS: [AluOp; 29] = [
        AluOp::Nop,
        AluOp::PassA,
        AluOp::PassB,
        AluOp::Add,
        AluOp::AddSat,
        AluOp::Sub,
        AluOp::SubSat,
        AluOp::Neg,
        AluOp::Abs,
        AluOp::AbsDiff,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Not,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Asr,
        AluOp::Min,
        AluOp::Max,
        AluOp::MinU,
        AluOp::MaxU,
        AluOp::Slt,
        AluOp::SltU,
        AluOp::Mul,
        AluOp::MulHi,
        AluOp::MulHiU,
        AluOp::Mac,
        AluOp::MacSat,
        AluOp::Msu,
    ];

    /// 5-bit field encoding.
    pub fn encode(self) -> u8 {
        Self::ENCODINGS
            .iter()
            .position(|op| *op == self)
            .expect("every op has an encoding") as u8
    }

    /// Decodes a 5-bit field.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeMicroError`] for reserved encodings.
    pub fn decode(code: u8) -> Result<Self, DecodeMicroError> {
        Self::ENCODINGS
            .get(code as usize)
            .copied()
            .ok_or(DecodeMicroError::Opcode(code))
    }

    /// `true` for the multiply-accumulate family, which reads the
    /// destination register as a third (implicit) operand.
    pub const fn uses_accumulator(self) -> bool {
        matches!(self, AluOp::Mac | AluOp::MacSat | AluOp::Msu)
    }

    /// `true` if the operation engages the hardwired multiplier.
    pub const fn uses_multiplier(self) -> bool {
        matches!(
            self,
            AluOp::Mul | AluOp::MulHi | AluOp::MulHiU | AluOp::Mac | AluOp::MacSat | AluOp::Msu
        )
    }

    /// Evaluates the operation on already-selected operand values.
    ///
    /// `acc` is the pre-cycle value of the destination register and is only
    /// observed by the multiply-accumulate family.
    pub fn eval(self, a: Word16, b: Word16, acc: Word16) -> Word16 {
        match self {
            AluOp::Nop => Word16::ZERO,
            AluOp::PassA => a,
            AluOp::PassB => b,
            AluOp::Add => a.wrapping_add(b),
            AluOp::AddSat => a.saturating_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::SubSat => a.saturating_sub(b),
            AluOp::Neg => a.wrapping_neg(),
            AluOp::Abs => a.abs(),
            AluOp::AbsDiff => a.abs_diff(b),
            AluOp::And => a.and(b),
            AluOp::Or => a.or(b),
            AluOp::Xor => a.xor(b),
            AluOp::Not => a.not(),
            AluOp::Shl => a.shl(b),
            AluOp::Shr => a.shr(b),
            AluOp::Asr => a.asr(b),
            AluOp::Min => a.min_s(b),
            AluOp::Max => a.max_s(b),
            AluOp::MinU => a.min_u(b),
            AluOp::MaxU => a.max_u(b),
            AluOp::Slt => a.slt(b),
            AluOp::SltU => a.sltu(b),
            AluOp::Mul => a.mul_lo(b),
            AluOp::MulHi => a.mul_hi(b),
            AluOp::MulHiU => a.mul_hi_unsigned(b),
            AluOp::Mac => acc.wrapping_add(a.mul_lo(b)),
            AluOp::MacSat => {
                let product = a.widening_mul(b);
                let sum = acc.as_i16() as i32 + product;
                Word16::from_i16(sum.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
            }
            AluOp::Msu => acc.wrapping_sub(a.mul_lo(b)),
        }
    }

    /// The mnemonic used by the assembler and disassembler.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Nop => "nop",
            AluOp::PassA => "mov",
            AluOp::PassB => "movb",
            AluOp::Add => "add",
            AluOp::AddSat => "adds",
            AluOp::Sub => "sub",
            AluOp::SubSat => "subs",
            AluOp::Neg => "neg",
            AluOp::Abs => "abs",
            AluOp::AbsDiff => "absd",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Not => "not",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Asr => "asr",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::MinU => "minu",
            AluOp::MaxU => "maxu",
            AluOp::Slt => "slt",
            AluOp::SltU => "sltu",
            AluOp::Mul => "mul",
            AluOp::MulHi => "mulh",
            AluOp::MulHiU => "mulhu",
            AluOp::Mac => "mac",
            AluOp::MacSat => "macs",
            AluOp::Msu => "msu",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error decoding a Dnode microinstruction word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeMicroError {
    /// Reserved opcode field value.
    Opcode(u8),
    /// Reserved operand-selector field value.
    Operand(u8),
    /// Bits that must be zero were set.
    ReservedBits(u64),
}

impl fmt::Display for DecodeMicroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeMicroError::Opcode(c) => write!(f, "reserved dnode opcode {c:#04x}"),
            DecodeMicroError::Operand(c) => write!(f, "reserved operand selector {c:#04x}"),
            DecodeMicroError::ReservedBits(w) => {
                write!(f, "reserved bits set in microinstruction word {w:#018x}")
            }
        }
    }
}

impl std::error::Error for DecodeMicroError {}

/// A complete Dnode microinstruction (one configuration-layer word).
///
/// # Examples
///
/// A single-cycle MAC accumulating `in1 * in2` into `r0` and forwarding the
/// running sum to the next layer:
///
/// ```
/// use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand, Reg};
///
/// let mac = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2)
///     .write_reg(Reg::R0)
///     .write_out();
/// let word = mac.encode();
/// assert_eq!(MicroInstr::decode(word).unwrap(), mac);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MicroInstr {
    /// Datapath operation.
    pub alu: AluOp,
    /// Operand A selector.
    pub src_a: Operand,
    /// Operand B selector.
    pub src_b: Operand,
    /// Register written with the result, if any. For the multiply-accumulate
    /// family this register is also the implicit accumulator input.
    pub wr_reg: Option<Reg>,
    /// Drive the result on the Dnode's layer output (to the next switch).
    pub wr_out: bool,
    /// Drive the result on the shared bus next cycle.
    pub wr_bus: bool,
    /// Immediate field, read through [`Operand::Imm`].
    pub imm: Word16,
}

impl MicroInstr {
    /// The idle microinstruction (reset value of every configuration slot).
    pub const NOP: MicroInstr = MicroInstr {
        alu: AluOp::Nop,
        src_a: Operand::Zero,
        src_b: Operand::Zero,
        wr_reg: None,
        wr_out: false,
        wr_bus: false,
        imm: Word16::ZERO,
    };

    /// Starts building a microinstruction from an operation and two sources.
    pub const fn op(alu: AluOp, src_a: Operand, src_b: Operand) -> Self {
        MicroInstr {
            alu,
            src_a,
            src_b,
            wr_reg: None,
            wr_out: false,
            wr_bus: false,
            imm: Word16::ZERO,
        }
    }

    /// Builder: write the result to `reg`.
    pub const fn write_reg(mut self, reg: Reg) -> Self {
        self.wr_reg = Some(reg);
        self
    }

    /// Builder: drive the result on the layer output.
    pub const fn write_out(mut self) -> Self {
        self.wr_out = true;
        self
    }

    /// Builder: drive the result on the shared bus.
    pub const fn write_bus(mut self) -> Self {
        self.wr_bus = true;
        self
    }

    /// Builder: set the immediate field.
    pub const fn with_imm(mut self, imm: Word16) -> Self {
        self.imm = imm;
        self
    }

    /// Encodes to the 48-bit configuration word (stored in a `u64`).
    ///
    /// Layout: `[0..5)` opcode, `[5..9)` src A, `[9..13)` src B, `[13)` reg
    /// write enable, `[14..16)` reg index, `[16)` out enable, `[17)` bus
    /// enable, `[32..48)` immediate. All other bits are zero.
    pub fn encode(&self) -> u64 {
        let mut w = 0u64;
        w |= self.alu.encode() as u64;
        w |= (self.src_a.encode() as u64) << 5;
        w |= (self.src_b.encode() as u64) << 9;
        if let Some(reg) = self.wr_reg {
            w |= 1 << 13;
            w |= (reg.index() as u64) << 14;
        }
        if self.wr_out {
            w |= 1 << 16;
        }
        if self.wr_bus {
            w |= 1 << 17;
        }
        w |= (self.imm.bits() as u64) << 32;
        w
    }

    /// Decodes a configuration word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeMicroError`] if the opcode or an operand selector is
    /// reserved, or if bits `[18..32)` / `[48..64)` are not zero.
    pub fn decode(word: u64) -> Result<Self, DecodeMicroError> {
        const RESERVED: u64 = !((1 << 18) - 1) & 0xffff_ffff | 0xffff_0000_0000_0000;
        if word & RESERVED != 0 {
            return Err(DecodeMicroError::ReservedBits(word));
        }
        let alu = AluOp::decode((word & 0x1f) as u8)?;
        let src_a = Operand::decode(((word >> 5) & 0xf) as u8)?;
        let src_b = Operand::decode(((word >> 9) & 0xf) as u8)?;
        let wr_reg = if word & (1 << 13) != 0 {
            Reg::from_index(((word >> 14) & 0x3) as usize)
        } else {
            None
        };
        Ok(MicroInstr {
            alu,
            src_a,
            src_b,
            wr_reg,
            wr_out: word & (1 << 16) != 0,
            wr_bus: word & (1 << 17) != 0,
            imm: Word16::new(((word >> 32) & 0xffff) as u16),
        })
    }
}

impl Default for MicroInstr {
    fn default() -> Self {
        MicroInstr::NOP
    }
}

impl fmt::Display for MicroInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}, {}", self.alu, self.src_a, self.src_b)?;
        if self.src_a == Operand::Imm || self.src_b == Operand::Imm {
            write!(f, ", #{}", self.imm)?;
        }
        let mut dests = Vec::new();
        if let Some(reg) = self.wr_reg {
            dests.push(reg.to_string());
        }
        if self.wr_out {
            dests.push("out".to_owned());
        }
        if self.wr_bus {
            dests.push("bus".to_owned());
        }
        if !dests.is_empty() {
            write!(f, " -> {}", dests.join("|"))?;
        }
        Ok(())
    }
}

/// Execution mode of a Dnode (paper §4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum DnodeMode {
    /// Normal mode: the microinstruction comes from the active configuration
    /// context every cycle, under configuration-controller management.
    #[default]
    Global,
    /// Stand-alone mode: the local sequencer replays `S1..S(LIMIT)`.
    Local,
}

impl fmt::Display for DnodeMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnodeMode::Global => f.write_str("global"),
            DnodeMode::Local => f.write_str("local"),
        }
    }
}

/// Number of local-sequencer instruction registers per Dnode (`S1..S8`).
pub const LOCAL_SLOTS: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<MicroInstr> {
        let mut v = vec![MicroInstr::NOP];
        for alu in AluOp::ENCODINGS {
            v.push(
                MicroInstr::op(alu, Operand::In1, Operand::Reg(Reg::R2))
                    .write_reg(Reg::R1)
                    .write_out(),
            );
        }
        v.push(
            MicroInstr::op(AluOp::Add, Operand::Imm, Operand::Bus)
                .with_imm(Word16::from_i16(-1234))
                .write_bus(),
        );
        v.push(MicroInstr::op(AluOp::PassA, Operand::Fifo1, Operand::Fifo2).write_out());
        v
    }

    #[test]
    fn encode_decode_round_trips() {
        for instr in sample_instrs() {
            let word = instr.encode();
            assert_eq!(MicroInstr::decode(word).unwrap(), instr, "word {word:#x}");
        }
    }

    #[test]
    fn decode_rejects_reserved_opcode() {
        assert_eq!(MicroInstr::decode(31), Err(DecodeMicroError::Opcode(31)));
    }

    #[test]
    fn decode_rejects_reserved_operand() {
        // opcode 0 with src_a = 15 (reserved).
        let word = 15u64 << 5;
        assert_eq!(MicroInstr::decode(word), Err(DecodeMicroError::Operand(15)));
    }

    #[test]
    fn decode_rejects_reserved_bits() {
        assert!(matches!(
            MicroInstr::decode(1 << 20),
            Err(DecodeMicroError::ReservedBits(_))
        ));
        assert!(matches!(
            MicroInstr::decode(1 << 60),
            Err(DecodeMicroError::ReservedBits(_))
        ));
    }

    #[test]
    fn mac_family_reads_accumulator() {
        let acc = Word16::from_i16(100);
        let a = Word16::from_i16(3);
        let b = Word16::from_i16(-7);
        assert_eq!(AluOp::Mac.eval(a, b, acc).as_i16(), 100 - 21);
        assert_eq!(AluOp::Msu.eval(a, b, acc).as_i16(), 100 + 21);
        assert_eq!(
            AluOp::MacSat
                .eval(
                    Word16::from_i16(200),
                    Word16::from_i16(200),
                    Word16::from_i16(30000)
                )
                .as_i16(),
            i16::MAX
        );
        assert!(AluOp::Mac.uses_accumulator());
        assert!(!AluOp::Add.uses_accumulator());
    }

    #[test]
    fn eval_matches_word_primitives() {
        let a = Word16::from_i16(-5);
        let b = Word16::from_i16(9);
        assert_eq!(AluOp::Add.eval(a, b, Word16::ZERO), a.wrapping_add(b));
        assert_eq!(AluOp::AbsDiff.eval(a, b, Word16::ZERO).as_i16(), 14);
        assert_eq!(AluOp::Nop.eval(a, b, Word16::ZERO), Word16::ZERO);
        assert_eq!(AluOp::PassB.eval(a, b, Word16::ZERO), b);
        assert_eq!(AluOp::Not.eval(a, b, Word16::ZERO), a.not());
    }

    #[test]
    fn multiplier_classification() {
        assert!(AluOp::Mul.uses_multiplier());
        assert!(AluOp::MacSat.uses_multiplier());
        assert!(!AluOp::AbsDiff.uses_multiplier());
    }

    #[test]
    fn display_formats_nicely() {
        let mac = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2)
            .write_reg(Reg::R0)
            .write_out();
        assert_eq!(mac.to_string(), "mac in1, in2 -> r0|out");
        let imm = MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R1), Operand::Imm)
            .with_imm(Word16::from_i16(7));
        assert_eq!(imm.to_string(), "add r1, imm, #7");
    }

    #[test]
    fn reg_round_trips() {
        for reg in Reg::ALL {
            assert_eq!(Reg::from_index(reg.index()), Some(reg));
        }
        assert_eq!(Reg::from_index(4), None);
    }

    #[test]
    fn default_mode_is_global() {
        assert_eq!(DnodeMode::default(), DnodeMode::Global);
    }
}
