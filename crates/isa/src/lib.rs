//! Instruction-set definitions for the **Systolic Ring**, the coarse-grained
//! dynamically reconfigurable DSP architecture of Sassatelli et al.
//! (DATE 2002).
//!
//! This crate is the single source of truth for every bit-level contract in
//! the reproduction:
//!
//! * [`Word16`] — the 16-bit datapath word,
//! * [`RingGeometry`] — the layer x width fabric parameterization,
//! * [`dnode`] — Dnode operations, operand selectors and microinstruction
//!   encoding,
//! * [`switch`] — inter-layer crossbar and host-capture configuration words,
//! * [`ctrl`] — the configuration controller's dedicated RISC ISA,
//! * [`object`] — the loadable object-code container emitted by the
//!   assembler,
//! * [`expect`] — embedded conformance expectations (`;!` directives)
//!   carried alongside assembled objects,
//! * [`proof`] — static proof manifests a verifier binds to object bytes
//!   so the core can elide runtime guards.
//!
//! The cycle-accurate simulator (`systolic-ring-core`) and the two-level
//! assembler (`systolic-ring-asm`) both build on these definitions, so a
//! round trip through the assembler, object format and machine loader is
//! bit-exact by construction.
//!
//! # Examples
//!
//! Encode the single-cycle MAC the paper highlights (§4.1) and decode it
//! back:
//!
//! ```
//! use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand, Reg};
//!
//! let mac = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2)
//!     .write_reg(Reg::R0)
//!     .write_out();
//! assert_eq!(MicroInstr::decode(mac.encode()).unwrap(), mac);
//! ```

#![warn(missing_docs)]

pub mod ctrl;
pub mod dnode;
pub mod expect;
pub mod geometry;
pub mod object;
pub mod proof;
pub mod switch;
mod word;

pub use geometry::{InvalidGeometry, RingGeometry};
pub use word::Word16;
