//! Loadable object-code format emitted by the assembler and consumed by the
//! machine loader.
//!
//! The paper's tool flow "directly generates the machine object code, ready
//! to be executed in the architecture" (§5.1). An [`Object`] bundles
//! everything a Systolic Ring needs to start computing:
//!
//! * the controller program (`code`) and initial data memory (`data`),
//! * fabric preload records — initial configuration-context contents,
//!   Dnode modes and local-sequencer programs — applied before cycle 0,
//! * the ring geometry and context count the program was assembled for.
//!
//! The serialized form is a small little-endian binary container (magic
//! `SRNGOBJ1`).

use std::fmt;

use crate::geometry::RingGeometry;

/// Magic bytes opening every serialized object.
pub const MAGIC: [u8; 8] = *b"SRNGOBJ1";

/// One fabric-preload action, applied in order before the machine starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preload {
    /// Set `contexts[ctx][dnode]` to a microinstruction word.
    DnodeInstr {
        /// Target configuration context.
        ctx: u16,
        /// Target Dnode (flat index).
        dnode: u16,
        /// Encoded microinstruction ([`crate::dnode::MicroInstr::encode`]).
        word: u64,
    },
    /// Set a switch crossbar port in `ctx`.
    SwitchPort {
        /// Target configuration context.
        ctx: u16,
        /// Switch index.
        switch: u16,
        /// Downstream lane.
        lane: u16,
        /// Input port: 0 = `In1`, 1 = `In2`, 2 = `Fifo1`, 3 = `Fifo2`.
        input: u8,
        /// Encoded port source ([`crate::switch::PortSource::encode`]).
        word: u32,
    },
    /// Set one of a switch's host-output capture selectors in `ctx`.
    HostCapture {
        /// Target configuration context.
        ctx: u16,
        /// Switch index.
        switch: u16,
        /// Host-output port within the switch (a switch has `width` of
        /// them).
        port: u16,
        /// Encoded capture selector ([`crate::switch::HostCapture::encode`]).
        word: u32,
    },
    /// Set a Dnode's execution mode.
    Mode {
        /// Target Dnode (flat index).
        dnode: u16,
        /// `true` for local (stand-alone) mode.
        local: bool,
    },
    /// Write a local-sequencer slot.
    LocalSlot {
        /// Target Dnode (flat index).
        dnode: u16,
        /// Sequencer slot (0..8, i.e. `S1..S8`).
        slot: u8,
        /// Encoded microinstruction.
        word: u64,
    },
    /// Set a Dnode's sequencer limit (1..=8).
    LocalLimit {
        /// Target Dnode (flat index).
        dnode: u16,
        /// New limit.
        limit: u8,
    },
}

/// A complete loadable program for one Systolic Ring instance.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Object {
    /// Ring geometry the program was assembled for, if declared.
    pub geometry: Option<RingGeometry>,
    /// Number of configuration contexts the program expects (0 = default).
    pub contexts: u16,
    /// Controller program (encoded [`crate::ctrl::CtrlInstr`] words).
    pub code: Vec<u32>,
    /// Initial controller data memory.
    pub data: Vec<u32>,
    /// Fabric preload records, applied in order at load time.
    pub preload: Vec<Preload>,
}

/// Error deserializing an [`Object`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjectError {
    /// Input does not start with [`MAGIC`].
    BadMagic,
    /// Input ended before the declared contents.
    Truncated,
    /// Unknown preload record tag.
    BadRecordTag(u8),
    /// Declared geometry is invalid.
    BadGeometry {
        /// Declared layer count.
        layers: u16,
        /// Declared width.
        width: u16,
    },
    /// Trailing bytes after the declared contents.
    TrailingBytes(usize),
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::BadMagic => f.write_str("not a systolic-ring object (bad magic)"),
            ObjectError::Truncated => f.write_str("object truncated"),
            ObjectError::BadRecordTag(tag) => write!(f, "unknown preload record tag {tag}"),
            ObjectError::BadGeometry { layers, width } => {
                write!(f, "invalid declared geometry {layers}x{width}")
            }
            ObjectError::TrailingBytes(n) => write!(f, "{n} trailing bytes after object"),
        }
    }
}

impl std::error::Error for ObjectError {}

const TAG_DNODE_INSTR: u8 = 1;
const TAG_SWITCH_PORT: u8 = 2;
const TAG_HOST_CAPTURE: u8 = 3;
const TAG_MODE: u8 = 4;
const TAG_LOCAL_SLOT: u8 = 5;
const TAG_LOCAL_LIMIT: u8 = 6;

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ObjectError> {
        if self.pos + n > self.bytes.len() {
            return Err(ObjectError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ObjectError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ObjectError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ObjectError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ObjectError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl Object {
    /// Creates an empty object (no geometry, no code).
    pub fn new() -> Self {
        Object::default()
    }

    /// Serializes to the binary container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.code.len() * 4 + self.data.len() * 4);
        out.extend_from_slice(&MAGIC);
        let (layers, width) = match self.geometry {
            Some(g) => (g.layers() as u16, g.width() as u16),
            None => (0, 0),
        };
        out.extend_from_slice(&layers.to_le_bytes());
        out.extend_from_slice(&width.to_le_bytes());
        out.extend_from_slice(&self.contexts.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(self.code.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.preload.len() as u32).to_le_bytes());
        for word in &self.code {
            out.extend_from_slice(&word.to_le_bytes());
        }
        for word in &self.data {
            out.extend_from_slice(&word.to_le_bytes());
        }
        for record in &self.preload {
            match *record {
                Preload::DnodeInstr { ctx, dnode, word } => {
                    out.push(TAG_DNODE_INSTR);
                    out.extend_from_slice(&ctx.to_le_bytes());
                    out.extend_from_slice(&dnode.to_le_bytes());
                    out.extend_from_slice(&word.to_le_bytes());
                }
                Preload::SwitchPort {
                    ctx,
                    switch,
                    lane,
                    input,
                    word,
                } => {
                    out.push(TAG_SWITCH_PORT);
                    out.extend_from_slice(&ctx.to_le_bytes());
                    out.extend_from_slice(&switch.to_le_bytes());
                    out.extend_from_slice(&lane.to_le_bytes());
                    out.push(input);
                    out.extend_from_slice(&word.to_le_bytes());
                }
                Preload::HostCapture {
                    ctx,
                    switch,
                    port,
                    word,
                } => {
                    out.push(TAG_HOST_CAPTURE);
                    out.extend_from_slice(&ctx.to_le_bytes());
                    out.extend_from_slice(&switch.to_le_bytes());
                    out.extend_from_slice(&port.to_le_bytes());
                    out.extend_from_slice(&word.to_le_bytes());
                }
                Preload::Mode { dnode, local } => {
                    out.push(TAG_MODE);
                    out.extend_from_slice(&dnode.to_le_bytes());
                    out.push(local as u8);
                }
                Preload::LocalSlot { dnode, slot, word } => {
                    out.push(TAG_LOCAL_SLOT);
                    out.extend_from_slice(&dnode.to_le_bytes());
                    out.push(slot);
                    out.extend_from_slice(&word.to_le_bytes());
                }
                Preload::LocalLimit { dnode, limit } => {
                    out.push(TAG_LOCAL_LIMIT);
                    out.extend_from_slice(&dnode.to_le_bytes());
                    out.push(limit);
                }
            }
        }
        out
    }

    /// Deserializes from the binary container format.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectError`] if the input is not a well-formed container.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ObjectError> {
        let mut cur = Cursor { bytes, pos: 0 };
        if cur.take(8)? != MAGIC {
            return Err(ObjectError::BadMagic);
        }
        let layers = cur.u16()?;
        let width = cur.u16()?;
        let contexts = cur.u16()?;
        let _reserved = cur.u16()?;
        let geometry = if layers == 0 && width == 0 {
            None
        } else {
            Some(
                RingGeometry::new(layers as usize, width as usize)
                    .map_err(|_| ObjectError::BadGeometry { layers, width })?,
            )
        };
        let code_len = cur.u32()? as usize;
        let data_len = cur.u32()? as usize;
        let preload_len = cur.u32()? as usize;
        let mut code = Vec::with_capacity(code_len.min(1 << 20));
        for _ in 0..code_len {
            code.push(cur.u32()?);
        }
        let mut data = Vec::with_capacity(data_len.min(1 << 20));
        for _ in 0..data_len {
            data.push(cur.u32()?);
        }
        let mut preload = Vec::with_capacity(preload_len.min(1 << 20));
        for _ in 0..preload_len {
            let tag = cur.u8()?;
            let record = match tag {
                TAG_DNODE_INSTR => Preload::DnodeInstr {
                    ctx: cur.u16()?,
                    dnode: cur.u16()?,
                    word: cur.u64()?,
                },
                TAG_SWITCH_PORT => Preload::SwitchPort {
                    ctx: cur.u16()?,
                    switch: cur.u16()?,
                    lane: cur.u16()?,
                    input: cur.u8()?,
                    word: cur.u32()?,
                },
                TAG_HOST_CAPTURE => Preload::HostCapture {
                    ctx: cur.u16()?,
                    switch: cur.u16()?,
                    port: cur.u16()?,
                    word: cur.u32()?,
                },
                TAG_MODE => Preload::Mode {
                    dnode: cur.u16()?,
                    local: cur.u8()? != 0,
                },
                TAG_LOCAL_SLOT => Preload::LocalSlot {
                    dnode: cur.u16()?,
                    slot: cur.u8()?,
                    word: cur.u64()?,
                },
                TAG_LOCAL_LIMIT => Preload::LocalLimit {
                    dnode: cur.u16()?,
                    limit: cur.u8()?,
                },
                other => return Err(ObjectError::BadRecordTag(other)),
            };
            preload.push(record);
        }
        if cur.pos != bytes.len() {
            return Err(ObjectError::TrailingBytes(bytes.len() - cur.pos));
        }
        Ok(Object {
            geometry,
            contexts,
            code,
            data,
            preload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Object {
        Object {
            geometry: Some(RingGeometry::RING_8),
            contexts: 4,
            code: vec![0xdead_beef, 0x0123_4567, 0],
            data: vec![42, 0xffff_ffff],
            preload: vec![
                Preload::DnodeInstr {
                    ctx: 0,
                    dnode: 3,
                    word: 0x1234_0000_00ab,
                },
                Preload::SwitchPort {
                    ctx: 1,
                    switch: 2,
                    lane: 0,
                    input: 1,
                    word: 9,
                },
                Preload::HostCapture {
                    ctx: 0,
                    switch: 3,
                    port: 1,
                    word: 1,
                },
                Preload::Mode {
                    dnode: 7,
                    local: true,
                },
                Preload::LocalSlot {
                    dnode: 7,
                    slot: 2,
                    word: 0x55,
                },
                Preload::LocalLimit { dnode: 7, limit: 3 },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let obj = sample();
        let bytes = obj.to_bytes();
        assert_eq!(Object::from_bytes(&bytes).unwrap(), obj);
    }

    #[test]
    fn empty_object_round_trips() {
        let obj = Object::new();
        assert_eq!(Object::from_bytes(&obj.to_bytes()).unwrap(), obj);
        assert_eq!(obj.geometry, None);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Object::from_bytes(&bytes), Err(ObjectError::BadMagic));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            let err = Object::from_bytes(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, ObjectError::Truncated | ObjectError::BadMagic),
                "unexpected error at len {len}: {err}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(
            Object::from_bytes(&bytes),
            Err(ObjectError::TrailingBytes(1))
        );
    }

    #[test]
    fn rejects_bad_record_tag() {
        let mut obj = Object::new();
        obj.preload.push(Preload::Mode {
            dnode: 0,
            local: false,
        });
        let mut bytes = obj.to_bytes();
        // The record tag is the first byte after the 28-byte header.
        let tag_pos = 8 + 8 + 12;
        assert_eq!(bytes[tag_pos], TAG_MODE);
        bytes[tag_pos] = 99;
        assert_eq!(
            Object::from_bytes(&bytes),
            Err(ObjectError::BadRecordTag(99))
        );
    }

    #[test]
    fn rejects_invalid_geometry() {
        let mut bytes = Object::new().to_bytes();
        // layers = 1 (invalid), width = 4.
        bytes[8..10].copy_from_slice(&1u16.to_le_bytes());
        bytes[10..12].copy_from_slice(&4u16.to_le_bytes());
        assert_eq!(
            Object::from_bytes(&bytes),
            Err(ObjectError::BadGeometry {
                layers: 1,
                width: 4
            })
        );
    }
}
