//! Loadable object-code format emitted by the assembler and consumed by the
//! machine loader.
//!
//! The paper's tool flow "directly generates the machine object code, ready
//! to be executed in the architecture" (§5.1). An [`Object`] bundles
//! everything a Systolic Ring needs to start computing:
//!
//! * the controller program (`code`) and initial data memory (`data`),
//! * fabric preload records — initial configuration-context contents,
//!   Dnode modes and local-sequencer programs — applied before cycle 0,
//! * the ring geometry and context count the program was assembled for.
//!
//! The serialized form is a small little-endian binary container (magic
//! `SRNGOBJ1`).

use std::fmt;

use crate::geometry::RingGeometry;

/// Magic bytes opening every serialized object.
pub const MAGIC: [u8; 8] = *b"SRNGOBJ1";

/// One fabric-preload action, applied in order before the machine starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preload {
    /// Set `contexts[ctx][dnode]` to a microinstruction word.
    DnodeInstr {
        /// Target configuration context.
        ctx: u16,
        /// Target Dnode (flat index).
        dnode: u16,
        /// Encoded microinstruction ([`crate::dnode::MicroInstr::encode`]).
        word: u64,
    },
    /// Set a switch crossbar port in `ctx`.
    SwitchPort {
        /// Target configuration context.
        ctx: u16,
        /// Switch index.
        switch: u16,
        /// Downstream lane.
        lane: u16,
        /// Input port: 0 = `In1`, 1 = `In2`, 2 = `Fifo1`, 3 = `Fifo2`.
        input: u8,
        /// Encoded port source ([`crate::switch::PortSource::encode`]).
        word: u32,
    },
    /// Set one of a switch's host-output capture selectors in `ctx`.
    HostCapture {
        /// Target configuration context.
        ctx: u16,
        /// Switch index.
        switch: u16,
        /// Host-output port within the switch (a switch has `width` of
        /// them).
        port: u16,
        /// Encoded capture selector ([`crate::switch::HostCapture::encode`]).
        word: u32,
    },
    /// Set a Dnode's execution mode.
    Mode {
        /// Target Dnode (flat index).
        dnode: u16,
        /// `true` for local (stand-alone) mode.
        local: bool,
    },
    /// Write a local-sequencer slot.
    LocalSlot {
        /// Target Dnode (flat index).
        dnode: u16,
        /// Sequencer slot (0..8, i.e. `S1..S8`).
        slot: u8,
        /// Encoded microinstruction.
        word: u64,
    },
    /// Set a Dnode's sequencer limit (1..=8).
    LocalLimit {
        /// Target Dnode (flat index).
        dnode: u16,
        /// New limit.
        limit: u8,
    },
}

/// A complete loadable program for one Systolic Ring instance.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Object {
    /// Ring geometry the program was assembled for, if declared.
    pub geometry: Option<RingGeometry>,
    /// Number of configuration contexts the program expects (0 = default).
    pub contexts: u16,
    /// Controller program (encoded [`crate::ctrl::CtrlInstr`] words).
    pub code: Vec<u32>,
    /// Initial controller data memory.
    pub data: Vec<u32>,
    /// Fabric preload records, applied in order at load time.
    pub preload: Vec<Preload>,
}

/// Error deserializing an [`Object`].
///
/// Every rejection maps to exactly one variant, each with a stable
/// grep-able code (see [`ObjectError::code`]) that prefixes its `Display`
/// rendering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjectError {
    /// Input does not start with [`MAGIC`].
    BadMagic,
    /// Input ended before the declared contents.
    Truncated,
    /// Unknown preload record tag.
    BadRecordTag(u8),
    /// Declared geometry is invalid.
    BadGeometry {
        /// Declared layer count.
        layers: u16,
        /// Declared width.
        width: u16,
    },
    /// Trailing bytes after the declared contents.
    TrailingBytes(usize),
    /// The reserved header field is not zero (future format revision?).
    ReservedHeader(u16),
    /// A `Mode` record carries a byte other than 0 or 1.
    BadModeByte(u8),
    /// A `LocalSlot` record names a slot outside `0..8`.
    BadSlot(u8),
    /// A `LocalLimit` record carries a limit outside `1..=8`.
    BadLimit(u8),
    /// A record's encoded configuration word fails to decode.
    BadConfigWord {
        /// The record tag the word belongs to.
        tag: u8,
        /// The offending word (zero-extended to 64 bits).
        word: u64,
    },
}

impl ObjectError {
    /// Stable grep-able code for this error class (`SR-O001`..).
    pub const fn code(&self) -> &'static str {
        match self {
            ObjectError::BadMagic => "SR-O001",
            ObjectError::Truncated => "SR-O002",
            ObjectError::BadRecordTag(_) => "SR-O003",
            ObjectError::BadGeometry { .. } => "SR-O004",
            ObjectError::TrailingBytes(_) => "SR-O005",
            ObjectError::ReservedHeader(_) => "SR-O006",
            ObjectError::BadModeByte(_) => "SR-O007",
            ObjectError::BadSlot(_) => "SR-O008",
            ObjectError::BadLimit(_) => "SR-O009",
            ObjectError::BadConfigWord { .. } => "SR-O010",
        }
    }
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.code())?;
        match self {
            ObjectError::BadMagic => f.write_str("not a systolic-ring object (bad magic)"),
            ObjectError::Truncated => f.write_str("object truncated"),
            ObjectError::BadRecordTag(tag) => write!(f, "unknown preload record tag {tag}"),
            ObjectError::BadGeometry { layers, width } => {
                write!(f, "invalid declared geometry {layers}x{width}")
            }
            ObjectError::TrailingBytes(n) => write!(f, "{n} trailing bytes after object"),
            ObjectError::ReservedHeader(v) => {
                write!(f, "reserved header field is {v:#06x}, expected 0")
            }
            ObjectError::BadModeByte(b) => write!(f, "mode byte {b} is neither 0 nor 1"),
            ObjectError::BadSlot(s) => write!(f, "local-sequencer slot {s} outside 0..8"),
            ObjectError::BadLimit(l) => write!(f, "sequencer limit {l} outside 1..=8"),
            ObjectError::BadConfigWord { tag, word } => {
                write!(f, "record tag {tag} carries undecodable word {word:#x}")
            }
        }
    }
}

impl std::error::Error for ObjectError {}

const TAG_DNODE_INSTR: u8 = 1;
const TAG_SWITCH_PORT: u8 = 2;
const TAG_HOST_CAPTURE: u8 = 3;
const TAG_MODE: u8 = 4;
const TAG_LOCAL_SLOT: u8 = 5;
const TAG_LOCAL_LIMIT: u8 = 6;

/// Rejects microinstruction words the Dnode decoder would refuse.
fn check_micro_word(tag: u8, word: u64) -> Result<(), ObjectError> {
    match crate::dnode::MicroInstr::decode(word) {
        Ok(_) => Ok(()),
        Err(_) => Err(ObjectError::BadConfigWord { tag, word }),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ObjectError> {
        if self.pos + n > self.bytes.len() {
            return Err(ObjectError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ObjectError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ObjectError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ObjectError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ObjectError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl Object {
    /// Creates an empty object (no geometry, no code).
    pub fn new() -> Self {
        Object::default()
    }

    /// Serializes to the binary container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.code.len() * 4 + self.data.len() * 4);
        out.extend_from_slice(&MAGIC);
        let (layers, width) = match self.geometry {
            Some(g) => (g.layers() as u16, g.width() as u16),
            None => (0, 0),
        };
        out.extend_from_slice(&layers.to_le_bytes());
        out.extend_from_slice(&width.to_le_bytes());
        out.extend_from_slice(&self.contexts.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(self.code.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.preload.len() as u32).to_le_bytes());
        for word in &self.code {
            out.extend_from_slice(&word.to_le_bytes());
        }
        for word in &self.data {
            out.extend_from_slice(&word.to_le_bytes());
        }
        for record in &self.preload {
            match *record {
                Preload::DnodeInstr { ctx, dnode, word } => {
                    out.push(TAG_DNODE_INSTR);
                    out.extend_from_slice(&ctx.to_le_bytes());
                    out.extend_from_slice(&dnode.to_le_bytes());
                    out.extend_from_slice(&word.to_le_bytes());
                }
                Preload::SwitchPort {
                    ctx,
                    switch,
                    lane,
                    input,
                    word,
                } => {
                    out.push(TAG_SWITCH_PORT);
                    out.extend_from_slice(&ctx.to_le_bytes());
                    out.extend_from_slice(&switch.to_le_bytes());
                    out.extend_from_slice(&lane.to_le_bytes());
                    out.push(input);
                    out.extend_from_slice(&word.to_le_bytes());
                }
                Preload::HostCapture {
                    ctx,
                    switch,
                    port,
                    word,
                } => {
                    out.push(TAG_HOST_CAPTURE);
                    out.extend_from_slice(&ctx.to_le_bytes());
                    out.extend_from_slice(&switch.to_le_bytes());
                    out.extend_from_slice(&port.to_le_bytes());
                    out.extend_from_slice(&word.to_le_bytes());
                }
                Preload::Mode { dnode, local } => {
                    out.push(TAG_MODE);
                    out.extend_from_slice(&dnode.to_le_bytes());
                    out.push(local as u8);
                }
                Preload::LocalSlot { dnode, slot, word } => {
                    out.push(TAG_LOCAL_SLOT);
                    out.extend_from_slice(&dnode.to_le_bytes());
                    out.push(slot);
                    out.extend_from_slice(&word.to_le_bytes());
                }
                Preload::LocalLimit { dnode, limit } => {
                    out.push(TAG_LOCAL_LIMIT);
                    out.extend_from_slice(&dnode.to_le_bytes());
                    out.push(limit);
                }
            }
        }
        out
    }

    /// Deserializes from the binary container format.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectError`] if the input is not a well-formed container.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ObjectError> {
        let mut cur = Cursor { bytes, pos: 0 };
        if cur.take(8)? != MAGIC {
            return Err(ObjectError::BadMagic);
        }
        let layers = cur.u16()?;
        let width = cur.u16()?;
        let contexts = cur.u16()?;
        let reserved = cur.u16()?;
        if reserved != 0 {
            return Err(ObjectError::ReservedHeader(reserved));
        }
        let geometry = if layers == 0 && width == 0 {
            None
        } else {
            Some(
                RingGeometry::new(layers as usize, width as usize)
                    .map_err(|_| ObjectError::BadGeometry { layers, width })?,
            )
        };
        let code_len = cur.u32()? as usize;
        let data_len = cur.u32()? as usize;
        let preload_len = cur.u32()? as usize;
        let mut code = Vec::with_capacity(code_len.min(1 << 20));
        for _ in 0..code_len {
            code.push(cur.u32()?);
        }
        let mut data = Vec::with_capacity(data_len.min(1 << 20));
        for _ in 0..data_len {
            data.push(cur.u32()?);
        }
        let mut preload = Vec::with_capacity(preload_len.min(1 << 20));
        for _ in 0..preload_len {
            let tag = cur.u8()?;
            let record = match tag {
                TAG_DNODE_INSTR => {
                    let (ctx, dnode, word) = (cur.u16()?, cur.u16()?, cur.u64()?);
                    check_micro_word(tag, word)?;
                    Preload::DnodeInstr { ctx, dnode, word }
                }
                TAG_SWITCH_PORT => {
                    let (ctx, switch, lane, input, word) =
                        (cur.u16()?, cur.u16()?, cur.u16()?, cur.u8()?, cur.u32()?);
                    if crate::switch::PortSource::decode(word).is_err() {
                        return Err(ObjectError::BadConfigWord {
                            tag,
                            word: word.into(),
                        });
                    }
                    Preload::SwitchPort {
                        ctx,
                        switch,
                        lane,
                        input,
                        word,
                    }
                }
                TAG_HOST_CAPTURE => {
                    let (ctx, switch, port, word) =
                        (cur.u16()?, cur.u16()?, cur.u16()?, cur.u32()?);
                    if crate::switch::HostCapture::decode(word).is_err() {
                        return Err(ObjectError::BadConfigWord {
                            tag,
                            word: word.into(),
                        });
                    }
                    Preload::HostCapture {
                        ctx,
                        switch,
                        port,
                        word,
                    }
                }
                TAG_MODE => {
                    let (dnode, mode) = (cur.u16()?, cur.u8()?);
                    if mode > 1 {
                        return Err(ObjectError::BadModeByte(mode));
                    }
                    Preload::Mode {
                        dnode,
                        local: mode != 0,
                    }
                }
                TAG_LOCAL_SLOT => {
                    let (dnode, slot, word) = (cur.u16()?, cur.u8()?, cur.u64()?);
                    if slot as usize >= crate::dnode::LOCAL_SLOTS {
                        return Err(ObjectError::BadSlot(slot));
                    }
                    check_micro_word(tag, word)?;
                    Preload::LocalSlot { dnode, slot, word }
                }
                TAG_LOCAL_LIMIT => {
                    let (dnode, limit) = (cur.u16()?, cur.u8()?);
                    if !(1..=crate::dnode::LOCAL_SLOTS as u8).contains(&limit) {
                        return Err(ObjectError::BadLimit(limit));
                    }
                    Preload::LocalLimit { dnode, limit }
                }
                other => return Err(ObjectError::BadRecordTag(other)),
            };
            preload.push(record);
        }
        if cur.pos != bytes.len() {
            return Err(ObjectError::TrailingBytes(bytes.len() - cur.pos));
        }
        Ok(Object {
            geometry,
            contexts,
            code,
            data,
            preload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnode::{AluOp, MicroInstr, Operand};
    use crate::switch::{HostCapture, PortSource};

    fn sample() -> Object {
        let micro = MicroInstr::op(AluOp::Add, Operand::In1, Operand::In2)
            .write_out()
            .encode();
        Object {
            geometry: Some(RingGeometry::RING_8),
            contexts: 4,
            code: vec![0xdead_beef, 0x0123_4567, 0],
            data: vec![42, 0xffff_ffff],
            preload: vec![
                Preload::DnodeInstr {
                    ctx: 0,
                    dnode: 3,
                    word: micro,
                },
                Preload::SwitchPort {
                    ctx: 1,
                    switch: 2,
                    lane: 0,
                    input: 1,
                    word: PortSource::PrevOut { lane: 1 }.encode(),
                },
                Preload::HostCapture {
                    ctx: 0,
                    switch: 3,
                    port: 1,
                    word: HostCapture::lane(0).encode(),
                },
                Preload::Mode {
                    dnode: 7,
                    local: true,
                },
                Preload::LocalSlot {
                    dnode: 7,
                    slot: 2,
                    word: micro,
                },
                Preload::LocalLimit { dnode: 7, limit: 3 },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let obj = sample();
        let bytes = obj.to_bytes();
        assert_eq!(Object::from_bytes(&bytes).unwrap(), obj);
    }

    #[test]
    fn empty_object_round_trips() {
        let obj = Object::new();
        assert_eq!(Object::from_bytes(&obj.to_bytes()).unwrap(), obj);
        assert_eq!(obj.geometry, None);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Object::from_bytes(&bytes), Err(ObjectError::BadMagic));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            let err = Object::from_bytes(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, ObjectError::Truncated | ObjectError::BadMagic),
                "unexpected error at len {len}: {err}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(
            Object::from_bytes(&bytes),
            Err(ObjectError::TrailingBytes(1))
        );
    }

    #[test]
    fn rejects_bad_record_tag() {
        let mut obj = Object::new();
        obj.preload.push(Preload::Mode {
            dnode: 0,
            local: false,
        });
        let mut bytes = obj.to_bytes();
        // The record tag is the first byte after the 28-byte header.
        let tag_pos = 8 + 8 + 12;
        assert_eq!(bytes[tag_pos], TAG_MODE);
        bytes[tag_pos] = 99;
        assert_eq!(
            Object::from_bytes(&bytes),
            Err(ObjectError::BadRecordTag(99))
        );
    }

    #[test]
    fn rejects_reserved_header() {
        let mut bytes = Object::new().to_bytes();
        bytes[14] = 0xaa;
        assert_eq!(
            Object::from_bytes(&bytes),
            Err(ObjectError::ReservedHeader(0x00aa))
        );
    }

    #[test]
    fn rejects_bad_mode_byte() {
        let mut obj = Object::new();
        obj.preload.push(Preload::Mode {
            dnode: 0,
            local: true,
        });
        let mut bytes = obj.to_bytes();
        *bytes.last_mut().unwrap() = 2;
        assert_eq!(Object::from_bytes(&bytes), Err(ObjectError::BadModeByte(2)));
    }

    #[test]
    fn rejects_bad_slot_and_limit() {
        let mut obj = Object::new();
        obj.preload.push(Preload::LocalLimit { dnode: 0, limit: 9 });
        assert_eq!(
            Object::from_bytes(&obj.to_bytes()),
            Err(ObjectError::BadLimit(9))
        );
        obj.preload.clear();
        obj.preload.push(Preload::LocalSlot {
            dnode: 0,
            slot: 8,
            word: MicroInstr::NOP.encode(),
        });
        assert_eq!(
            Object::from_bytes(&obj.to_bytes()),
            Err(ObjectError::BadSlot(8))
        );
    }

    #[test]
    fn rejects_undecodable_config_words() {
        let mut obj = Object::new();
        obj.preload.push(Preload::DnodeInstr {
            ctx: 0,
            dnode: 0,
            word: u64::MAX,
        });
        assert_eq!(
            Object::from_bytes(&obj.to_bytes()),
            Err(ObjectError::BadConfigWord {
                tag: TAG_DNODE_INSTR,
                word: u64::MAX,
            })
        );
        obj.preload.clear();
        obj.preload.push(Preload::SwitchPort {
            ctx: 0,
            switch: 0,
            lane: 0,
            input: 0,
            word: u32::MAX,
        });
        assert_eq!(
            Object::from_bytes(&obj.to_bytes()),
            Err(ObjectError::BadConfigWord {
                tag: TAG_SWITCH_PORT,
                word: u64::from(u32::MAX),
            })
        );
    }

    #[test]
    fn error_codes_are_stable_and_prefixed() {
        let errors = [
            ObjectError::BadMagic,
            ObjectError::Truncated,
            ObjectError::BadRecordTag(9),
            ObjectError::BadGeometry {
                layers: 1,
                width: 1,
            },
            ObjectError::TrailingBytes(3),
            ObjectError::ReservedHeader(1),
            ObjectError::BadModeByte(2),
            ObjectError::BadSlot(8),
            ObjectError::BadLimit(0),
            ObjectError::BadConfigWord { tag: 1, word: 0 },
        ];
        let mut codes: Vec<&str> = errors.iter().map(|e| e.code()).collect();
        for (err, code) in errors.iter().zip(&codes) {
            assert!(err.to_string().starts_with(&format!("{code}: ")), "{err}");
        }
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len(), "codes must be distinct");
    }

    #[test]
    fn rejects_invalid_geometry() {
        let mut bytes = Object::new().to_bytes();
        // layers = 1 (invalid), width = 4.
        bytes[8..10].copy_from_slice(&1u16.to_le_bytes());
        bytes[10..12].copy_from_slice(&4u16.to_le_bytes());
        assert_eq!(
            Object::from_bytes(&bytes),
            Err(ObjectError::BadGeometry {
                layers: 1,
                width: 4
            })
        );
    }
}
