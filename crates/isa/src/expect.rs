//! Embedded conformance expectations for assembled programs.
//!
//! A program source may carry `;!` directive comments describing how the
//! program is to be exercised and judged: which host input streams to
//! attach, which sink streams to check, a simulated-cycle budget and the
//! execution tiers it must agree on. The assembler's directive front end
//! (`systolic-ring-asm`) parses those comments into an [`Expectations`]
//! value carried alongside the [`Object`](crate::object::Object); the
//! conformance runner (`systolic-ring-harness`) consumes it. This module
//! is only the carrier — it owns no parsing and no execution.

/// One execution tier of the simulator.
///
/// The tiers are *architecturally identical* — same outputs, same cycle
/// counts — and differ only in how instruction execution is implemented
/// internally. That identity is exactly what the conformance runner
/// checks (bit-equal sink streams, equal cycle counts across tiers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Interpret raw configuration words every cycle (decode cache and
    /// fused engine both disabled).
    Slow,
    /// Use the decoded-configuration cache, but never enter fused bursts.
    Decoded,
    /// Full paper-faithful fast path: decode cache plus the fused
    /// steady-state engine.
    Fused,
    /// Everything in `Fused` plus the ahead-of-time multi-phase superblock
    /// cache: steady windows are precompiled at object-load time and
    /// re-entered by configuration content, with no per-reconfiguration
    /// deoptimization.
    Aot,
}

impl Tier {
    /// All tiers, in canonical (slowest-first) order.
    pub const ALL: [Tier; 4] = [Tier::Slow, Tier::Decoded, Tier::Fused, Tier::Aot];

    /// The tier's lower-case name as used by `;! tiers` directives.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Slow => "slow",
            Tier::Decoded => "decoded",
            Tier::Fused => "fused",
            Tier::Aot => "aot",
        }
    }

    /// Parses a lower-case tier name (`slow` / `decoded` / `fused` /
    /// `aot`).
    pub fn parse(name: &str) -> Option<Tier> {
        match name {
            "slow" => Some(Tier::Slow),
            "decoded" => Some(Tier::Decoded),
            "fused" => Some(Tier::Fused),
            "aot" => Some(Tier::Aot),
            _ => None,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One host input stream bound by a `;! input S.P = ...` directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputVector {
    /// Switch index of the host-in port.
    pub switch: usize,
    /// Port index at that switch.
    pub port: usize,
    /// Words delivered in order, one per cycle while available.
    pub words: Vec<i16>,
}

/// How a [`SinkExpectation`] judges the drained sink stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkMatch {
    /// The drained stream must equal the expected values exactly.
    ///
    /// Captures push the selected lane's output *every* cycle (warm-up
    /// values and held outputs included), so exact matching is only
    /// practical for carefully staged streams; most programs use
    /// [`SinkMatch::Contains`].
    Exact,
    /// The expected values must appear in the drained stream in order
    /// (as an ordered subsequence, not necessarily contiguous).
    Contains,
}

/// One sink check bound by a `;! expect S.P = ...` or
/// `;! expect S.P contains ...` directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SinkExpectation {
    /// Switch index of the host-out port.
    pub switch: usize,
    /// Port index at that switch.
    pub port: usize,
    /// Matching discipline.
    pub matcher: SinkMatch,
    /// The expected values.
    pub values: Vec<i16>,
}

impl SinkExpectation {
    /// Judges a drained sink stream against this expectation.
    pub fn check(&self, stream: &[i16]) -> bool {
        match self.matcher {
            SinkMatch::Exact => stream == self.values.as_slice(),
            SinkMatch::Contains => {
                let mut want = self.values.iter();
                let mut next = want.next();
                for &got in stream {
                    match next {
                        Some(&v) if v == got => next = want.next(),
                        Some(_) => {}
                        None => break,
                    }
                }
                next.is_none()
            }
        }
    }
}

/// The complete expectation block parsed from one program source.
///
/// `Default` is the empty block: no inputs, no sink checks, no budget, and
/// an unspecified tier list (which [`Expectations::effective_tiers`]
/// resolves to every tier).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Expectations {
    /// Host input streams to attach before running.
    pub inputs: Vec<InputVector>,
    /// Sink checks to apply after the run.
    pub sinks: Vec<SinkExpectation>,
    /// Upper bound on simulated cycles (`;! cycles <= N`).
    pub cycle_budget: Option<u64>,
    /// Tiers named by a `;! tiers` directive; empty means unspecified.
    pub tiers: Vec<Tier>,
}

impl Expectations {
    /// `true` when no directive contributed anything.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
            && self.sinks.is_empty()
            && self.cycle_budget.is_none()
            && self.tiers.is_empty()
    }

    /// The tiers the program must pass on: the declared list, or all
    /// of them when no `;! tiers` directive was given.
    pub fn effective_tiers(&self) -> &[Tier] {
        if self.tiers.is_empty() {
            &Tier::ALL
        } else {
            &self.tiers
        }
    }

    /// The distinct `(switch, port)` sinks named by the expectations, in
    /// first-appearance order.
    pub fn sink_ports(&self) -> Vec<(usize, usize)> {
        let mut ports = Vec::new();
        for sink in &self.sinks {
            if !ports.contains(&(sink.switch, sink.port)) {
                ports.push((sink.switch, sink.port));
            }
        }
        ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expect(matcher: SinkMatch, values: &[i16]) -> SinkExpectation {
        SinkExpectation {
            switch: 1,
            port: 0,
            matcher,
            values: values.to_vec(),
        }
    }

    #[test]
    fn exact_matching_is_literal() {
        let e = expect(SinkMatch::Exact, &[1, 2, 3]);
        assert!(e.check(&[1, 2, 3]));
        assert!(!e.check(&[1, 2, 3, 0]));
        assert!(!e.check(&[0, 1, 2, 3]));
    }

    #[test]
    fn contains_matches_ordered_subsequences() {
        let e = expect(SinkMatch::Contains, &[3, 4, 10]);
        assert!(e.check(&[0, 3, 3, 4, 0, 10, 0]));
        assert!(e.check(&[3, 4, 10]));
        assert!(!e.check(&[4, 3, 10]), "order matters");
        assert!(!e.check(&[3, 4]), "all values required");
        assert!(expect(SinkMatch::Contains, &[]).check(&[]));
    }

    #[test]
    fn contains_consumes_duplicates_in_order() {
        let e = expect(SinkMatch::Contains, &[9, 9, 13]);
        assert!(e.check(&[2, 9, 0, 9, 13]));
        assert!(!e.check(&[2, 9, 13]), "each duplicate needs its own match");
    }

    #[test]
    fn tier_names_round_trip() {
        for tier in Tier::ALL {
            assert_eq!(Tier::parse(tier.name()), Some(tier));
        }
        assert_eq!(Tier::parse("warp"), None);
    }

    #[test]
    fn effective_tiers_defaults_to_all() {
        let mut e = Expectations::default();
        assert!(e.is_empty());
        assert_eq!(e.effective_tiers(), &Tier::ALL);
        e.tiers = vec![Tier::Fused];
        assert_eq!(e.effective_tiers(), &[Tier::Fused]);
    }

    #[test]
    fn sink_ports_deduplicate_in_order() {
        let e = Expectations {
            sinks: vec![
                expect(SinkMatch::Contains, &[1]),
                SinkExpectation {
                    switch: 2,
                    port: 1,
                    matcher: SinkMatch::Contains,
                    values: vec![2],
                },
                expect(SinkMatch::Contains, &[3]),
            ],
            ..Expectations::default()
        };
        assert_eq!(e.sink_ports(), vec![(1, 0), (2, 1)]);
    }
}
