//! The 16-bit machine word of the Systolic Ring datapath.
//!
//! The paper specifies a 16-bit ALU with a hardwired multiplier in every
//! Dnode. All datapath values — register file contents, switch ports,
//! feedback-pipeline stages, the shared bus — carry this word type.
//!
//! Arithmetic follows DSP conventions:
//! * plain add/sub/mul wrap (two's complement),
//! * explicit saturating variants are provided as distinct operations,
//! * `abs` and `abs_diff` saturate (|i16::MIN| is not representable).

use std::fmt;

/// A 16-bit two's-complement machine word.
///
/// `Word16` is a transparent wrapper over the raw bit pattern; signed and
/// unsigned views are provided by [`Word16::as_i16`] and [`Word16::bits`].
///
/// # Examples
///
/// ```
/// use systolic_ring_isa::Word16;
///
/// let a = Word16::from_i16(-3);
/// let b = Word16::from_i16(5);
/// assert_eq!(a.wrapping_add(b).as_i16(), 2);
/// assert_eq!(a.abs_diff(b).as_i16(), 8);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Word16(u16);

impl Word16 {
    /// The all-zero word.
    pub const ZERO: Word16 = Word16(0);
    /// The word with value one.
    pub const ONE: Word16 = Word16(1);
    /// Most positive signed value (`0x7fff`).
    pub const SIGNED_MAX: Word16 = Word16(i16::MAX as u16);
    /// Most negative signed value (`0x8000`).
    pub const SIGNED_MIN: Word16 = Word16(i16::MIN as u16);
    /// All bits set (`0xffff`, i.e. -1 signed / 65535 unsigned).
    pub const ALL_ONES: Word16 = Word16(u16::MAX);

    /// Creates a word from its raw bit pattern.
    #[inline]
    pub const fn new(bits: u16) -> Self {
        Word16(bits)
    }

    /// Creates a word from a signed value.
    #[inline]
    pub const fn from_i16(value: i16) -> Self {
        Word16(value as u16)
    }

    /// Returns the raw bit pattern (unsigned view).
    #[inline]
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Returns the signed (two's complement) view.
    #[inline]
    pub const fn as_i16(self) -> i16 {
        self.0 as i16
    }

    /// Wrapping (modular) addition.
    #[inline]
    pub const fn wrapping_add(self, rhs: Word16) -> Word16 {
        Word16(self.0.wrapping_add(rhs.0))
    }

    /// Wrapping (modular) subtraction.
    #[inline]
    pub const fn wrapping_sub(self, rhs: Word16) -> Word16 {
        Word16(self.0.wrapping_sub(rhs.0))
    }

    /// Wrapping two's-complement negation.
    #[inline]
    pub const fn wrapping_neg(self) -> Word16 {
        Word16(self.0.wrapping_neg())
    }

    /// Signed saturating addition (clamps to `i16::MIN..=i16::MAX`).
    #[inline]
    pub const fn saturating_add(self, rhs: Word16) -> Word16 {
        Word16(self.as_i16().saturating_add(rhs.as_i16()) as u16)
    }

    /// Signed saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: Word16) -> Word16 {
        Word16(self.as_i16().saturating_sub(rhs.as_i16()) as u16)
    }

    /// Full 16x16 -> 32-bit signed product.
    #[inline]
    pub const fn widening_mul(self, rhs: Word16) -> i32 {
        self.as_i16() as i32 * rhs.as_i16() as i32
    }

    /// Low 16 bits of the product (identical for signed and unsigned).
    #[inline]
    pub const fn mul_lo(self, rhs: Word16) -> Word16 {
        Word16(self.0.wrapping_mul(rhs.0))
    }

    /// High 16 bits of the signed 16x16 -> 32 product.
    #[inline]
    pub const fn mul_hi(self, rhs: Word16) -> Word16 {
        Word16((self.widening_mul(rhs) >> 16) as u16)
    }

    /// High 16 bits of the unsigned 16x16 -> 32 product.
    #[inline]
    pub const fn mul_hi_unsigned(self, rhs: Word16) -> Word16 {
        Word16(((self.0 as u32 * rhs.0 as u32) >> 16) as u16)
    }

    /// Saturating signed absolute value (`|i16::MIN|` clamps to `i16::MAX`).
    #[inline]
    pub const fn abs(self) -> Word16 {
        let v = self.as_i16();
        if v == i16::MIN {
            Word16::SIGNED_MAX
        } else {
            Word16(v.unsigned_abs())
        }
    }

    /// Saturating signed absolute difference `|a - b|`.
    ///
    /// The difference is computed exactly (in 32 bits) and then clamped, so
    /// `abs_diff` never wraps — this matches media-ALU behaviour and is the
    /// primitive the motion-estimation kernel builds SAD from.
    #[inline]
    pub const fn abs_diff(self, rhs: Word16) -> Word16 {
        let d = self.as_i16() as i32 - rhs.as_i16() as i32;
        let d = if d < 0 { -d } else { d };
        if d > i16::MAX as i32 {
            Word16::SIGNED_MAX
        } else {
            Word16(d as u16)
        }
    }

    /// Signed minimum.
    #[inline]
    pub const fn min_s(self, rhs: Word16) -> Word16 {
        if self.as_i16() <= rhs.as_i16() {
            self
        } else {
            rhs
        }
    }

    /// Signed maximum.
    #[inline]
    pub const fn max_s(self, rhs: Word16) -> Word16 {
        if self.as_i16() >= rhs.as_i16() {
            self
        } else {
            rhs
        }
    }

    /// Unsigned minimum.
    #[inline]
    pub const fn min_u(self, rhs: Word16) -> Word16 {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Unsigned maximum.
    #[inline]
    pub const fn max_u(self, rhs: Word16) -> Word16 {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Logical left shift by `rhs & 15`.
    #[inline]
    pub const fn shl(self, rhs: Word16) -> Word16 {
        Word16(self.0 << (rhs.0 & 15))
    }

    /// Logical right shift by `rhs & 15`.
    #[inline]
    pub const fn shr(self, rhs: Word16) -> Word16 {
        Word16(self.0 >> (rhs.0 & 15))
    }

    /// Arithmetic (sign-extending) right shift by `rhs & 15`.
    #[inline]
    pub const fn asr(self, rhs: Word16) -> Word16 {
        Word16((self.as_i16() >> (rhs.0 & 15)) as u16)
    }

    /// Signed set-less-than: `1` if `self < rhs`, else `0`.
    #[inline]
    pub const fn slt(self, rhs: Word16) -> Word16 {
        if self.as_i16() < rhs.as_i16() {
            Word16::ONE
        } else {
            Word16::ZERO
        }
    }

    /// Unsigned set-less-than: `1` if `self < rhs`, else `0`.
    #[inline]
    pub const fn sltu(self, rhs: Word16) -> Word16 {
        if self.0 < rhs.0 {
            Word16::ONE
        } else {
            Word16::ZERO
        }
    }

    /// Bitwise AND.
    #[inline]
    pub const fn and(self, rhs: Word16) -> Word16 {
        Word16(self.0 & rhs.0)
    }

    /// Bitwise OR.
    #[inline]
    pub const fn or(self, rhs: Word16) -> Word16 {
        Word16(self.0 | rhs.0)
    }

    /// Bitwise XOR.
    #[inline]
    pub const fn xor(self, rhs: Word16) -> Word16 {
        Word16(self.0 ^ rhs.0)
    }

    /// Bitwise NOT.
    #[inline]
    pub const fn not(self) -> Word16 {
        Word16(!self.0)
    }

    /// `true` if all bits are zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl From<u16> for Word16 {
    fn from(bits: u16) -> Self {
        Word16(bits)
    }
}

impl From<i16> for Word16 {
    fn from(value: i16) -> Self {
        Word16::from_i16(value)
    }
}

impl From<Word16> for u16 {
    fn from(word: Word16) -> Self {
        word.0
    }
}

impl From<Word16> for i16 {
    fn from(word: Word16) -> Self {
        word.as_i16()
    }
}

impl fmt::Debug for Word16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word16({:#06x} = {})", self.0, self.as_i16())
    }
}

impl fmt::Display for Word16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.as_i16(), f)
    }
}

impl fmt::LowerHex for Word16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Word16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Word16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Word16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_add_wraps_at_modulus() {
        assert_eq!(Word16::new(0xffff).wrapping_add(Word16::ONE), Word16::ZERO);
        assert_eq!(
            Word16::SIGNED_MAX.wrapping_add(Word16::ONE),
            Word16::SIGNED_MIN
        );
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(
            Word16::SIGNED_MAX.saturating_add(Word16::ONE),
            Word16::SIGNED_MAX
        );
        assert_eq!(
            Word16::SIGNED_MIN.saturating_add(Word16::from_i16(-1)),
            Word16::SIGNED_MIN
        );
        assert_eq!(
            Word16::from_i16(100).saturating_add(Word16::from_i16(-30)),
            Word16::from_i16(70)
        );
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            Word16::SIGNED_MIN.saturating_sub(Word16::ONE),
            Word16::SIGNED_MIN
        );
        assert_eq!(
            Word16::SIGNED_MAX.saturating_sub(Word16::from_i16(-1)),
            Word16::SIGNED_MAX
        );
    }

    #[test]
    fn abs_saturates_at_signed_min() {
        assert_eq!(Word16::SIGNED_MIN.abs(), Word16::SIGNED_MAX);
        assert_eq!(Word16::from_i16(-5).abs(), Word16::from_i16(5));
        assert_eq!(Word16::from_i16(5).abs(), Word16::from_i16(5));
    }

    #[test]
    fn abs_diff_is_symmetric_and_saturates() {
        let a = Word16::from_i16(-30000);
        let b = Word16::from_i16(30000);
        assert_eq!(a.abs_diff(b), Word16::SIGNED_MAX);
        assert_eq!(b.abs_diff(a), Word16::SIGNED_MAX);
        assert_eq!(
            Word16::from_i16(7).abs_diff(Word16::from_i16(12)),
            Word16::from_i16(5)
        );
    }

    #[test]
    fn multiplier_views() {
        let a = Word16::from_i16(-300);
        let b = Word16::from_i16(200);
        assert_eq!(a.widening_mul(b), -60000);
        assert_eq!(a.mul_lo(b).bits(), (-60000i32 as u32 & 0xffff) as u16);
        assert_eq!(
            a.mul_hi(b).bits(),
            ((-60000i32 >> 16) as u32 & 0xffff) as u16
        );
        // Unsigned high half differs from signed high half for negative inputs.
        assert_eq!(
            Word16::new(0xffff).mul_hi_unsigned(Word16::new(2)),
            Word16::new(1)
        );
        assert_eq!(
            Word16::new(0xffff).mul_hi(Word16::new(2)),
            Word16::new(0xffff)
        );
    }

    #[test]
    fn shifts_mask_their_amount() {
        let v = Word16::new(0x8001);
        assert_eq!(v.shl(Word16::new(16)), v);
        assert_eq!(v.shr(Word16::new(17)), Word16::new(0x4000));
        assert_eq!(v.asr(Word16::new(1)), Word16::new(0xc000));
    }

    #[test]
    fn comparisons_signed_vs_unsigned() {
        let minus_one = Word16::from_i16(-1);
        assert_eq!(minus_one.slt(Word16::ZERO), Word16::ONE);
        assert_eq!(minus_one.sltu(Word16::ZERO), Word16::ZERO);
        assert_eq!(minus_one.min_s(Word16::ONE), minus_one);
        assert_eq!(minus_one.min_u(Word16::ONE), Word16::ONE);
        assert_eq!(minus_one.max_u(Word16::ONE), minus_one);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(format!("{}", Word16::from_i16(-2)), "-2");
        assert_eq!(format!("{:x}", Word16::from_i16(-2)), "fffe");
        assert!(format!("{:?}", Word16::ZERO).contains("0x0000"));
        assert_eq!(format!("{:b}", Word16::new(5)), "101");
    }

    #[test]
    fn conversions_round_trip() {
        for v in [-32768i16, -1, 0, 1, 32767] {
            let w = Word16::from(v);
            assert_eq!(i16::from(w), v);
            assert_eq!(u16::from(w), v as u16);
            assert_eq!(Word16::from(v as u16), w);
        }
    }
}
