//! Ring geometry: the layer/width parameterization of the fabric.
//!
//! The paper scales the ring along two axes: the number of Dnode *layers*
//! (the ring length) and the number of Dnodes *per layer* (the width).
//! "Ring-8" is the prototyped 4-layer x 2-wide instance; "Ring-16" runs the
//! evaluation workloads; "Ring-64" is the projected SoC configuration.

use std::fmt;

/// Shape of a Systolic Ring instance.
///
/// A geometry has `layers` Dnode layers of `width` Dnodes each, connected in
/// a ring by `layers` switches (switch `s` feeds layer `s` with the outputs
/// of layer `(s + layers - 1) % layers`).
///
/// # Examples
///
/// ```
/// use systolic_ring_isa::RingGeometry;
///
/// let ring8 = RingGeometry::RING_8;
/// assert_eq!(ring8.dnodes(), 8);
/// assert_eq!(ring8.switches(), 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RingGeometry {
    layers: usize,
    width: usize,
}

/// Error returned when constructing an invalid [`RingGeometry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidGeometry {
    layers: usize,
    width: usize,
}

impl fmt::Display for InvalidGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid ring geometry {}x{}: layers must be in 2..=256 and width in 1..=256",
            self.layers, self.width
        )
    }
}

impl std::error::Error for InvalidGeometry {}

impl RingGeometry {
    /// The prototyped Ring-8: 4 layers of 2 Dnodes.
    pub const RING_8: RingGeometry = RingGeometry {
        layers: 4,
        width: 2,
    };
    /// The evaluation Ring-16: 4 layers of 4 Dnodes.
    pub const RING_16: RingGeometry = RingGeometry {
        layers: 4,
        width: 4,
    };
    /// The projected SoC Ring-64: 8 layers of 8 Dnodes.
    pub const RING_64: RingGeometry = RingGeometry {
        layers: 8,
        width: 8,
    };

    /// Creates a geometry with the given number of layers and per-layer width.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] unless `2 <= layers <= 256` and
    /// `1 <= width <= 256` (a ring needs at least two layers to be a ring,
    /// and the configuration encodings address at most 256 elements per
    /// dimension).
    pub fn new(layers: usize, width: usize) -> Result<Self, InvalidGeometry> {
        if (2..=256).contains(&layers) && (1..=256).contains(&width) {
            Ok(RingGeometry { layers, width })
        } else {
            Err(InvalidGeometry { layers, width })
        }
    }

    /// Number of Dnode layers (ring length).
    #[inline]
    pub const fn layers(self) -> usize {
        self.layers
    }

    /// Number of Dnodes per layer (ring width).
    #[inline]
    pub const fn width(self) -> usize {
        self.width
    }

    /// Total Dnode count (`layers * width`).
    #[inline]
    pub const fn dnodes(self) -> usize {
        self.layers * self.width
    }

    /// Number of inter-layer switches (one per layer boundary; equals
    /// `layers` because the topology is a closed ring).
    #[inline]
    pub const fn switches(self) -> usize {
        self.layers
    }

    /// Flat index of the Dnode at (`layer`, `lane`).
    ///
    /// # Panics
    ///
    /// Panics if `layer >= layers()` or `lane >= width()`.
    #[inline]
    pub fn dnode_index(self, layer: usize, lane: usize) -> usize {
        assert!(layer < self.layers, "layer {layer} out of range");
        assert!(lane < self.width, "lane {lane} out of range");
        layer * self.width + lane
    }

    /// Inverse of [`RingGeometry::dnode_index`]: `(layer, lane)` of a flat index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dnodes()`.
    #[inline]
    pub fn dnode_position(self, index: usize) -> (usize, usize) {
        assert!(index < self.dnodes(), "dnode index {index} out of range");
        (index / self.width, index % self.width)
    }

    /// The layer whose outputs feed switch `switch` (its upstream layer).
    ///
    /// # Panics
    ///
    /// Panics if `switch >= switches()`.
    #[inline]
    pub fn upstream_layer(self, switch: usize) -> usize {
        assert!(switch < self.switches(), "switch {switch} out of range");
        (switch + self.layers - 1) % self.layers
    }

    /// The layer fed by switch `switch` (its downstream layer).
    ///
    /// # Panics
    ///
    /// Panics if `switch >= switches()`.
    #[inline]
    pub fn downstream_layer(self, switch: usize) -> usize {
        assert!(switch < self.switches(), "switch {switch} out of range");
        switch
    }
}

impl fmt::Display for RingGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ring-{} ({} layers x {} wide)",
            self.dnodes(),
            self.layers,
            self.width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_instances_match_the_paper() {
        assert_eq!(RingGeometry::RING_8.dnodes(), 8);
        assert_eq!(RingGeometry::RING_16.dnodes(), 16);
        assert_eq!(RingGeometry::RING_64.dnodes(), 64);
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(RingGeometry::new(1, 4).is_err());
        assert!(RingGeometry::new(0, 4).is_err());
        assert!(RingGeometry::new(4, 0).is_err());
        assert!(RingGeometry::new(257, 1).is_err());
        assert!(RingGeometry::new(4, 257).is_err());
        assert!(RingGeometry::new(2, 1).is_ok());
        assert!(RingGeometry::new(256, 256).is_ok());
    }

    #[test]
    fn index_round_trips() {
        let g = RingGeometry::new(3, 5).unwrap();
        for layer in 0..3 {
            for lane in 0..5 {
                let idx = g.dnode_index(layer, lane);
                assert_eq!(g.dnode_position(idx), (layer, lane));
            }
        }
    }

    #[test]
    fn switch_topology_is_a_closed_ring() {
        let g = RingGeometry::RING_8;
        // Switch 0 feeds layer 0 with the outputs of the last layer.
        assert_eq!(g.upstream_layer(0), 3);
        assert_eq!(g.downstream_layer(0), 0);
        assert_eq!(g.upstream_layer(1), 0);
        assert_eq!(g.downstream_layer(3), 3);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            RingGeometry::RING_8.to_string(),
            "Ring-8 (4 layers x 2 wide)"
        );
    }
}
