//! Static proof manifests: machine-checkable facts about an object that a
//! verifier established *without simulating it*.
//!
//! The `ringverify` passes in `systolic-ring-lint` produce a
//! [`ProofManifest`] per object; the core consumes it to **elide runtime
//! guards** on statically-proven-stable phases (the fused engine's
//! stability window, the AOT tier's content-key re-hash). The manifest
//! lives in this crate — not in the linter — because both producer and
//! consumer must agree on its meaning without depending on each other.
//!
//! A manifest is bound to the exact object bytes it was proven over via
//! [`object_hash`]; the core refuses a manifest whose hash does not match
//! the loaded object, so a stale proof can never weaken a guard.

use crate::object::Object;

/// Seed of the content hash (the 64-bit FNV offset basis).
const HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;
/// Odd multiplier for the per-chunk mix (high bit entropy, as in
/// FxHash-style hashing).
const HASH_MUL: u64 = 0x517c_c1b7_2722_0a95;

/// Hashes an object's canonical byte serialization with a 64-bit
/// xor-rotate-multiply mix over little-endian 8-byte chunks.
///
/// This is the binding key of a [`ProofManifest`]: a proof is valid only
/// for the exact bytes it was derived from. The hash is computed on
/// every `load`, so it processes a word per step rather than a byte (the
/// serialization is self-delimiting, and the length is folded in against
/// zero-padding aliases); it is content binding, not cryptographic.
pub fn object_hash(object: &Object) -> u64 {
    let bytes = object.to_bytes();
    let mut hash = HASH_SEED ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        hash = (hash ^ word).rotate_left(23).wrapping_mul(HASH_MUL);
    }
    let mut tail = [0u8; 8];
    let rest = chunks.remainder();
    tail[..rest.len()].copy_from_slice(rest);
    hash = (hash ^ u64::from_le_bytes(tail))
        .rotate_left(23)
        .wrapping_mul(HASH_MUL);
    hash
}

/// Statically-proven signed range of one Dnode's layer output.
///
/// The hull is over every configuration context the Dnode is programmed
/// in; a dynamic run can never drive the output outside `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutRange {
    /// Flat Dnode index.
    pub dnode: u16,
    /// Inclusive lower bound of the signed output value.
    pub lo: i16,
    /// Inclusive upper bound of the signed output value.
    pub hi: i16,
}

/// Facts a static verifier proved about one object.
///
/// Every field is one-sided: a populated field is a *guarantee*, an empty
/// one (`None`, `false`, missing range) claims nothing. The consumer
/// contract is documented per field; `core` additionally validates
/// [`ProofManifest::object_hash`] against the loaded object before
/// honoring any of them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofManifest {
    /// Content hash of the object bytes the proof was derived from
    /// (see [`object_hash`]).
    pub object_hash: u64,
    /// The controller provably halts on every execution path.
    pub halts: bool,
    /// Upper bound on the cycle at which the controller retires `halt`,
    /// over every execution path. `None` when termination could not be
    /// proven or the bound would be vacuous.
    pub cycle_bound: Option<u64>,
    /// Cycle from which the fabric configuration (including the active
    /// context selection) provably never changes again, on any path.
    /// Guards that re-validate configuration stability after this cycle
    /// may be elided.
    pub config_stable_from: Option<u64>,
    /// No reconfiguration write can race in-flight pipeline data
    /// (`RL-Hxxx` found nothing on a complete walk).
    pub hazard_free: bool,
    /// Proven signed output ranges, one entry per analyzed Dnode
    /// (ascending by index).
    pub out_ranges: Vec<OutRange>,
}

impl ProofManifest {
    /// An empty manifest bound to `object`: proves nothing, but carries
    /// the binding hash.
    pub fn unproven(object: &Object) -> ProofManifest {
        ProofManifest {
            object_hash: object_hash(object),
            halts: false,
            cycle_bound: None,
            config_stable_from: None,
            hazard_free: false,
            out_ranges: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let a = Object::new();
        let mut b = Object::new();
        assert_eq!(object_hash(&a), object_hash(&a));
        b.code.push(0);
        assert_ne!(object_hash(&a), object_hash(&b));
    }

    #[test]
    fn unproven_manifest_claims_nothing() {
        let object = Object::new();
        let m = ProofManifest::unproven(&object);
        assert_eq!(m.object_hash, object_hash(&object));
        assert!(!m.halts && !m.hazard_free);
        assert!(m.cycle_bound.is_none() && m.config_stable_from.is_none());
        assert!(m.out_ranges.is_empty());
    }
}
