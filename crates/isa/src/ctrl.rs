//! The configuration controller's RISC instruction set.
//!
//! The paper uses "a custom RISC core with a dedicated instruction set as
//! configuration controller; its task is to manage dynamically the
//! configuration of the network and also to control the data communications
//! between the reconfigurable core and the host CPU" (§3).
//!
//! This module defines that dedicated ISA: a 32-bit fixed-width, 16-register
//! load/store core extended with configuration-write instructions
//! ([`CtrlInstr::Wdn`], [`CtrlInstr::Wsw`], ...), context selection
//! ([`CtrlInstr::Ctx`]) — the mechanism by which "the configuration
//! controller is able to change up to the entire content of the
//! [configuration layer]" in one cycle — and host/bus transfers.
//!
//! Encoding layout (32-bit word): opcode `[26..32)`, `rd` `[22..26)`,
//! `ra` `[18..22)`, then either a 16-bit immediate in `[0..16)` (I-format)
//! or `rb` in `[0..4)` (R-format); bits `[16..18)` are always zero.

use std::fmt;

/// One of the controller's 16 general-purpose 32-bit registers.
///
/// `r0` is hardwired to zero; `r15` is the link register written by
/// [`CtrlInstr::Jal`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CReg(u8);

impl CReg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: CReg = CReg(0);
    /// The link register `r15`.
    pub const LINK: CReg = CReg(15);

    /// Creates a register reference.
    ///
    /// # Errors
    ///
    /// Returns `None` if `index > 15`.
    pub const fn new(index: u8) -> Option<CReg> {
        if index < 16 {
            Some(CReg(index))
        } else {
            None
        }
    }

    /// The register index (0..=15).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Error decoding a controller instruction word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeCtrlError {
    /// Reserved opcode field.
    Opcode(u8),
    /// Field bits that the instruction does not use were set.
    StrayBits(u32),
}

impl fmt::Display for DecodeCtrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeCtrlError::Opcode(op) => write!(f, "reserved controller opcode {op:#04x}"),
            DecodeCtrlError::StrayBits(w) => {
                write!(f, "stray field bits in controller word {w:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeCtrlError {}

/// A configuration-controller instruction.
///
/// # Examples
///
/// ```
/// use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
///
/// let r1 = CReg::new(1).unwrap();
/// let instr = CtrlInstr::Addi { rd: r1, ra: CReg::ZERO, imm: -5 };
/// assert_eq!(CtrlInstr::decode(instr.encode()).unwrap(), instr);
/// assert_eq!(instr.to_string(), "addi r1, r0, -5");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CtrlInstr {
    /// No operation.
    Nop,
    /// `rd = ra + rb` (wrapping).
    Add {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
    },
    /// `rd = ra - rb` (wrapping).
    Sub {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
    },
    /// `rd = ra & rb`.
    And {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
    },
    /// `rd = ra | rb`.
    Or {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
    },
    /// `rd = ra ^ rb`.
    Xor {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
    },
    /// `rd = ra << (rb & 31)`.
    Sll {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
    },
    /// `rd = ra >> (rb & 31)` (logical).
    Srl {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
    },
    /// `rd = ra >> (rb & 31)` (arithmetic).
    Sra {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
    },
    /// `rd = (ra <s rb) ? 1 : 0`.
    Slt {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
    },
    /// `rd = (ra <u rb) ? 1 : 0`.
    Sltu {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
    },
    /// `rd = ra * rb` (low 32 bits).
    Mul {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
    },
    /// `rd = ra + sext(imm)`.
    Addi {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Immediate operand.
        imm: i16,
    },
    /// `rd = ra & zext(imm)`.
    Andi {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Immediate operand.
        imm: u16,
    },
    /// `rd = ra | zext(imm)`.
    Ori {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Immediate operand.
        imm: u16,
    },
    /// `rd = ra ^ zext(imm)`.
    Xori {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Immediate operand.
        imm: u16,
    },
    /// `rd = (ra <s sext(imm)) ? 1 : 0`.
    Slti {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Immediate operand.
        imm: i16,
    },
    /// `rd = imm << 16`.
    Lui {
        /// Destination register.
        rd: CReg,
        /// Immediate operand.
        imm: u16,
    },
    /// `rd = dmem[ra + sext(imm)]` (word addressed).
    Lw {
        /// Destination register.
        rd: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Immediate operand.
        imm: i16,
    },
    /// `dmem[ra + sext(imm)] = rs` (word addressed).
    Sw {
        /// Source register `rs`.
        rs: CReg,
        /// Source register `ra`.
        ra: CReg,
        /// Immediate operand.
        imm: i16,
    },
    /// Branch if `ra == rb` to `pc + 1 + offset`.
    Beq {
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
        /// Branch offset in words, relative to `pc + 1`.
        offset: i16,
    },
    /// Branch if `ra != rb`.
    Bne {
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
        /// Branch offset in words, relative to `pc + 1`.
        offset: i16,
    },
    /// Branch if `ra <s rb`.
    Blt {
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
        /// Branch offset in words, relative to `pc + 1`.
        offset: i16,
    },
    /// Branch if `ra >=s rb`.
    Bge {
        /// Source register `ra`.
        ra: CReg,
        /// Source register `rb`.
        rb: CReg,
        /// Branch offset in words, relative to `pc + 1`.
        offset: i16,
    },
    /// Jump to absolute word address `target`.
    J {
        /// Absolute word address.
        target: u16,
    },
    /// Jump and link: `r15 = pc + 1; pc = target`.
    Jal {
        /// Absolute word address.
        target: u16,
    },
    /// Jump to the address in `ra`.
    Jr {
        /// Source register `ra`.
        ra: CReg,
    },
    /// Set the 16-bit configuration-immediate register `CIR` (supplies the
    /// immediate field of subsequently written Dnode microinstructions).
    Cimm {
        /// Immediate operand.
        imm: u16,
    },
    /// Select the context written by subsequent `Wdn`/`Wsw`/`Who` writes.
    Wctx {
        /// Context index.
        ctx: u16,
    },
    /// Write Dnode microinstruction: `contexts[WCTX][dnode].instr =
    /// (rs as low 32 bits) | (CIR << 32)`.
    Wdn {
        /// Source register `rs`.
        rs: CReg,
        /// Flat Dnode index.
        dnode: u16,
    },
    /// Write a switch crossbar port: `port` packs
    /// `(switch * width + lane) * 4 + input` where `input` selects
    /// `In1`/`In2`/`Fifo1`/`Fifo2`; the value is `rs` interpreted as a
    /// [`crate::switch::PortSource`] word.
    Wsw {
        /// Source register `rs`.
        rs: CReg,
        /// Flat port index.
        port: u16,
    },
    /// Write a host-output capture selector; `switch` packs
    /// `switch_index << 8 | out_port` and the value is a
    /// [`crate::switch::HostCapture`] word.
    Who {
        /// Source register `rs`.
        rs: CReg,
        /// Packed `switch_index << 8 | port` address.
        switch: u16,
    },
    /// Set a Dnode's execution mode: `rs = 0` global, nonzero local.
    /// Entering local mode resets the sequencer counter.
    Wmode {
        /// Source register `rs`.
        rs: CReg,
        /// Flat Dnode index.
        dnode: u16,
    },
    /// Write local-sequencer slot: `packed = dnode << 3 | slot`; the value is
    /// `(rs as low 32 bits) | (CIR << 32)` as a microinstruction word.
    Wloc {
        /// Source register `rs`.
        rs: CReg,
        /// Packed `dnode << 3 | slot` address.
        packed: u16,
    },
    /// Set a Dnode's sequencer limit (`rs` in 1..=8) and reset its counter.
    Wlim {
        /// Source register `rs`.
        rs: CReg,
        /// Flat Dnode index.
        dnode: u16,
    },
    /// Select the active configuration context, effective next cycle — the
    /// whole-fabric reconfiguration primitive.
    Ctx {
        /// Context index.
        ctx: u16,
    },
    /// Drive the shared bus with the low 16 bits of `rs` for one cycle.
    Busw {
        /// Source register `rs`.
        rs: CReg,
    },
    /// Read the current bus value (zero-extended) into `rd`.
    Busr {
        /// Destination register.
        rd: CReg,
    },
    /// Push the low 16 bits of `rs` into a host-input FIFO; `switch` packs
    /// `switch_index << 8 | port`.
    Hpush {
        /// Source register `rs`.
        rs: CReg,
        /// Packed `switch_index << 8 | port` address.
        switch: u16,
    },
    /// Pop a host-output FIFO into `rd`; `switch` packs
    /// `switch_index << 8 | out_port`. Stalls the controller (the ring
    /// keeps running) until data is available.
    Hpop {
        /// Destination register.
        rd: CReg,
        /// Packed `switch_index << 8 | port` address.
        switch: u16,
    },
    /// Stall for `cycles` cycles while the ring keeps running.
    Wait {
        /// Stall duration in cycles.
        cycles: u16,
    },
    /// Stop the controller; the machine reports completion.
    Halt,
}

const OP_NOP: u8 = 0;
const OP_ADD: u8 = 1;
const OP_SUB: u8 = 2;
const OP_AND: u8 = 3;
const OP_OR: u8 = 4;
const OP_XOR: u8 = 5;
const OP_SLL: u8 = 6;
const OP_SRL: u8 = 7;
const OP_SRA: u8 = 8;
const OP_SLT: u8 = 9;
const OP_SLTU: u8 = 10;
const OP_MUL: u8 = 11;
const OP_ADDI: u8 = 12;
const OP_ANDI: u8 = 13;
const OP_ORI: u8 = 14;
const OP_XORI: u8 = 15;
const OP_SLTI: u8 = 16;
const OP_LUI: u8 = 17;
const OP_LW: u8 = 18;
const OP_SW: u8 = 19;
const OP_BEQ: u8 = 20;
const OP_BNE: u8 = 21;
const OP_BLT: u8 = 22;
const OP_BGE: u8 = 23;
const OP_J: u8 = 24;
const OP_JAL: u8 = 25;
const OP_JR: u8 = 26;
const OP_CIMM: u8 = 27;
const OP_WCTX: u8 = 28;
const OP_WDN: u8 = 29;
const OP_WSW: u8 = 30;
const OP_WHO: u8 = 31;
const OP_WMODE: u8 = 32;
const OP_WLOC: u8 = 33;
const OP_WLIM: u8 = 34;
const OP_CTX: u8 = 35;
const OP_BUSW: u8 = 36;
const OP_BUSR: u8 = 37;
const OP_HPUSH: u8 = 38;
const OP_HPOP: u8 = 39;
const OP_WAIT: u8 = 40;
const OP_HALT: u8 = 41;

fn pack(op: u8, rd: u8, ra: u8, rb: u8, imm: u16) -> u32 {
    debug_assert!(
        rb == 0 || imm == 0,
        "R and I payloads are mutually exclusive"
    );
    (op as u32) << 26 | (rd as u32) << 22 | (ra as u32) << 18 | (rb as u32) | imm as u32
}

impl CtrlInstr {
    /// Encodes to a 32-bit instruction word.
    pub fn encode(&self) -> u32 {
        use CtrlInstr::*;
        let r = |reg: CReg| reg.0;
        match *self {
            Nop => pack(OP_NOP, 0, 0, 0, 0),
            Add { rd, ra, rb } => pack(OP_ADD, r(rd), r(ra), r(rb), 0),
            Sub { rd, ra, rb } => pack(OP_SUB, r(rd), r(ra), r(rb), 0),
            And { rd, ra, rb } => pack(OP_AND, r(rd), r(ra), r(rb), 0),
            Or { rd, ra, rb } => pack(OP_OR, r(rd), r(ra), r(rb), 0),
            Xor { rd, ra, rb } => pack(OP_XOR, r(rd), r(ra), r(rb), 0),
            Sll { rd, ra, rb } => pack(OP_SLL, r(rd), r(ra), r(rb), 0),
            Srl { rd, ra, rb } => pack(OP_SRL, r(rd), r(ra), r(rb), 0),
            Sra { rd, ra, rb } => pack(OP_SRA, r(rd), r(ra), r(rb), 0),
            Slt { rd, ra, rb } => pack(OP_SLT, r(rd), r(ra), r(rb), 0),
            Sltu { rd, ra, rb } => pack(OP_SLTU, r(rd), r(ra), r(rb), 0),
            Mul { rd, ra, rb } => pack(OP_MUL, r(rd), r(ra), r(rb), 0),
            Addi { rd, ra, imm } => pack(OP_ADDI, r(rd), r(ra), 0, imm as u16),
            Andi { rd, ra, imm } => pack(OP_ANDI, r(rd), r(ra), 0, imm),
            Ori { rd, ra, imm } => pack(OP_ORI, r(rd), r(ra), 0, imm),
            Xori { rd, ra, imm } => pack(OP_XORI, r(rd), r(ra), 0, imm),
            Slti { rd, ra, imm } => pack(OP_SLTI, r(rd), r(ra), 0, imm as u16),
            Lui { rd, imm } => pack(OP_LUI, r(rd), 0, 0, imm),
            Lw { rd, ra, imm } => pack(OP_LW, r(rd), r(ra), 0, imm as u16),
            Sw { rs, ra, imm } => pack(OP_SW, r(rs), r(ra), 0, imm as u16),
            Beq { ra, rb, offset } => pack(OP_BEQ, r(rb), r(ra), 0, offset as u16),
            Bne { ra, rb, offset } => pack(OP_BNE, r(rb), r(ra), 0, offset as u16),
            Blt { ra, rb, offset } => pack(OP_BLT, r(rb), r(ra), 0, offset as u16),
            Bge { ra, rb, offset } => pack(OP_BGE, r(rb), r(ra), 0, offset as u16),
            J { target } => pack(OP_J, 0, 0, 0, target),
            Jal { target } => pack(OP_JAL, 0, 0, 0, target),
            Jr { ra } => pack(OP_JR, 0, r(ra), 0, 0),
            Cimm { imm } => pack(OP_CIMM, 0, 0, 0, imm),
            Wctx { ctx } => pack(OP_WCTX, 0, 0, 0, ctx),
            Wdn { rs, dnode } => pack(OP_WDN, r(rs), 0, 0, dnode),
            Wsw { rs, port } => pack(OP_WSW, r(rs), 0, 0, port),
            Who { rs, switch } => pack(OP_WHO, r(rs), 0, 0, switch),
            Wmode { rs, dnode } => pack(OP_WMODE, r(rs), 0, 0, dnode),
            Wloc { rs, packed } => pack(OP_WLOC, r(rs), 0, 0, packed),
            Wlim { rs, dnode } => pack(OP_WLIM, r(rs), 0, 0, dnode),
            Ctx { ctx } => pack(OP_CTX, 0, 0, 0, ctx),
            Busw { rs } => pack(OP_BUSW, r(rs), 0, 0, 0),
            Busr { rd } => pack(OP_BUSR, r(rd), 0, 0, 0),
            Hpush { rs, switch } => pack(OP_HPUSH, r(rs), 0, 0, switch),
            Hpop { rd, switch } => pack(OP_HPOP, r(rd), 0, 0, switch),
            Wait { cycles } => pack(OP_WAIT, 0, 0, 0, cycles),
            Halt => pack(OP_HALT, 0, 0, 0, 0),
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeCtrlError`] for reserved opcodes or set bits in fields
    /// the instruction does not use.
    pub fn decode(word: u32) -> Result<Self, DecodeCtrlError> {
        use CtrlInstr::*;
        let op = (word >> 26) as u8;
        let rd = CReg(((word >> 22) & 0xf) as u8);
        let ra = CReg(((word >> 18) & 0xf) as u8);
        let rb = CReg((word & 0xf) as u8);
        let imm = (word & 0xffff) as u16;
        let simm = imm as i16;

        // Field-usage checks: verify bits the instruction does not use are
        // zero. `rb` (R-format) and `imm` (I-format) share the low bits, so
        // an instruction uses at most one of them.
        let rd_bits = (word >> 22) & 0xf;
        let ra_bits = (word >> 18) & 0xf;
        let gap_bits = (word >> 16) & 0x3; // bits 16..18, never used
        if gap_bits != 0 {
            return Err(DecodeCtrlError::StrayBits(word));
        }
        let require = |used_rd: bool,
                       used_ra: bool,
                       used_rb: bool,
                       used_imm: bool|
         -> Result<(), DecodeCtrlError> {
            debug_assert!(!(used_rb && used_imm));
            let low_ok = if used_imm {
                true
            } else if used_rb {
                imm >> 4 == 0
            } else {
                imm == 0
            };
            if (!used_rd && rd_bits != 0) || (!used_ra && ra_bits != 0) || !low_ok {
                Err(DecodeCtrlError::StrayBits(word))
            } else {
                Ok(())
            }
        };

        let instr = match op {
            OP_NOP => {
                require(false, false, false, false)?;
                Nop
            }
            OP_ADD | OP_SUB | OP_AND | OP_OR | OP_XOR | OP_SLL | OP_SRL | OP_SRA | OP_SLT
            | OP_SLTU | OP_MUL => {
                require(true, true, true, false)?;
                match op {
                    OP_ADD => Add { rd, ra, rb },
                    OP_SUB => Sub { rd, ra, rb },
                    OP_AND => And { rd, ra, rb },
                    OP_OR => Or { rd, ra, rb },
                    OP_XOR => Xor { rd, ra, rb },
                    OP_SLL => Sll { rd, ra, rb },
                    OP_SRL => Srl { rd, ra, rb },
                    OP_SRA => Sra { rd, ra, rb },
                    OP_SLT => Slt { rd, ra, rb },
                    OP_SLTU => Sltu { rd, ra, rb },
                    _ => Mul { rd, ra, rb },
                }
            }
            OP_ADDI => {
                require(true, true, false, true)?;
                Addi { rd, ra, imm: simm }
            }
            OP_ANDI => {
                require(true, true, false, true)?;
                Andi { rd, ra, imm }
            }
            OP_ORI => {
                require(true, true, false, true)?;
                Ori { rd, ra, imm }
            }
            OP_XORI => {
                require(true, true, false, true)?;
                Xori { rd, ra, imm }
            }
            OP_SLTI => {
                require(true, true, false, true)?;
                Slti { rd, ra, imm: simm }
            }
            OP_LUI => {
                require(true, false, false, true)?;
                Lui { rd, imm }
            }
            OP_LW => {
                require(true, true, false, true)?;
                Lw { rd, ra, imm: simm }
            }
            OP_SW => {
                require(true, true, false, true)?;
                Sw {
                    rs: rd,
                    ra,
                    imm: simm,
                }
            }
            OP_BEQ | OP_BNE | OP_BLT | OP_BGE => {
                require(true, true, false, true)?;
                let (ra, rb, offset) = (ra, rd, simm);
                match op {
                    OP_BEQ => Beq { ra, rb, offset },
                    OP_BNE => Bne { ra, rb, offset },
                    OP_BLT => Blt { ra, rb, offset },
                    _ => Bge { ra, rb, offset },
                }
            }
            OP_J => {
                require(false, false, false, true)?;
                J { target: imm }
            }
            OP_JAL => {
                require(false, false, false, true)?;
                Jal { target: imm }
            }
            OP_JR => {
                require(false, true, false, false)?;
                Jr { ra }
            }
            OP_CIMM => {
                require(false, false, false, true)?;
                Cimm { imm }
            }
            OP_WCTX => {
                require(false, false, false, true)?;
                Wctx { ctx: imm }
            }
            OP_WDN => {
                require(true, false, false, true)?;
                Wdn { rs: rd, dnode: imm }
            }
            OP_WSW => {
                require(true, false, false, true)?;
                Wsw { rs: rd, port: imm }
            }
            OP_WHO => {
                require(true, false, false, true)?;
                Who {
                    rs: rd,
                    switch: imm,
                }
            }
            OP_WMODE => {
                require(true, false, false, true)?;
                Wmode { rs: rd, dnode: imm }
            }
            OP_WLOC => {
                require(true, false, false, true)?;
                Wloc {
                    rs: rd,
                    packed: imm,
                }
            }
            OP_WLIM => {
                require(true, false, false, true)?;
                Wlim { rs: rd, dnode: imm }
            }
            OP_CTX => {
                require(false, false, false, true)?;
                Ctx { ctx: imm }
            }
            OP_BUSW => {
                require(true, false, false, false)?;
                Busw { rs: rd }
            }
            OP_BUSR => {
                require(true, false, false, false)?;
                Busr { rd }
            }
            OP_HPUSH => {
                require(true, false, false, true)?;
                Hpush {
                    rs: rd,
                    switch: imm,
                }
            }
            OP_HPOP => {
                require(true, false, false, true)?;
                Hpop { rd, switch: imm }
            }
            OP_WAIT => {
                require(false, false, false, true)?;
                Wait { cycles: imm }
            }
            OP_HALT => {
                require(false, false, false, false)?;
                Halt
            }
            _ => return Err(DecodeCtrlError::Opcode(op)),
        };
        Ok(instr)
    }
}

impl fmt::Display for CtrlInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use CtrlInstr::*;
        match *self {
            Nop => write!(f, "nop"),
            Add { rd, ra, rb } => write!(f, "add {rd}, {ra}, {rb}"),
            Sub { rd, ra, rb } => write!(f, "sub {rd}, {ra}, {rb}"),
            And { rd, ra, rb } => write!(f, "and {rd}, {ra}, {rb}"),
            Or { rd, ra, rb } => write!(f, "or {rd}, {ra}, {rb}"),
            Xor { rd, ra, rb } => write!(f, "xor {rd}, {ra}, {rb}"),
            Sll { rd, ra, rb } => write!(f, "sll {rd}, {ra}, {rb}"),
            Srl { rd, ra, rb } => write!(f, "srl {rd}, {ra}, {rb}"),
            Sra { rd, ra, rb } => write!(f, "sra {rd}, {ra}, {rb}"),
            Slt { rd, ra, rb } => write!(f, "slt {rd}, {ra}, {rb}"),
            Sltu { rd, ra, rb } => write!(f, "sltu {rd}, {ra}, {rb}"),
            Mul { rd, ra, rb } => write!(f, "mul {rd}, {ra}, {rb}"),
            Addi { rd, ra, imm } => write!(f, "addi {rd}, {ra}, {imm}"),
            Andi { rd, ra, imm } => write!(f, "andi {rd}, {ra}, {imm:#x}"),
            Ori { rd, ra, imm } => write!(f, "ori {rd}, {ra}, {imm:#x}"),
            Xori { rd, ra, imm } => write!(f, "xori {rd}, {ra}, {imm:#x}"),
            Slti { rd, ra, imm } => write!(f, "slti {rd}, {ra}, {imm}"),
            Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Lw { rd, ra, imm } => write!(f, "lw {rd}, {imm}({ra})"),
            Sw { rs, ra, imm } => write!(f, "sw {rs}, {imm}({ra})"),
            Beq { ra, rb, offset } => write!(f, "beq {ra}, {rb}, {offset}"),
            Bne { ra, rb, offset } => write!(f, "bne {ra}, {rb}, {offset}"),
            Blt { ra, rb, offset } => write!(f, "blt {ra}, {rb}, {offset}"),
            Bge { ra, rb, offset } => write!(f, "bge {ra}, {rb}, {offset}"),
            J { target } => write!(f, "j {target}"),
            Jal { target } => write!(f, "jal {target}"),
            Jr { ra } => write!(f, "jr {ra}"),
            Cimm { imm } => write!(f, "cimm {imm:#x}"),
            Wctx { ctx } => write!(f, "wctx {ctx}"),
            Wdn { rs, dnode } => write!(f, "wdn {rs}, {dnode}"),
            Wsw { rs, port } => write!(f, "wsw {rs}, {port}"),
            Who { rs, switch } => write!(f, "who {rs}, {switch}"),
            Wmode { rs, dnode } => write!(f, "wmode {rs}, {dnode}"),
            Wloc { rs, packed } => write!(f, "wloc {rs}, {packed}"),
            Wlim { rs, dnode } => write!(f, "wlim {rs}, {dnode}"),
            Ctx { ctx } => write!(f, "ctx {ctx}"),
            Busw { rs } => write!(f, "busw {rs}"),
            Busr { rd } => write!(f, "busr {rd}"),
            Hpush { rs, switch } => {
                write!(f, "hpush {rs}, {}, {}", switch >> 8, switch & 0xff)
            }
            Hpop { rd, switch } => {
                write!(f, "hpop {rd}, {}, {}", switch >> 8, switch & 0xff)
            }
            Wait { cycles } => write!(f, "wait {cycles}"),
            Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> CReg {
        CReg::new(i).unwrap()
    }

    fn samples() -> Vec<CtrlInstr> {
        use CtrlInstr::*;
        vec![
            Nop,
            Add {
                rd: r(1),
                ra: r(2),
                rb: r(3),
            },
            Sub {
                rd: r(15),
                ra: r(0),
                rb: r(7),
            },
            And {
                rd: r(4),
                ra: r(5),
                rb: r(6),
            },
            Or {
                rd: r(4),
                ra: r(5),
                rb: r(6),
            },
            Xor {
                rd: r(4),
                ra: r(5),
                rb: r(6),
            },
            Sll {
                rd: r(1),
                ra: r(1),
                rb: r(2),
            },
            Srl {
                rd: r(1),
                ra: r(1),
                rb: r(2),
            },
            Sra {
                rd: r(1),
                ra: r(1),
                rb: r(2),
            },
            Slt {
                rd: r(9),
                ra: r(10),
                rb: r(11),
            },
            Sltu {
                rd: r(9),
                ra: r(10),
                rb: r(11),
            },
            Mul {
                rd: r(12),
                ra: r(13),
                rb: r(14),
            },
            Addi {
                rd: r(1),
                ra: r(0),
                imm: -32768,
            },
            Andi {
                rd: r(2),
                ra: r(2),
                imm: 0xffff,
            },
            Ori {
                rd: r(2),
                ra: r(2),
                imm: 0x00ff,
            },
            Xori {
                rd: r(2),
                ra: r(2),
                imm: 0x0f0f,
            },
            Slti {
                rd: r(3),
                ra: r(4),
                imm: -1,
            },
            Lui {
                rd: r(5),
                imm: 0xdead,
            },
            Lw {
                rd: r(6),
                ra: r(7),
                imm: -4,
            },
            Sw {
                rs: r(6),
                ra: r(7),
                imm: 12,
            },
            Beq {
                ra: r(1),
                rb: r(2),
                offset: -10,
            },
            Bne {
                ra: r(1),
                rb: r(2),
                offset: 10,
            },
            Blt {
                ra: r(1),
                rb: r(2),
                offset: 0,
            },
            Bge {
                ra: r(1),
                rb: r(2),
                offset: 5,
            },
            J { target: 1000 },
            Jal { target: 2000 },
            Jr { ra: r(15) },
            Cimm { imm: 0xbeef },
            Wctx { ctx: 3 },
            Wdn {
                rs: r(8),
                dnode: 255,
            },
            Wsw {
                rs: r(8),
                port: 1023,
            },
            Who {
                rs: r(8),
                switch: 7,
            },
            Wmode {
                rs: r(8),
                dnode: 63,
            },
            Wloc {
                rs: r(8),
                packed: 517,
            },
            Wlim { rs: r(8), dnode: 2 },
            Ctx { ctx: 255 },
            Busw { rs: r(9) },
            Busr { rd: r(10) },
            Hpush {
                rs: r(11),
                switch: 1,
            },
            Hpop {
                rd: r(12),
                switch: 2,
            },
            Wait { cycles: 500 },
            Halt,
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for instr in samples() {
            let word = instr.encode();
            assert_eq!(
                CtrlInstr::decode(word).unwrap(),
                instr,
                "word {word:#010x} ({instr})"
            );
        }
    }

    #[test]
    fn decode_rejects_reserved_opcodes() {
        for op in 42u32..64 {
            assert_eq!(
                CtrlInstr::decode(op << 26),
                Err(DecodeCtrlError::Opcode(op as u8))
            );
        }
    }

    #[test]
    fn decode_rejects_stray_fields() {
        // NOP with rd set.
        let word = pack(OP_NOP, 1, 0, 0, 0);
        assert!(matches!(
            CtrlInstr::decode(word),
            Err(DecodeCtrlError::StrayBits(_))
        ));
        // J with rd set.
        let word = pack(OP_J, 1, 0, 0, 5);
        assert!(matches!(
            CtrlInstr::decode(word),
            Err(DecodeCtrlError::StrayBits(_))
        ));
        // ADD (R-format) with bits above the rb field set.
        let word = pack(OP_ADD, 1, 2, 3, 0) | 1 << 7;
        assert!(matches!(
            CtrlInstr::decode(word),
            Err(DecodeCtrlError::StrayBits(_))
        ));
        // Gap bits 16..17 set.
        assert!(matches!(
            CtrlInstr::decode(1 << 16),
            Err(DecodeCtrlError::StrayBits(_))
        ));
    }

    #[test]
    fn creg_bounds() {
        assert!(CReg::new(15).is_some());
        assert!(CReg::new(16).is_none());
        assert_eq!(CReg::ZERO.index(), 0);
        assert_eq!(CReg::LINK.index(), 15);
    }

    #[test]
    fn display_round_trip_examples() {
        assert_eq!(
            CtrlInstr::Lw {
                rd: r(6),
                ra: r(7),
                imm: -4
            }
            .to_string(),
            "lw r6, -4(r7)"
        );
        assert_eq!(CtrlInstr::Halt.to_string(), "halt");
        assert_eq!(
            CtrlInstr::Lui {
                rd: r(5),
                imm: 0xdead
            }
            .to_string(),
            "lui r5, 0xdead"
        );
    }
}
