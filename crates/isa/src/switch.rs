//! Switch configuration: crossbar port sources and host-capture selection.
//!
//! A switch sits between two adjacent Dnode layers. It is itself dynamically
//! reconfigurable and performs three tasks (paper §4.2):
//!
//! 1. **Forward routing** — for each input port (`In1`, `In2`) of each
//!    downstream Dnode, select a source: an upstream Dnode output, a stage of
//!    any feedback pipeline, the switch's host-input port, the shared bus, or
//!    constant zero.
//! 2. **Feedback capture** — unconditionally (no control needed) push the
//!    whole upstream layer's output vector into its own feedback pipeline.
//! 3. **Host traffic** — optionally capture one upstream Dnode's output into
//!    the switch's host-output port each cycle.

use std::fmt;

/// Source selector for one downstream Dnode input port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PortSource {
    /// Constant zero (the reset routing).
    #[default]
    Zero,
    /// Output of upstream-layer Dnode `lane`.
    PrevOut {
        /// Lane (index within the upstream layer) of the source Dnode.
        lane: u8,
    },
    /// Stage `stage` of the feedback pipeline owned by switch `switch`.
    ///
    /// Stage 0 is the most recently captured vector. Every switch has read
    /// access to every pipeline (the paper's global feedback network).
    Pipe {
        /// Owning switch of the pipeline.
        switch: u8,
        /// Pipeline stage, 0 = newest.
        stage: u8,
        /// Lane within the captured layer-output vector.
        lane: u8,
    },
    /// Head of one of this switch's host-input FIFOs (direct dedicated
    /// ports; a switch has `2 * width` of them, enough to feed both forward
    /// ports of every downstream Dnode).
    HostIn {
        /// Host-input port index within this switch.
        port: u8,
    },
    /// The shared bus.
    Bus,
}

/// Error decoding a switch configuration word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeSwitchError {
    word: u32,
}

impl fmt::Display for DecodeSwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reserved switch port-source encoding in word {:#010x}",
            self.word
        )
    }
}

impl std::error::Error for DecodeSwitchError {}

impl PortSource {
    /// Encodes to a 32-bit configuration word.
    ///
    /// Layout: `[0..3)` kind, `[3..11)` field A, `[11..19)` field B,
    /// `[19..27)` field C, rest zero.
    pub fn encode(self) -> u32 {
        match self {
            PortSource::Zero => 0,
            PortSource::PrevOut { lane } => 1 | (lane as u32) << 3,
            PortSource::Pipe {
                switch,
                stage,
                lane,
            } => 2 | (switch as u32) << 3 | (stage as u32) << 11 | (lane as u32) << 19,
            PortSource::HostIn { port } => 3 | (port as u32) << 3,
            PortSource::Bus => 4,
        }
    }

    /// Decodes a 32-bit configuration word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeSwitchError`] for reserved kind codes or nonzero
    /// payload bits on payload-free kinds.
    pub fn decode(word: u32) -> Result<Self, DecodeSwitchError> {
        let kind = word & 0x7;
        let a = ((word >> 3) & 0xff) as u8;
        let b = ((word >> 11) & 0xff) as u8;
        let c = ((word >> 19) & 0xff) as u8;
        let payload = word >> 3;
        let source = match kind {
            0 if payload == 0 => PortSource::Zero,
            1 if word >> 11 == 0 => PortSource::PrevOut { lane: a },
            2 if word >> 27 == 0 => PortSource::Pipe {
                switch: a,
                stage: b,
                lane: c,
            },
            3 if word >> 11 == 0 => PortSource::HostIn { port: a },
            4 if payload == 0 => PortSource::Bus,
            _ => return Err(DecodeSwitchError { word }),
        };
        Ok(source)
    }
}

impl fmt::Display for PortSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortSource::Zero => f.write_str("zero"),
            PortSource::PrevOut { lane } => write!(f, "prev.{lane}"),
            PortSource::Pipe {
                switch,
                stage,
                lane,
            } => write!(f, "pipe[{switch}][{stage}].{lane}"),
            PortSource::HostIn { port } => write!(f, "hostin.{port}"),
            PortSource::Bus => f.write_str("bus"),
        }
    }
}

/// Host-output capture selection for one switch.
///
/// Encoded as `0` (disabled) or `lane + 1` in configuration words.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct HostCapture(Option<u8>);

impl HostCapture {
    /// No capture (reset value).
    pub const DISABLED: HostCapture = HostCapture(None);

    /// Capture the output of upstream Dnode `lane` every cycle.
    pub const fn lane(lane: u8) -> Self {
        HostCapture(Some(lane))
    }

    /// The captured lane, if capture is enabled.
    pub const fn selected(self) -> Option<u8> {
        self.0
    }

    /// Encodes to a configuration word (`0` = disabled, else `lane + 1`).
    pub fn encode(self) -> u32 {
        match self.0 {
            None => 0,
            Some(lane) => lane as u32 + 1,
        }
    }

    /// Decodes a configuration word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeSwitchError`] if the encoded lane exceeds 255.
    pub fn decode(word: u32) -> Result<Self, DecodeSwitchError> {
        match word {
            0 => Ok(HostCapture(None)),
            1..=256 => Ok(HostCapture(Some((word - 1) as u8))),
            _ => Err(DecodeSwitchError { word }),
        }
    }
}

impl fmt::Display for HostCapture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            None => f.write_str("off"),
            Some(lane) => write!(f, "lane {lane}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_source_round_trips() {
        let sources = [
            PortSource::Zero,
            PortSource::PrevOut { lane: 0 },
            PortSource::PrevOut { lane: 255 },
            PortSource::Pipe {
                switch: 3,
                stage: 7,
                lane: 1,
            },
            PortSource::Pipe {
                switch: 255,
                stage: 255,
                lane: 255,
            },
            PortSource::HostIn { port: 0 },
            PortSource::HostIn { port: 255 },
            PortSource::Bus,
        ];
        for src in sources {
            assert_eq!(PortSource::decode(src.encode()), Ok(src));
        }
    }

    #[test]
    fn decode_rejects_reserved_kinds() {
        for kind in 5u32..8 {
            assert!(PortSource::decode(kind).is_err());
        }
    }

    #[test]
    fn decode_rejects_stray_payload() {
        assert!(PortSource::decode(1 | 1 << 3).is_ok()); // PrevOut lane 1
        assert!(PortSource::decode(8).is_err()); // kind 0 (Zero) with payload
        assert!(PortSource::decode(3 | 1 << 11).is_err()); // HostIn with b field
        assert!(PortSource::decode(4 | 1 << 3).is_err()); // Bus with payload
        assert!(PortSource::decode(1 | 1 << 11).is_err()); // PrevOut with b field
    }

    #[test]
    fn host_capture_round_trips() {
        for cap in [
            HostCapture::DISABLED,
            HostCapture::lane(0),
            HostCapture::lane(255),
        ] {
            assert_eq!(HostCapture::decode(cap.encode()), Ok(cap));
        }
        assert!(HostCapture::decode(257).is_err());
    }

    #[test]
    fn default_routing_is_zero() {
        assert_eq!(PortSource::default(), PortSource::Zero);
        assert_eq!(HostCapture::default(), HostCapture::DISABLED);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(PortSource::PrevOut { lane: 2 }.to_string(), "prev.2");
        assert_eq!(
            PortSource::Pipe {
                switch: 1,
                stage: 0,
                lane: 3
            }
            .to_string(),
            "pipe[1][0].3"
        );
        assert_eq!(HostCapture::lane(4).to_string(), "lane 4");
        assert_eq!(HostCapture::DISABLED.to_string(), "off");
    }
}
