//! Kernel-library summary (extension): every DSP kernel in the repository
//! with its measured throughput and footprint on the Ring-16.
//!
//! This is the "what would a downstream user get" table — the paper's §6
//! macro-operator list (MAC, RIF, RII, FIFOs, trigonometric op.) plus the
//! evaluation workloads, all validated bit-exactly against golden models
//! before being timed.

use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::golden::{self, Complex16};
use systolic_ring_kernels::image::{test_signal, Image};
use systolic_ring_kernels::motion::BlockMatch;
use systolic_ring_kernels::{conv, fft, fifo, fir, iir, mac, matvec, motion, wavelet};

use crate::table::TextTable;

/// One kernel row.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// Kernel name.
    pub name: &'static str,
    /// Work items processed (samples / pixels / candidates / butterflies).
    pub items: usize,
    /// Unit of the work items.
    pub unit: &'static str,
    /// Total cycles.
    pub cycles: u64,
    /// Dnodes the mapping keeps busy (0 = not measured).
    pub dnodes: usize,
    /// `true` when the hardware output matched its golden model exactly.
    pub exact: bool,
}

impl KernelRow {
    /// Cycles per work item.
    pub fn cycles_per_item(&self) -> f64 {
        self.cycles as f64 / self.items as f64
    }
}

/// Runs every kernel at a representative size on the Ring-16.
///
/// # Panics
///
/// Panics if any kernel faults or misvalidates — the table only reports
/// verified kernels.
pub fn run() -> Vec<KernelRow> {
    let g = RingGeometry::RING_16;
    let mut rows = Vec::new();
    let busy = |stats: &systolic_ring_core::Stats| g.dnodes() - stats.idle_dnodes();

    // MAC dot product (local mode).
    let a = test_signal(256, 1);
    let b = test_signal(256, 2);
    let run = mac::dot_product(g, &a, &b).expect("mac");
    rows.push(KernelRow {
        name: "MAC dot product (local mode)",
        items: 256,
        unit: "elems",
        cycles: run.cycles,
        dnodes: busy(&run.stats),
        exact: run.outputs[0] == golden::dot_product(&a, &b),
    });

    // Spatial FIR-3.
    let coeffs = [5, -3, 2];
    let x = test_signal(256, 3);
    let run = fir::spatial(g, &coeffs, &x).expect("fir spatial");
    rows.push(KernelRow {
        name: "FIR-3 spatial (1 sample/cycle)",
        items: 256,
        unit: "samples",
        cycles: run.cycles,
        dnodes: busy(&run.stats),
        exact: run.outputs == golden::fir(&coeffs, &x),
    });

    // Folded FIR-3.
    let run = fir::local_serial(g, &coeffs, &x).expect("fir folded");
    rows.push(KernelRow {
        name: "FIR-3 folded (1 Dnode)",
        items: 256,
        unit: "samples",
        cycles: run.cycles,
        dnodes: busy(&run.stats),
        exact: run.outputs == golden::fir(&coeffs, &x),
    });

    // IIR over the feedback network.
    let run = iir::first_order(g, 100, 8, &x).expect("iir");
    rows.push(KernelRow {
        name: "IIR-1 (feedback network)",
        items: 256,
        unit: "samples",
        cycles: run.cycles,
        dnodes: busy(&run.stats),
        exact: run.outputs == golden::iir_first_order(100, 8, &x),
    });

    // Biquad (second-order IIR).
    let b = [2i16, -1, 3];
    let a2 = [100i16, -40];
    let run = iir::biquad(g, &b, &a2, 8, &x).expect("biquad");
    rows.push(KernelRow {
        name: "IIR biquad (FIR fold + 2-tap fb)",
        items: 256,
        unit: "samples",
        cycles: run.cycles,
        dnodes: busy(&run.stats),
        exact: run.outputs == golden::iir_biquad(&b, &a2, 8, &x),
    });

    // FIFO emulation.
    let run = fifo::emulate(g, 3, &x).expect("fifo");
    let mut delayed = vec![0i16; 3];
    delayed.extend_from_slice(&x[..x.len() - 3]);
    rows.push(KernelRow {
        name: "FIFO emulation depth 3",
        items: 256,
        unit: "words",
        cycles: run.cycles,
        dnodes: busy(&run.stats),
        exact: run.outputs == delayed,
    });

    // Matrix-vector multiply.
    let (r, c) = (32, 24);
    let mat = test_signal(r * c, 4);
    let vec_x = test_signal(c, 5);
    let run = matvec::multiply(g, &mat, r, c, &vec_x).expect("matvec");
    rows.push(KernelRow {
        name: "matvec 32x24 (batched MACs)",
        items: r * c,
        unit: "MACs",
        cycles: run.cycles,
        dnodes: busy(&run.stats),
        exact: run.outputs == golden::matvec(&mat, r, c, &vec_x),
    });

    // Separable 3x3 convolution.
    let image = Image::textured(32, 32, 6);
    let kh = [1, 2, 1];
    let kv = [1, 2, 1];
    let run = conv::conv3x3(g, &kh, &kv, &image).expect("conv");
    rows.push(KernelRow {
        name: "conv 3x3 separable (2 passes)",
        items: run.pixels,
        unit: "pixels",
        cycles: run.cycles,
        dnodes: 9,
        exact: run.output == golden::conv3x3_separable(&kh, &kv, 32, 32, image.data()),
    });

    // FFT-64.
    let signal: Vec<Complex16> = (0..64)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * (5 * i) as f64 / 64.0;
            ((900.0 * theta.cos()) as i16, (900.0 * theta.sin()) as i16)
        })
        .collect();
    let run = fft::fft(g, &signal, 15).expect("fft");
    rows.push(KernelRow {
        name: "FFT-64 (6 streamed stages)",
        items: 64 / 2 * run.stages,
        unit: "bflies",
        cycles: run.cycles,
        dnodes: 12,
        exact: run.output == fft::golden_fft(&signal, 15),
    });

    // Motion estimation (Table 1 scale).
    let (reference, current) = Image::motion_pair(64, 64, 2, -1, 2002);
    let est =
        motion::block_match(g, &reference, &current, BlockMatch::paper_at(28, 28)).expect("motion");
    let block = current.block(28, 28, 8, 8);
    let exact = est.candidates.iter().all(|&(dx, dy, sad)| {
        let cand = reference.block((28 + dx) as usize, (28 + dy) as usize, 8, 8);
        sad as i32 == golden::sad(&block, &cand)
    });
    rows.push(KernelRow {
        name: "motion estimation 8x8 +-8",
        items: est.candidates.len(),
        unit: "cands",
        cycles: est.cycles,
        dnodes: 16,
        exact,
    });

    // Wavelet 2-D.
    let image = Image::textured(64, 48, 53);
    let run = wavelet::forward_2d(g, &image).expect("wavelet");
    rows.push(KernelRow {
        name: "wavelet 5/3 2-D (2 passes)",
        items: run.pixels,
        unit: "pixels",
        cycles: run.cycles,
        dnodes: g.dnodes() - run.stats.idle_dnodes(),
        exact: run.coefficients == golden::lifting53_forward_2d(64, 48, image.data()),
    });

    // Inverse wavelet 2-D (compiler-generated configuration).
    let coeffs = run.coefficients.clone();
    let inv = wavelet::inverse_2d(g, 64, 48, &coeffs).expect("inverse wavelet");
    rows.push(KernelRow {
        name: "wavelet 5/3 inverse (compiled)",
        items: inv.pixels,
        unit: "pixels",
        cycles: inv.cycles,
        dnodes: 9,
        exact: inv.coefficients == image.data(),
    });

    rows
}

/// Renders the kernel-library table.
pub fn render(rows: &[KernelRow]) -> String {
    let mut out = String::from(
        "Kernel library on the Ring-16 — every kernel validated bit-exactly\n\
         against its golden model before timing.\n\n",
    );
    let mut t = TextTable::new(["kernel", "work", "cycles", "cycles/item", "Dnodes", "exact"]);
    for r in rows {
        t.row([
            r.name.to_owned(),
            format!("{} {}", r.items, r.unit),
            crate::table::cycles(r.cycles),
            format!("{:.2}", r.cycles_per_item()),
            r.dnodes.to_string(),
            if r.exact { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_is_exact() {
        let rows = run();
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(r.exact, "{} deviated from its golden model", r.name);
            assert!(r.cycles > 0, "{}", r.name);
        }
    }

    #[test]
    fn streaming_kernels_hit_one_item_per_cycle() {
        let rows = run();
        let fir = rows.iter().find(|r| r.name.contains("spatial")).unwrap();
        assert!(fir.cycles_per_item() < 1.2);
        let folded = rows.iter().find(|r| r.name.contains("folded")).unwrap();
        assert!(folded.cycles_per_item() > 6.0);
    }

    #[test]
    fn render_lists_all_kernels() {
        let text = render(&run());
        assert!(text.contains("FFT-64"));
        assert!(text.contains("matvec"));
        assert!(text.contains("wavelet"));
    }
}
