//! Batch-engine experiment: parallel simulation throughput plus the
//! differential oracle verdict.
//!
//! The batch engine is infrastructure, not a paper artifact, but the
//! report treats it like one: the scaling section shows how many
//! simulated kernels per second the machine under test sustains at each
//! worker count (with bit-identical results enforced against the serial
//! baseline), and the oracle section confirms that every kernel family
//! still matches its golden software model when scheduled concurrently.

use std::time::Duration;

use systolic_ring_harness::runner::BatchRunner;
use systolic_ring_kernels::batch::{kernel_sweep, oracle_suite, run_oracle, OracleReport};

use crate::table::TextTable;

/// Seed for the report's deterministic sweep.
pub const SWEEP_SEED: u64 = 0xba7c;

/// One worker-count measurement over the sweep.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Worker threads used.
    pub workers: usize,
    /// Batch wall-clock time.
    pub wall: Duration,
    /// Speedup vs the measured serial baseline.
    pub speedup: f64,
    /// Simulated operations per wall-clock second, in millions.
    pub sim_mips: f64,
    /// `true` when outcomes were bit-identical to the serial run.
    pub matches_serial: bool,
}

/// The full batch experiment result.
#[derive(Clone, Debug)]
pub struct BatchExperiment {
    /// Jobs in the sweep.
    pub jobs: usize,
    /// Serial wall-clock baseline.
    pub serial_wall: Duration,
    /// One point per measured worker count.
    pub points: Vec<ScalePoint>,
    /// Differential-oracle verdict over every kernel family.
    pub oracle: OracleReport,
}

/// Worker counts to measure: 1, 2, 4, ... up to available parallelism.
fn worker_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize];
    let mut w = 2usize;
    while w < max {
        counts.push(w);
        w *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts.dedup();
    counts
}

/// Runs the scaling sweep (`jobs` kernel jobs) and the oracle.
pub fn run(jobs: usize) -> BatchExperiment {
    let sweep = kernel_sweep(SWEEP_SEED, jobs);
    let serial = BatchRunner::run_serial(&sweep);
    let points = worker_counts()
        .into_iter()
        .map(|workers| {
            let report = BatchRunner::with_workers(workers).run(&sweep);
            let summary = report.summary();
            ScalePoint {
                workers,
                wall: report.wall,
                speedup: serial.wall.as_secs_f64() / report.wall.as_secs_f64().max(1e-9),
                sim_mips: summary.sim_mips,
                matches_serial: report.outcomes_match(&serial),
            }
        })
        .collect();
    let oracle = run_oracle(&BatchRunner::new(), oracle_suite(SWEEP_SEED, 2));
    BatchExperiment {
        jobs: sweep.len(),
        serial_wall: serial.wall,
        points,
        oracle,
    }
}

/// Renders the experiment.
pub fn render(exp: &BatchExperiment) -> String {
    let mut out = format!(
        "Batch engine (extension) — {} mixed kernel jobs, serial baseline\n\
         {:.3} ms; every parallel run checked bit-identical to serial.\n\n",
        exp.jobs,
        exp.serial_wall.as_secs_f64() * 1e3
    );
    let mut t = TextTable::new(["workers", "wall ms", "speedup", "sim-MIPS", "bit-identical"]);
    for p in &exp.points {
        t.row([
            format!("{}", p.workers),
            format!("{:.3}", p.wall.as_secs_f64() * 1e3),
            format!("{:.2}x", p.speedup),
            format!("{:.2}", p.sim_mips),
            if p.matches_serial { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ndifferential oracle: {} cases, {} mismatches, {} faults — {}\n",
        exp.oracle.cases,
        exp.oracle.mismatches.len(),
        exp.oracle.faults.len(),
        if exp.oracle.all_match() {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    for line in exp.oracle.mismatches.iter().chain(&exp.oracle.faults) {
        out.push_str(&format!("  {line}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_runs_and_renders() {
        let exp = run(8);
        assert_eq!(exp.jobs, 8);
        assert!(exp.points.iter().all(|p| p.matches_serial));
        assert!(exp.oracle.all_match(), "{:?}", exp.oracle.mismatches);
        let text = render(&exp);
        assert!(text.contains("bit-identical"));
        assert!(text.contains("PASS"));
    }
}
