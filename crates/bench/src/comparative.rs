//! §5.1 comparative results — peak MIPS and host bandwidth.
//!
//! Claims to reproduce: "A 8 Dnodes, 16 bits wide data buses version has a
//! maximal computing power of 1600 MIPS at the typical 200 MHz evaluated
//! functional frequency, quite impressive compared to the 400 MIPS of a
//! Pentium II 450 MHz processor. The theoretical maximum bandwidth ... is
//! about 3 Gbytes/s, limited to 250 Mbytes/s in our implemented
//! communication protocol (a PCI based bus)".

use systolic_ring_baselines::scalar::{self, CostModel};
use systolic_ring_core::{LinkModel, MachineParams, RingMachine};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::switch::PortSource;
use systolic_ring_isa::{RingGeometry, Word16};
use systolic_ring_model::{freq_mhz, peak_mips, peak_port_bandwidth_bytes, ST_CMOS_018};

use crate::table::TextTable;

/// Results of the comparative-figures reproduction.
#[derive(Clone, Debug)]
pub struct Comparative {
    /// Modelled Ring-8 frequency (MHz).
    pub ring_freq_mhz: f64,
    /// Peak MIPS (one op per Dnode per cycle).
    pub ring_peak_mips: f64,
    /// Measured sustained MIPS with every Dnode running a MAC.
    pub ring_sustained_mips: f64,
    /// Measured sustained MOPS counting MAC as two operations.
    pub ring_sustained_mops: f64,
    /// Scalar baseline sustained MIPS at 450 MHz.
    pub scalar_mips: f64,
    /// Theoretical port bandwidth (bytes/s).
    pub port_bw_theoretical: f64,
    /// Measured bandwidth through the direct ports (bytes/s).
    pub port_bw_measured: f64,
    /// Measured bandwidth through the PCI-class link (bytes/s).
    pub pci_bw_measured: f64,
}

/// Saturates every Dnode of `geometry` with a local-mode MAC fed from host
/// streams and returns (words consumed per cycle, ops per cycle).
fn saturate(geometry: RingGeometry, link: LinkModel, cycles: u64) -> (f64, f64) {
    let params = MachineParams::PAPER.with_link(link);
    let mut m = RingMachine::new(geometry, params);
    let mac = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::One).write_reg(Reg::R0);
    for layer in 0..geometry.layers() {
        for lane in 0..geometry.width() {
            let d = geometry.dnode_index(layer, lane);
            m.configure()
                .set_port(
                    0,
                    layer,
                    lane,
                    0,
                    PortSource::HostIn {
                        port: (2 * lane) as u8,
                    },
                )
                .expect("port");
            m.set_local_program(d, &[mac]).expect("program");
            m.set_mode(d, DnodeMode::Local);
            m.attach_input(layer, 2 * lane, vec![Word16::ONE; cycles as usize + 8])
                .expect("stream");
        }
    }
    m.run(cycles).expect("run");
    let stats = m.stats();
    (
        stats.host_words_in as f64 / cycles as f64,
        stats.ops_per_cycle(),
    )
}

/// Runs all comparative measurements on the Ring-8.
pub fn run() -> Comparative {
    let geometry = RingGeometry::RING_8;
    let freq = freq_mhz(geometry, ST_CMOS_018);

    // Sustained compute: every Dnode MACs a stream.
    let (words_direct, ops_per_cycle) = saturate(geometry, LinkModel::Direct, 2000);
    // Bandwidth through the PCI-class link: same fabric, metered link.
    let (words_pci, _) = saturate(geometry, LinkModel::PCI_250MBPS_AT_200MHZ, 4000);

    let scalar_run = scalar::dot_product(
        CostModel::PENTIUM_II_CLASS,
        &vec![3i16; 20_000],
        &vec![5i16; 20_000],
    );

    Comparative {
        ring_freq_mhz: freq,
        ring_peak_mips: peak_mips(geometry, ST_CMOS_018),
        // One MAC instruction per Dnode per cycle; ops_per_cycle counts a
        // MAC as two arithmetic operations, so instructions = ops / 2.
        ring_sustained_mips: ops_per_cycle / 2.0 * freq,
        ring_sustained_mops: ops_per_cycle * freq,
        scalar_mips: scalar_run.mips(450.0),
        port_bw_theoretical: peak_port_bandwidth_bytes(geometry, ST_CMOS_018),
        port_bw_measured: words_direct * 2.0 * freq * 1.0e6,
        pci_bw_measured: words_pci * 2.0 * freq * 1.0e6,
    }
}

/// Renders the comparative table.
pub fn render(c: &Comparative) -> String {
    let mut out =
        String::from("Comparative results (§5.1) — Ring-8 at the modelled 0.18um clock\n\n");
    let mut t = TextTable::new(["figure", "measured/model", "paper says"]);
    t.row([
        "Ring-8 clock".to_owned(),
        format!("{:.0} MHz", c.ring_freq_mhz),
        "200 MHz".to_owned(),
    ]);
    t.row([
        "Ring-8 peak (1 op/Dnode/cycle)".to_owned(),
        format!("{:.0} MIPS", c.ring_peak_mips),
        "1600 MIPS".to_owned(),
    ]);
    t.row([
        "Ring-8 sustained (all-Dnode MAC)".to_owned(),
        format!("{:.0} MOPS (MAC = 2 ops)", c.ring_sustained_mops),
        "\"up to two arithmetic operations each clock cycle\"".to_owned(),
    ]);
    t.row([
        "Pentium-II-class scalar model @450 MHz".to_owned(),
        format!("{:.0} MIPS", c.scalar_mips),
        "400 MIPS".to_owned(),
    ]);
    t.row([
        "direct-port bandwidth (theoretical)".to_owned(),
        format!("{:.2} GB/s", c.port_bw_theoretical / 1e9),
        "about 3 GB/s".to_owned(),
    ]);
    t.row([
        "direct-port bandwidth (measured)".to_owned(),
        format!("{:.2} GB/s", c.port_bw_measured / 1e9),
        "-".to_owned(),
    ]);
    t.row([
        "PCI-class link bandwidth (measured)".to_owned(),
        format!("{:.0} MB/s", c.pci_bw_measured / 1e6),
        "250 MB/s".to_owned(),
    ]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparative_figures_match_the_paper_shape() {
        let c = run();
        assert!((c.ring_peak_mips - 1600.0).abs() < 1.0);
        // Sustained MACs: ~2 ops per Dnode per cycle.
        assert!(
            c.ring_sustained_mops > 0.9 * 2.0 * c.ring_peak_mips,
            "sustained = {:.0}",
            c.ring_sustained_mops
        );
        // Scalar anchor in the paper's ballpark.
        assert!((200.0..500.0).contains(&c.scalar_mips));
        // Bandwidths.
        assert!((c.port_bw_theoretical / 1e9 - 3.2).abs() < 0.1);
        assert!(c.port_bw_measured > 0.9 * c.port_bw_theoretical);
        let pci = c.pci_bw_measured / 1e6;
        assert!((200.0..260.0).contains(&pci), "pci = {pci:.0} MB/s");
    }

    #[test]
    fn render_contains_all_rows() {
        let text = render(&run());
        assert!(text.contains("1600 MIPS"));
        assert!(text.contains("250 MB/s"));
        assert!(text.contains("GB/s"));
    }
}
