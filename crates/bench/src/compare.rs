//! The regression comparator behind `srbench-compare` — the CI perf
//! gate.
//!
//! A comparison joins a *baseline* suite (a checked-in `BENCH_*.json`)
//! against a *fresh* run of the same suite on `(workload, tier)` and
//! applies the gating rules of the [record schema](crate::record): only
//! wall-clock-free metrics are compared (simulated cycles, fused
//! coverage, lane occupancy, deopt counts, pass verdicts — all
//! deterministic for a given tree), `mcyc_per_s` is never compared, and
//! any gated metric moving the wrong way by more than the tolerance
//! (default [`DEFAULT_TOLERANCE`] = 10%) is a failure. Rationale for
//! gating on simulated metrics instead of wall-clock is in DESIGN.md
//! §13.
//!
//! Outcomes carry stable codes, continuing the `SR-B` range the parser
//! starts:
//!
//! | code | meaning |
//! |------|---------|
//! | `SR-B101` | baseline file or suite missing |
//! | `SR-B102` | a baseline `(workload, tier)` is absent from the fresh run |
//! | `SR-B103` | a gated metric regressed beyond the tolerance |
//! | `SR-B104` | a `pass: true` baseline turned `false` |
//!
//! A workload present only in the fresh run is *not* a failure — new
//! workloads are how the trajectory grows — but it is reported as a
//! note so the baseline gets regenerated in the same PR. Improvements
//! beyond the tolerance are likewise notes: the gate nags you to
//! re-baseline so the next regression is measured from the better
//! number.

use crate::record::{BenchFile, BenchRecord};

/// Relative tolerance applied to every gated metric: 10%.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// One gate failure, with its stable `SR-B1xx` code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Failure {
    /// Stable code (`SR-B101`..`SR-B104`, see the module docs).
    pub code: &'static str,
    /// Human-readable detail naming the suite, workload, tier and
    /// metric.
    pub message: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// The outcome of comparing one suite (or a whole baseline set).
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// `(workload, tier)` pairs that were compared and passed the gate.
    pub compared: usize,
    /// Non-fatal observations: new workloads, improvements worth
    /// re-baselining.
    pub notes: Vec<String>,
    /// Gate failures; any entry fails CI.
    pub failures: Vec<Failure>,
}

impl Comparison {
    /// `true` when no gate failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Folds another comparison (e.g. the next suite) into this one.
    pub fn merge(&mut self, other: Comparison) {
        self.compared += other.compared;
        self.notes.extend(other.notes);
        self.failures.extend(other.failures);
    }
}

/// Where a gated metric is allowed to move.
enum Direction {
    /// Lower is better (cycles, deopts): an *increase* past tolerance
    /// regresses.
    Lower,
    /// Higher is better (coverage, occupancy): a *decrease* past
    /// tolerance regresses.
    Higher,
    /// Deterministic scheduler counters (preemptions, rejections at a
    /// fixed offered load): a shift past tolerance in *either* direction
    /// regresses — the scheduler changed behavior, and the baseline must
    /// be regenerated deliberately, not drift silently.
    Stable,
}

fn gate_metric(
    out: &mut Comparison,
    context: &str,
    metric: &str,
    baseline: f64,
    fresh: f64,
    tolerance: f64,
    direction: Direction,
) {
    let (regressed, improved) = match direction {
        Direction::Lower => (
            fresh > baseline * (1.0 + tolerance),
            fresh < baseline * (1.0 - tolerance),
        ),
        Direction::Higher => (
            fresh < baseline * (1.0 - tolerance),
            fresh > baseline * (1.0 + tolerance),
        ),
        Direction::Stable => (
            fresh > baseline * (1.0 + tolerance) || fresh < baseline * (1.0 - tolerance),
            false,
        ),
    };
    if regressed {
        out.failures.push(Failure {
            code: "SR-B103",
            message: format!(
                "{context}: {metric} regressed {baseline} -> {fresh} \
                 (tolerance {:.0}%)",
                tolerance * 100.0
            ),
        });
    } else if improved {
        out.notes.push(format!(
            "{context}: {metric} improved {baseline} -> {fresh} — consider regenerating the baseline"
        ));
    }
}

/// Compares one fresh record against its baseline.
fn compare_record(
    out: &mut Comparison,
    suite: &str,
    baseline: &BenchRecord,
    fresh: &BenchRecord,
    tolerance: f64,
) {
    let context = format!("{suite}/{}@{}", baseline.workload, baseline.tier);
    gate_metric(
        out,
        &context,
        "simulated cycles",
        baseline.cycles as f64,
        fresh.cycles as f64,
        tolerance,
        Direction::Lower,
    );
    if let (Some(base), Some(new)) = (baseline.fused_coverage, fresh.fused_coverage) {
        gate_metric(
            out,
            &context,
            "fused coverage",
            base,
            new,
            tolerance,
            Direction::Higher,
        );
    } else if baseline.fused_coverage.is_some() && fresh.fused_coverage.is_none() {
        out.failures.push(Failure {
            code: "SR-B103",
            message: format!("{context}: fused coverage disappeared from the fresh run"),
        });
    }
    if let (Some(base), Some(new)) = (baseline.lane_occupancy, fresh.lane_occupancy) {
        gate_metric(
            out,
            &context,
            "lane occupancy",
            base,
            new,
            tolerance,
            Direction::Higher,
        );
    } else if baseline.lane_occupancy.is_some() && fresh.lane_occupancy.is_none() {
        out.failures.push(Failure {
            code: "SR-B103",
            message: format!("{context}: lane occupancy disappeared from the fresh run"),
        });
    }
    if let (Some(base), Some(new)) = (baseline.deopts, fresh.deopts) {
        // An integer count: from a zero baseline *any* deopt exceeds the
        // relative tolerance, which is exactly the intent.
        gate_metric(
            out,
            &context,
            "deopts",
            base as f64,
            new as f64,
            tolerance,
            Direction::Lower,
        );
    }
    for (metric, base, new) in [
        ("preemptions", baseline.preemptions, fresh.preemptions),
        ("rejected", baseline.rejected, fresh.rejected),
    ] {
        // Scripted-mode scheduler counters: deterministic, so any shift
        // beyond tolerance (from a zero baseline: any shift at all) is a
        // behavior change the gate must surface.
        match (base, new) {
            (Some(base), Some(new)) => gate_metric(
                out,
                &context,
                metric,
                base as f64,
                new as f64,
                tolerance,
                Direction::Stable,
            ),
            (Some(_), None) => out.failures.push(Failure {
                code: "SR-B103",
                message: format!("{context}: {metric} disappeared from the fresh run"),
            }),
            _ => {}
        }
    }
    if baseline.pass == Some(true) && fresh.pass == Some(false) {
        out.failures.push(Failure {
            code: "SR-B104",
            message: format!("{context}: pass verdict flipped true -> false"),
        });
    }
    out.compared += 1;
}

/// Compares a fresh suite against its baseline suite.
///
/// Every baseline `(workload, tier)` must appear in the fresh run
/// (`SR-B102` otherwise); fresh-only rows are reported as notes.
pub fn compare_files(baseline: &BenchFile, fresh: &BenchFile, tolerance: f64) -> Comparison {
    let mut out = Comparison::default();
    for base in &baseline.records {
        match fresh.find(&base.workload, &base.tier) {
            Some(new) => compare_record(&mut out, &baseline.suite, base, new, tolerance),
            None => out.failures.push(Failure {
                code: "SR-B102",
                message: format!(
                    "{}/{}@{}: present in the baseline but missing from the fresh run",
                    baseline.suite, base.workload, base.tier
                ),
            }),
        }
    }
    for new in &fresh.records {
        if baseline.find(&new.workload, &new.tier).is_none() {
            out.notes.push(format!(
                "{}/{}@{}: new workload, not in the baseline — regenerate BENCH_*.json to start tracking it",
                fresh.suite, new.workload, new.tier
            ));
        }
    }
    out
}

/// The `SR-B101` failure for a baseline that could not be loaded.
pub fn missing_baseline(name: &str, detail: &str) -> Failure {
    Failure {
        code: "SR-B101",
        message: format!("baseline {name}: {detail}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, tier: &str, cycles: u64) -> BenchRecord {
        BenchRecord {
            workload: workload.into(),
            geometry: "Ring-16 (4x4)".into(),
            tier: tier.into(),
            cycles,
            mcyc_per_s: Some(2.0),
            ..BenchRecord::default()
        }
    }

    fn suite(records: Vec<BenchRecord>) -> BenchFile {
        BenchFile {
            suite: "test_suite".into(),
            records,
        }
    }

    #[test]
    fn identical_runs_pass() {
        let base = suite(vec![record("w", "fused", 1000)]);
        let cmp = compare_files(&base, &base, DEFAULT_TOLERANCE);
        assert!(cmp.passed());
        assert_eq!(cmp.compared, 1);
        assert!(cmp.notes.is_empty());
    }

    #[test]
    fn cycle_regression_beyond_tolerance_fails() {
        let base = suite(vec![record("w", "fused", 1000)]);
        let fresh = suite(vec![record("w", "fused", 1101)]);
        let cmp = compare_files(&base, &fresh, DEFAULT_TOLERANCE);
        assert!(!cmp.passed());
        assert_eq!(cmp.failures[0].code, "SR-B103");
        assert!(cmp.failures[0].message.contains("simulated cycles"));
    }

    #[test]
    fn cycle_drift_within_tolerance_is_tolerated() {
        let base = suite(vec![record("w", "fused", 1000)]);
        let fresh = suite(vec![record("w", "fused", 1099)]);
        assert!(compare_files(&base, &fresh, DEFAULT_TOLERANCE).passed());
    }

    #[test]
    fn big_improvement_passes_with_a_rebaseline_note() {
        let base = suite(vec![record("w", "fused", 1000)]);
        let fresh = suite(vec![record("w", "fused", 500)]);
        let cmp = compare_files(&base, &fresh, DEFAULT_TOLERANCE);
        assert!(cmp.passed());
        assert!(cmp.notes[0].contains("improved"), "{:?}", cmp.notes);
    }

    #[test]
    fn new_workload_is_a_note_not_a_failure() {
        let base = suite(vec![record("w", "fused", 1000)]);
        let fresh = suite(vec![record("w", "fused", 1000), record("new", "fused", 42)]);
        let cmp = compare_files(&base, &fresh, DEFAULT_TOLERANCE);
        assert!(cmp.passed());
        assert!(cmp.notes.iter().any(|n| n.contains("new workload")));
    }

    #[test]
    fn workload_missing_from_fresh_run_fails() {
        let base = suite(vec![record("w", "fused", 1000), record("gone", "slow", 7)]);
        let fresh = suite(vec![record("w", "fused", 1000)]);
        let cmp = compare_files(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(cmp.failures.len(), 1);
        assert_eq!(cmp.failures[0].code, "SR-B102");
    }

    #[test]
    fn coverage_and_occupancy_gate_downward() {
        let mut base_rec = record("w", "fused", 1000);
        base_rec.fused_coverage = Some(0.9);
        base_rec.lane_occupancy = Some(16.0);
        let mut fresh_rec = base_rec.clone();
        fresh_rec.fused_coverage = Some(0.7);
        fresh_rec.lane_occupancy = Some(12.0);
        let cmp = compare_files(
            &suite(vec![base_rec]),
            &suite(vec![fresh_rec]),
            DEFAULT_TOLERANCE,
        );
        assert_eq!(cmp.failures.len(), 2, "{:?}", cmp.failures);
        assert!(cmp.failures.iter().all(|f| f.code == "SR-B103"));
    }

    #[test]
    fn any_deopt_from_a_zero_baseline_fails() {
        let mut base_rec = record("w", "fused", 1000);
        base_rec.deopts = Some(0);
        let mut fresh_rec = base_rec.clone();
        fresh_rec.deopts = Some(1);
        let cmp = compare_files(
            &suite(vec![base_rec]),
            &suite(vec![fresh_rec]),
            DEFAULT_TOLERANCE,
        );
        assert_eq!(cmp.failures[0].code, "SR-B103");
        assert!(cmp.failures[0].message.contains("deopts"));
    }

    #[test]
    fn pass_flip_fails_with_sr_b104() {
        let mut base_rec = record("w", "slow", 100);
        base_rec.pass = Some(true);
        let mut fresh_rec = base_rec.clone();
        fresh_rec.pass = Some(false);
        let cmp = compare_files(
            &suite(vec![base_rec]),
            &suite(vec![fresh_rec]),
            DEFAULT_TOLERANCE,
        );
        assert_eq!(cmp.failures[0].code, "SR-B104");
    }

    #[test]
    fn wall_clock_throughput_is_never_gated() {
        let base = suite(vec![record("w", "fused", 1000)]);
        let mut fresh = base.clone();
        fresh.records[0].mcyc_per_s = Some(0.0001);
        assert!(compare_files(&base, &fresh, DEFAULT_TOLERANCE).passed());
    }

    #[test]
    fn wall_clock_latency_fields_are_never_gated() {
        let mut base_rec = record("svc", "scripted", 1000);
        base_rec.jobs_per_s = Some(500.0);
        base_rec.p50_ms = Some(2.0);
        base_rec.p99_ms = Some(5.0);
        let mut fresh_rec = base_rec.clone();
        fresh_rec.jobs_per_s = Some(1.0);
        fresh_rec.p50_ms = Some(900.0);
        fresh_rec.p99_ms = None;
        let cmp = compare_files(
            &suite(vec![base_rec]),
            &suite(vec![fresh_rec]),
            DEFAULT_TOLERANCE,
        );
        assert!(cmp.passed(), "{:?}", cmp.failures);
    }

    #[test]
    fn service_counters_gate_shifts_in_both_directions() {
        let mut base_rec = record("svc", "scripted", 1000);
        base_rec.preemptions = Some(4);
        base_rec.rejected = Some(16);
        // Fewer rejections at the same offered load is a failure too: it
        // means the queue quietly grew.
        let mut fresh_rec = base_rec.clone();
        fresh_rec.preemptions = Some(6);
        fresh_rec.rejected = Some(8);
        let cmp = compare_files(
            &suite(vec![base_rec.clone()]),
            &suite(vec![fresh_rec]),
            DEFAULT_TOLERANCE,
        );
        assert_eq!(cmp.failures.len(), 2, "{:?}", cmp.failures);
        assert!(cmp.failures.iter().all(|f| f.code == "SR-B103"));
        // Identical counters pass without notes.
        let cmp = compare_files(
            &suite(vec![base_rec.clone()]),
            &suite(vec![base_rec]),
            DEFAULT_TOLERANCE,
        );
        assert!(cmp.passed());
        assert!(cmp.notes.is_empty());
    }

    #[test]
    fn any_shift_from_a_zero_preemption_baseline_fails() {
        let mut base_rec = record("svc", "scripted", 1000);
        base_rec.preemptions = Some(0);
        let mut fresh_rec = base_rec.clone();
        fresh_rec.preemptions = Some(1);
        let cmp = compare_files(
            &suite(vec![base_rec]),
            &suite(vec![fresh_rec]),
            DEFAULT_TOLERANCE,
        );
        assert_eq!(cmp.failures[0].code, "SR-B103");
        assert!(cmp.failures[0].message.contains("preemptions"));
    }

    #[test]
    fn service_counter_disappearance_fails() {
        let mut base_rec = record("svc", "scripted", 1000);
        base_rec.rejected = Some(16);
        let fresh_rec = record("svc", "scripted", 1000);
        let cmp = compare_files(
            &suite(vec![base_rec]),
            &suite(vec![fresh_rec]),
            DEFAULT_TOLERANCE,
        );
        assert_eq!(cmp.failures[0].code, "SR-B103");
        assert!(cmp.failures[0].message.contains("disappeared"));
    }

    #[test]
    fn missing_baseline_has_a_stable_code() {
        assert_eq!(
            missing_baseline("BENCH_x.json", "no such file").code,
            "SR-B101"
        );
    }
}
