//! The versioned, machine-readable benchmark record — the schema behind
//! every checked-in `BENCH_*.json` file.
//!
//! The bench suite used to print tables and walk away: performance
//! history lived in EXPERIMENTS.md prose and cross-PR regressions were
//! invisible. This module is the fix — one shared record format, written
//! by `report -- json` (the trajectory suites), by `srconform --json`
//! (the conformance matrix) and read back by `srbench-compare` (the CI
//! regression gate) and `report -- experiments-md` (the generated doc
//! tables). Like the rest of the workspace it is std-only: the
//! serializer and parser below are hand-rolled over the small JSON
//! subset the format needs.
//!
//! # File layout
//!
//! ```json
//! {
//!   "schema": "systolic-ring-bench",
//!   "version": 2,
//!   "suite": "table1_motion",
//!   "records": [
//!     {"workload": "table1_motion", "geometry": "Ring-16 (4x4)",
//!      "tier": "fused", "cycles": 1113, "mcyc_per_s": 3.34,
//!      "fused_coverage": 0.5796, "lane_occupancy": 1.0,
//!      "deopts": 0, "pass": null}
//!   ]
//! }
//! ```
//!
//! A file is one *suite* (one `BENCH_*.json`); a suite holds one record
//! per `(workload, tier)` pair, which is the identity the comparator
//! joins baseline and fresh runs on.
//!
//! # Record fields
//!
//! | field | type | meaning | gated by `srbench-compare`? |
//! |-------|------|---------|------------------------------|
//! | `workload` | string | stable workload id (join key) | — |
//! | `geometry` | string | ring shape label, e.g. `Ring-16 (4x4)` | no (informational) |
//! | `tier` | string | execution tier (join key): `slow`, `decoded`, `fused`, `fused_serial`, `lane_fused`, `serial`, `workersN` | — |
//! | `cycles` | integer | simulated cycles — deterministic | yes: >10% increase fails |
//! | `mcyc_per_s` | number \| null | simulated Mcycles per wall-clock second from a representative run | **no** — wall-clock, machine-dependent |
//! | `fused_coverage` | number \| null | `fused_cycles / cycles`, `null` off the fused tier | yes: >10% decrease fails |
//! | `lane_occupancy` | number \| null | `fused_lane_occupancy / fused_cycles`, `null` when nothing fused | yes: >10% decrease fails |
//! | `deopts` | integer \| null | fused-engine deoptimizations | yes: any increase beyond 10% (so any, from a zero baseline) fails |
//! | `pass` | bool \| null | self-check verdict (conformance rows) | yes: `true` → `false` fails |
//! | `jobs_per_s` | number \| null | end-to-end jobs per wall-clock second (service rows) | **no** — wall-clock, machine-dependent |
//! | `p50_ms` | number \| null | median client-observed job latency, milliseconds | **no** — wall-clock, machine-dependent |
//! | `p99_ms` | number \| null | 99th-percentile client-observed job latency, milliseconds | **no** — wall-clock, machine-dependent |
//! | `preemptions` | integer \| null | scheduler preemption events (scripted service runs) | yes: any shift beyond 10% either way fails |
//! | `rejected` | integer \| null | admission rejections at a fixed offered load (scripted) | yes: any shift beyond 10% either way fails |
//!
//! Wall-clock-free metrics (`cycles`, `fused_coverage`,
//! `lane_occupancy`, `deopts`, `pass`, `preemptions`, `rejected`) are
//! deterministic for a given tree, which is what makes the checked-in
//! baselines comparable in CI; `mcyc_per_s`, `jobs_per_s`, `p50_ms` and
//! `p99_ms` are recorded so the generated EXPERIMENTS.md tables have
//! throughput/latency columns, but are never compared (DESIGN.md §13).
//!
//! The five service fields (`jobs_per_s` through `rejected`) are an
//! additive change: they are *omitted* from the emitted JSON — not
//! written as `null` — whenever unmeasured, so suites that predate them
//! keep emitting byte-identical files, and the parser treats a missing
//! key as `None`.
//!
//! # Version-bump policy
//!
//! `version` is a single integer, currently [`VERSION`] (= 2; version 1
//! was the ad-hoc `systolic-ring-conformance-v1` format this schema
//! replaced, and is rejected with `SR-B002`).
//!
//! * **No bump — additive change.** Adding a new field (parsers ignore
//!   unknown keys), adding a new suite file, or adding records/tiers to
//!   an existing suite.
//! * **Bump — breaking change.** Removing or renaming a field, changing
//!   a field's type or units, or changing the meaning of an existing
//!   metric (e.g. what counts as a fused cycle). After a bump the
//!   comparator rejects older files with `SR-B003`; regenerate every
//!   checked-in `BENCH_*.json` in the same commit that bumps
//!   [`VERSION`].
//!
//! # Error codes
//!
//! Parsing rejects bad input with a stable [`RecordError::code`]:
//! `SR-B001` (malformed JSON), `SR-B002` (wrong or legacy schema name),
//! `SR-B003` (unsupported version), `SR-B004` (missing or ill-typed
//! field). The comparator's own codes (`SR-B1xx`) live in
//! [`crate::compare`].

use std::fmt;

use systolic_ring_harness::conformance::ConformanceReport;
use systolic_ring_isa::RingGeometry;

/// Schema identifier written into (and demanded from) every file.
pub const SCHEMA: &str = "systolic-ring-bench";

/// Current schema version (see the module docs for the bump policy).
pub const VERSION: u64 = 2;

/// One benchmark measurement: a `(workload, tier)` row of a suite.
///
/// Field semantics and gating rules are tabulated in the
/// [module docs](self).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchRecord {
    /// Stable workload identifier — half of the comparator's join key.
    pub workload: String,
    /// Ring-shape label (see [`geometry_label`]); informational.
    pub geometry: String,
    /// Execution-tier label — the other half of the join key.
    pub tier: String,
    /// Simulated cycles (deterministic; regression-gated).
    pub cycles: u64,
    /// Simulated Mcycles per wall-clock second from a representative
    /// run; `None` when the run was not timed. Never gated.
    pub mcyc_per_s: Option<f64>,
    /// Fraction of cycles executed inside fused bursts; `None` where the
    /// fused engine was off or not applicable.
    pub fused_coverage: Option<f64>,
    /// Mean lanes per fused cycle; `None` when nothing fused.
    pub lane_occupancy: Option<f64>,
    /// Fused-engine deoptimizations; `None` where not applicable.
    pub deopts: Option<u64>,
    /// Self-check verdict (conformance and batch rows); `None` where the
    /// workload carries no embedded expectation.
    pub pass: Option<bool>,
    /// End-to-end jobs per wall-clock second (service rows); `None` when
    /// untimed. Never gated.
    pub jobs_per_s: Option<f64>,
    /// Median client-observed job latency in milliseconds; `None` when
    /// untimed. Never gated.
    pub p50_ms: Option<f64>,
    /// 99th-percentile client-observed job latency in milliseconds;
    /// `None` when untimed. Never gated.
    pub p99_ms: Option<f64>,
    /// Scheduler preemption events from a scripted (deterministic)
    /// service run; gated both ways — a shift means the scheduler
    /// changed behavior.
    pub preemptions: Option<u64>,
    /// Admission rejections at a fixed offered load (scripted,
    /// deterministic); gated both ways — fewer means the queue grew,
    /// more means capacity shrank.
    pub rejected: Option<u64>,
}

/// One `BENCH_*.json` document: a named suite of [`BenchRecord`]s under
/// the versioned header.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchFile {
    /// Suite name, e.g. `table1_motion` or `conformance`.
    pub suite: String,
    /// The measurements, in deterministic (emission) order.
    pub records: Vec<BenchRecord>,
}

/// A stable-coded error from [`BenchFile::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordError {
    /// Stable error code (`SR-B001`..`SR-B004`; see the module docs).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl RecordError {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        RecordError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for RecordError {}

/// The canonical ring-shape label, e.g. `Ring-16 (4x4)`.
pub fn geometry_label(geometry: RingGeometry) -> String {
    format!(
        "Ring-{} ({}x{})",
        geometry.dnodes(),
        geometry.layers(),
        geometry.width()
    )
}

/// Escapes a string for JSON emission.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an optional float at the schema's fixed 4-decimal precision
/// (fixed so that emit → parse → emit is byte-stable).
fn opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.4}"),
        None => "null".into(),
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".into(),
    }
}

fn opt_bool(v: Option<bool>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".into(),
    }
}

impl BenchRecord {
    /// Emits the record as a single JSON object line (no trailing
    /// newline). The original nine fields are always present, `null`
    /// when unmeasured, so the file documents its own shape; the
    /// service fields are omitted entirely when `None` so pre-service
    /// suites keep emitting byte-identical files.
    fn to_json_line(&self) -> String {
        let mut line = format!(
            "{{\"workload\": \"{}\", \"geometry\": \"{}\", \"tier\": \"{}\", \
             \"cycles\": {}, \"mcyc_per_s\": {}, \"fused_coverage\": {}, \
             \"lane_occupancy\": {}, \"deopts\": {}, \"pass\": {}",
            escape(&self.workload),
            escape(&self.geometry),
            escape(&self.tier),
            self.cycles,
            opt_f64(self.mcyc_per_s),
            opt_f64(self.fused_coverage),
            opt_f64(self.lane_occupancy),
            opt_u64(self.deopts),
            opt_bool(self.pass),
        );
        if let Some(v) = self.jobs_per_s {
            line.push_str(&format!(", \"jobs_per_s\": {v:.4}"));
        }
        if let Some(v) = self.p50_ms {
            line.push_str(&format!(", \"p50_ms\": {v:.4}"));
        }
        if let Some(v) = self.p99_ms {
            line.push_str(&format!(", \"p99_ms\": {v:.4}"));
        }
        if let Some(v) = self.preemptions {
            line.push_str(&format!(", \"preemptions\": {v}"));
        }
        if let Some(v) = self.rejected {
            line.push_str(&format!(", \"rejected\": {v}"));
        }
        line.push('}');
        line
    }
}

impl BenchFile {
    /// Serializes the suite: versioned header, one record per line.
    ///
    /// The output is deterministic and fixed-precision, so emit → parse
    /// → emit round-trips byte-identically — which is what lets the
    /// generated EXPERIMENTS.md tables and the checked-in baselines stay
    /// diffable.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .records
            .iter()
            .map(|r| format!("    {}", r.to_json_line()))
            .collect();
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"version\": {},\n  \"suite\": \"{}\",\n  \
             \"records\": [\n{}\n  ]\n}}\n",
            SCHEMA,
            VERSION,
            escape(&self.suite),
            rows.join(",\n")
        )
    }

    /// Parses a `BENCH_*.json` document, rejecting malformed JSON
    /// (`SR-B001`), foreign or legacy schemas (`SR-B002`), unsupported
    /// versions (`SR-B003`) and missing/ill-typed fields (`SR-B004`).
    /// Unknown keys are ignored (the additive-change rule).
    pub fn parse(text: &str) -> Result<BenchFile, RecordError> {
        let value = json::parse(text).map_err(|e| RecordError::new("SR-B001", e))?;
        let top = value
            .as_object()
            .ok_or_else(|| RecordError::new("SR-B004", "top level is not an object"))?;
        let schema = get_str(top, "schema")?;
        if schema != SCHEMA {
            return Err(RecordError::new(
                "SR-B002",
                format!("schema is \"{schema}\", expected \"{SCHEMA}\" (legacy v1 files must be regenerated)"),
            ));
        }
        let version = get_u64(top, "version")?;
        if version != VERSION {
            return Err(RecordError::new(
                "SR-B003",
                format!("unsupported schema version {version}, this build reads version {VERSION} — regenerate the baseline"),
            ));
        }
        let suite = get_str(top, "suite")?.to_owned();
        let records_value = find(top, "records")
            .ok_or_else(|| RecordError::new("SR-B004", "missing field `records`"))?;
        let rows = records_value
            .as_array()
            .ok_or_else(|| RecordError::new("SR-B004", "`records` is not an array"))?;
        let mut records = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let obj = row.as_object().ok_or_else(|| {
                RecordError::new("SR-B004", format!("record {i} is not an object"))
            })?;
            records.push(BenchRecord {
                workload: get_str(obj, "workload")?.to_owned(),
                geometry: get_str(obj, "geometry")?.to_owned(),
                tier: get_str(obj, "tier")?.to_owned(),
                cycles: get_u64(obj, "cycles")?,
                mcyc_per_s: get_opt_f64(obj, "mcyc_per_s")?,
                fused_coverage: get_opt_f64(obj, "fused_coverage")?,
                lane_occupancy: get_opt_f64(obj, "lane_occupancy")?,
                deopts: get_opt_u64(obj, "deopts")?,
                pass: get_opt_bool(obj, "pass")?,
                jobs_per_s: get_opt_f64(obj, "jobs_per_s")?,
                p50_ms: get_opt_f64(obj, "p50_ms")?,
                p99_ms: get_opt_f64(obj, "p99_ms")?,
                preemptions: get_opt_u64(obj, "preemptions")?,
                rejected: get_opt_u64(obj, "rejected")?,
            });
        }
        Ok(BenchFile { suite, records })
    }

    /// The record for `(workload, tier)`, if present.
    pub fn find(&self, workload: &str, tier: &str) -> Option<&BenchRecord> {
        self.records
            .iter()
            .find(|r| r.workload == workload && r.tier == tier)
    }
}

/// Converts a conformance run into the shared record format — this is
/// what `srconform --json` writes as `BENCH_conformance.json`: one
/// record per `(program, tier)` with the program's simulated cycle count
/// and self-check verdict (`pass` folds in the case-level lint gate and
/// cross-tier equality checks).
pub fn conformance_file(report: &ConformanceReport) -> BenchFile {
    let mut records = Vec::new();
    for case in &report.cases {
        for tier in &case.tiers {
            records.push(BenchRecord {
                workload: case.name.clone(),
                geometry: geometry_label(case.geometry),
                tier: tier.tier.to_string(),
                cycles: tier.cycles,
                pass: Some(tier.passed() && case.failures.is_empty()),
                ..BenchRecord::default()
            });
        }
    }
    BenchFile {
        suite: "conformance".into(),
        records,
    }
}

fn find<'a>(obj: &'a [(String, json::Value)], key: &str) -> Option<&'a json::Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str<'a>(obj: &'a [(String, json::Value)], key: &str) -> Result<&'a str, RecordError> {
    find(obj, key)
        .and_then(json::Value::as_str)
        .ok_or_else(|| RecordError::new("SR-B004", format!("missing or non-string field `{key}`")))
}

fn get_u64(obj: &[(String, json::Value)], key: &str) -> Result<u64, RecordError> {
    find(obj, key)
        .and_then(json::Value::as_u64)
        .ok_or_else(|| RecordError::new("SR-B004", format!("missing or non-integer field `{key}`")))
}

fn get_opt_f64(obj: &[(String, json::Value)], key: &str) -> Result<Option<f64>, RecordError> {
    match find(obj, key) {
        None | Some(json::Value::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| RecordError::new("SR-B004", format!("field `{key}` is not a number"))),
    }
}

fn get_opt_u64(obj: &[(String, json::Value)], key: &str) -> Result<Option<u64>, RecordError> {
    match find(obj, key) {
        None | Some(json::Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| RecordError::new("SR-B004", format!("field `{key}` is not an integer"))),
    }
}

fn get_opt_bool(obj: &[(String, json::Value)], key: &str) -> Result<Option<bool>, RecordError> {
    match find(obj, key) {
        None | Some(json::Value::Null) => Ok(None),
        Some(json::Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(RecordError::new(
            "SR-B004",
            format!("field `{key}` is not a boolean"),
        )),
    }
}

/// A minimal recursive-descent JSON parser over the subset the record
/// format emits (objects, arrays, strings with escapes, numbers,
/// booleans, `null`). Std-only by design — see DESIGN.md §5.
mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (parsed as `f64`).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order (duplicate keys keep the first).
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
                Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
                None => Err("unexpected end of input".into()),
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| format!("bad number at byte {start}"))?;
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number `{text}` at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_owned())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| format!("bad code point {code}"))?,
                                );
                                self.pos += 4;
                            }
                            other => {
                                return Err(format!("bad escape {other:?}"));
                            }
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 character (the input is a &str,
                        // so boundaries are valid).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid UTF-8".to_owned())?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields: Vec<(String, Value)> = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                if !fields.iter().any(|(k, _)| *k == key) {
                    fields.push((key, value));
                }
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchFile {
        BenchFile {
            suite: "table1_motion".into(),
            records: vec![
                BenchRecord {
                    workload: "table1_motion".into(),
                    geometry: geometry_label(RingGeometry::RING_16),
                    tier: "slow".into(),
                    cycles: 1113,
                    mcyc_per_s: Some(1.4412),
                    ..BenchRecord::default()
                },
                BenchRecord {
                    workload: "table1_motion".into(),
                    geometry: geometry_label(RingGeometry::RING_16),
                    tier: "fused".into(),
                    cycles: 1113,
                    mcyc_per_s: Some(3.3391),
                    fused_coverage: Some(0.5796),
                    lane_occupancy: Some(1.0),
                    deopts: Some(0),
                    pass: Some(true),
                    ..BenchRecord::default()
                },
            ],
        }
    }

    #[test]
    fn round_trips_byte_identically() {
        let file = sample();
        let json = file.to_json();
        let parsed = BenchFile::parse(&json).expect("parses");
        assert_eq!(parsed, file);
        assert_eq!(parsed.to_json(), json, "emit must be byte-stable");
    }

    #[test]
    fn header_fields_are_emitted() {
        let json = sample().to_json();
        assert!(json.contains("\"schema\": \"systolic-ring-bench\""));
        assert!(json.contains(&format!("\"version\": {VERSION}")));
        assert!(json.contains("\"suite\": \"table1_motion\""));
    }

    #[test]
    fn malformed_json_is_sr_b001() {
        let err = BenchFile::parse("{\"schema\": ").unwrap_err();
        assert_eq!(err.code, "SR-B001");
        let err = BenchFile::parse("{} trailing").unwrap_err();
        assert_eq!(err.code, "SR-B001");
    }

    #[test]
    fn legacy_v1_schema_is_sr_b002() {
        let legacy = "{\"schema\": \"systolic-ring-conformance-v1\", \"version\": 1, \
                      \"suite\": \"x\", \"records\": []}";
        let err = BenchFile::parse(legacy).unwrap_err();
        assert_eq!(err.code, "SR-B002");
        assert!(err.message.contains("legacy"), "{err}");
    }

    #[test]
    fn old_version_is_sr_b003() {
        let old = format!(
            "{{\"schema\": \"{SCHEMA}\", \"version\": 1, \"suite\": \"x\", \"records\": []}}"
        );
        let err = BenchFile::parse(&old).unwrap_err();
        assert_eq!(err.code, "SR-B003");
    }

    #[test]
    fn missing_field_is_sr_b004() {
        let bad = format!(
            "{{\"schema\": \"{SCHEMA}\", \"version\": {VERSION}, \"suite\": \"x\", \
             \"records\": [{{\"workload\": \"w\"}}]}}"
        );
        let err = BenchFile::parse(&bad).unwrap_err();
        assert_eq!(err.code, "SR-B004");
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let mut json = sample().to_json();
        json = json.replace(
            "\"tier\": \"slow\"",
            "\"tier\": \"slow\", \"future_field\": [1, {\"nested\": null}]",
        );
        let parsed = BenchFile::parse(&json).expect("additive change must parse");
        assert_eq!(parsed, sample());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut file = sample();
        file.records[0].workload = "weird \"name\"\twith\\stuff\n".into();
        let parsed = BenchFile::parse(&file.to_json()).expect("parses");
        assert_eq!(parsed, file);
    }

    #[test]
    fn service_fields_are_omitted_when_unmeasured() {
        // The emitted lines must not mention the service keys at all, so
        // pre-service baselines stay byte-identical across regeneration.
        let json = sample().to_json();
        for key in ["jobs_per_s", "p50_ms", "p99_ms", "preemptions", "rejected"] {
            assert!(!json.contains(key), "unexpected `{key}` in:\n{json}");
        }
    }

    #[test]
    fn service_fields_round_trip_byte_identically() {
        let mut file = sample();
        file.records[1].jobs_per_s = Some(123.4567);
        file.records[1].p50_ms = Some(4.25);
        file.records[1].p99_ms = Some(19.5);
        file.records[1].preemptions = Some(3);
        file.records[1].rejected = Some(17);
        let json = file.to_json();
        let parsed = BenchFile::parse(&json).expect("parses");
        assert_eq!(parsed, file);
        assert_eq!(parsed.to_json(), json, "emit must be byte-stable");
    }

    #[test]
    fn find_joins_on_workload_and_tier() {
        let file = sample();
        assert!(file.find("table1_motion", "fused").is_some());
        assert!(file.find("table1_motion", "decoded").is_none());
        assert!(file.find("nope", "slow").is_none());
    }
}
