//! The `service` trajectory suite: deterministic scripted runs of the
//! multi-tenant scheduler (`systolic_ring_server::Service`), recorded in
//! the shared [`crate::record`] schema as `BENCH_service.json`.
//!
//! Three scenarios cover the service's headline promises:
//!
//! | workload | what it tracks |
//! |----------|----------------|
//! | `service_pack16` | 16 tenants with identical objects packed into one 16-lane lockstep group, every result bit-identical to its solo run |
//! | `service_preempt` | interactive bursts preempting a long batch job at slice boundaries, batch result bit-identical after 4 checkpoint/resume cycles |
//! | `service_saturate2x` | a 2x-saturating offered load against a bounded queue: deterministic rejection count, bounded depth, zero lost jobs |
//!
//! Every gated number (simulated cycles, lane occupancy, preemption and
//! rejection counts, the pass verdict) comes from the *scripted*
//! scheduler mode, which never consults a wall clock — so the checked-in
//! baseline is exactly reproducible and `srbench-compare` can gate it in
//! CI. When a [`WallClock`] is given, the same offered load is replayed
//! against a *threaded* service (worker threads + one client thread per
//! job) to fill the informational `jobs_per_s` / `p50_ms` / `p99_ms` /
//! `mcyc_per_s` columns; those are never gated.
//!
//! The demo workload ([`demo_object`]) is the increment-stream object the
//! server integration tests use; [`demo_inputs`] is shared with the
//! `srload` open-loop load generator so the suite, the smoke gate and the
//! tests all drive the service with the same job shape.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use systolic_ring_core::MachineParams;
use systolic_ring_harness::admission::{AdmissionConfig, JobClass};
use systolic_ring_harness::job::{CycleBudget, Job, JobOutcome};
use systolic_ring_harness::preempt::RunningJob;
use systolic_ring_isa::ctrl::CtrlInstr;
use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand};
use systolic_ring_isa::object::{Object, Preload};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};
use systolic_ring_server::{JobStatus, Service, ServiceConfig, SubmitError};

use crate::record::{geometry_label, BenchFile, BenchRecord};
use crate::trajectory::WallClock;

/// The increment-stream object shared by the service suite, `srload`
/// and the server integration tests: Dnode (0,0) computes `in + 1` from
/// host port (0,0), captured at switch 1 port 0, on a Ring-8.
pub fn demo_object() -> Object {
    let instr = MicroInstr::op(AluOp::Add, Operand::In1, Operand::One).write_out();
    Object {
        geometry: Some(RingGeometry::RING_8),
        contexts: 0,
        code: vec![CtrlInstr::Halt.encode()],
        data: vec![],
        preload: vec![
            Preload::SwitchPort {
                ctx: 0,
                switch: 0,
                lane: 0,
                input: 0,
                word: PortSource::HostIn { port: 0 }.encode(),
            },
            Preload::DnodeInstr {
                ctx: 0,
                dnode: 0,
                word: instr.encode(),
            },
            Preload::HostCapture {
                ctx: 0,
                switch: 1,
                port: 0,
                word: HostCapture::lane(0).encode(),
            },
        ],
    }
}

/// The 48-word input stream a demo job consumes, offset by `base` so
/// every tenant's answer is distinguishable.
pub fn demo_inputs(base: i16) -> Vec<i16> {
    (0..48).map(|i| base + i).collect()
}

/// One entry of an offered load: who submits what.
#[derive(Clone, Debug)]
struct LoadSpec {
    tenant: String,
    class: JobClass,
    base: i16,
    cycles: u64,
}

impl LoadSpec {
    fn batch(tenant: impl Into<String>, base: i16, cycles: u64) -> LoadSpec {
        LoadSpec {
            tenant: tenant.into(),
            class: JobClass::Batch,
            base,
            cycles,
        }
    }

    fn job(&self) -> Job {
        Job::from_object(
            self.tenant.clone(),
            RingGeometry::RING_8,
            MachineParams::PAPER,
            demo_object(),
            CycleBudget::Cycles(self.cycles),
        )
        .with_input(
            0,
            0,
            demo_inputs(self.base).into_iter().map(Word16::from_i16),
        )
        .with_sink(1, 0)
    }
}

/// The uncontended single-job result the service must reproduce.
fn solo_outcome(job: &Job) -> JobOutcome {
    let mut running = RunningJob::start(job).expect("demo job starts");
    while !running.is_done() {
        running.advance(u64::MAX);
    }
    running.finish()
}

/// The bit-exact sink streams a solo local run of the demo job produces.
/// This is what `srload` verifies every completed service job against:
/// the raw capture stream includes pipeline warmup and post-stream idle
/// words, so the reference is a simulation, not a formula.
pub fn expected_outputs(base: i16, cycles: u64) -> Vec<Vec<i16>> {
    match solo_outcome(&LoadSpec::batch("solo", base, cycles).job()) {
        JobOutcome::Completed(out) => out.outputs,
        other => panic!("solo demo job failed: {other:?}"),
    }
}

/// Outputs + cycles equality — the preemption-equivalence contract
/// (recovery and engine counters legitimately differ).
fn same_result(got: Option<JobStatus>, want: &JobOutcome) -> bool {
    match (got, want) {
        (Some(JobStatus::Done(JobOutcome::Completed(a))), JobOutcome::Completed(b)) => {
            a.outputs == b.outputs && a.cycles == b.cycles
        }
        _ => false,
    }
}

/// Wall-clock metrics from replaying an offered load against a threaded
/// service. Informational only — never gated.
struct TimedLoad {
    jobs_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    mcyc_per_s: f64,
}

/// Nearest-rank percentile of a sorted latency list.
fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    let rank = ((sorted.len() as f64 * pct).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One threaded replay: worker threads run the scheduler, one client
/// thread per spec submits (retrying on backpressure after the hinted
/// delay) and waits for its job to settle.
fn run_threaded(
    config: ServiceConfig,
    workers: usize,
    specs: &[LoadSpec],
) -> (Duration, Vec<Duration>, u64) {
    let service = Arc::new(Service::new(config));
    let worker_handles: Vec<_> = (0..workers.max(1))
        .map(|_| {
            let service = Arc::clone(&service);
            thread::spawn(move || service.run_worker())
        })
        .collect();
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(specs.len());
    thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| {
                let service = &service;
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let ticket = loop {
                        match service.submit(&spec.tenant, spec.class, spec.job(), None) {
                            Ok(ok) => break ok.ticket,
                            Err(SubmitError::Rejected { retry_after_ms, .. }) => {
                                thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 100)))
                            }
                            Err(SubmitError::Invalid(msg)) => panic!("invalid demo job: {msg}"),
                        }
                    };
                    service.wait(ticket, Duration::from_secs(60));
                    t0.elapsed()
                })
            })
            .collect();
        for handle in handles {
            latencies.push(handle.join().expect("client thread"));
        }
    });
    let wall = started.elapsed();
    let advanced = service.stats().advanced_cycles;
    service.drain();
    service.wait_drained();
    for handle in worker_handles {
        let _ = handle.join();
    }
    (wall, latencies, advanced)
}

/// Replays the offered load `wall.warmup` untimed + `wall.iters` timed
/// times and pools the per-job latencies across the timed repetitions.
fn timed_load(
    wall: WallClock,
    config: ServiceConfig,
    workers: usize,
    specs: &[LoadSpec],
) -> TimedLoad {
    for _ in 0..wall.warmup {
        run_threaded(config, workers, specs);
    }
    let mut total_wall = Duration::ZERO;
    let mut total_advanced = 0u64;
    let mut latencies = Vec::new();
    for _ in 0..wall.iters.max(1) {
        let (elapsed, lat, advanced) = run_threaded(config, workers, specs);
        total_wall += elapsed;
        total_advanced += advanced;
        latencies.extend(lat);
    }
    latencies.sort();
    let secs = total_wall.as_secs_f64().max(1e-9);
    TimedLoad {
        jobs_per_s: latencies.len() as f64 / secs,
        p50_ms: percentile(&latencies, 0.50).as_secs_f64() * 1e3,
        p99_ms: percentile(&latencies, 0.99).as_secs_f64() * 1e3,
        mcyc_per_s: total_advanced as f64 / secs / 1e6,
    }
}

/// Assembles one suite row from the scripted counters plus the optional
/// timed replay.
fn service_record(
    workload: &str,
    service: &Service,
    pass: bool,
    timed: Option<TimedLoad>,
) -> BenchRecord {
    let stats = service.stats();
    BenchRecord {
        workload: workload.into(),
        geometry: geometry_label(RingGeometry::RING_8),
        tier: "scripted".into(),
        cycles: stats.advanced_cycles,
        mcyc_per_s: timed.as_ref().map(|t| t.mcyc_per_s),
        lane_occupancy: Some(stats.lane_occupancy()),
        pass: Some(pass),
        jobs_per_s: timed.as_ref().map(|t| t.jobs_per_s),
        p50_ms: timed.as_ref().map(|t| t.p50_ms),
        p99_ms: timed.as_ref().map(|t| t.p99_ms),
        preemptions: Some(stats.preemptions),
        rejected: Some(stats.admission.rejected()),
        ..BenchRecord::default()
    }
}

/// `service_pack16`: 16 tenants submit identical-object jobs; the
/// scheduler must pack them into one 16-lane lockstep group and every
/// tenant's result must be bit-identical to its uncontended solo run.
fn pack16(wall: Option<WallClock>) -> BenchRecord {
    let config = ServiceConfig::default();
    let specs: Vec<LoadSpec> = (0..16)
        .map(|i| LoadSpec::batch(format!("tenant-{i:02}"), 100 * (i + 1), 2048))
        .collect();
    let service = Service::new(config);
    let mut tickets = Vec::new();
    for spec in &specs {
        let baseline = solo_outcome(&spec.job());
        let ok = service
            .submit(&spec.tenant, spec.class, spec.job(), None)
            .expect("pack16 load fits the default queue");
        tickets.push((ok.ticket, baseline));
    }
    service.run_idle();
    let stats = service.stats();
    let pass = tickets
        .iter()
        .all(|(ticket, baseline)| same_result(service.status(*ticket), baseline))
        && stats.completed == specs.len() as u64
        // The whole point of the row: all 16 lanes shared every cycle.
        && stats.lane_occupancy() > 15.9;
    let timed = wall.map(|w| timed_load(w, config, 2, &specs));
    service_record("service_pack16", &service, pass, timed)
}

/// `service_preempt`: a long batch job is preempted by four interactive
/// bursts at 256-cycle slice boundaries and must resume bit-identically
/// each time.
fn preempt(wall: Option<WallClock>) -> BenchRecord {
    let config = ServiceConfig {
        slice_cycles: 256,
        ..ServiceConfig::default()
    };
    let batch_spec = LoadSpec::batch("batch-tenant", 10, 4096);
    let interactive_specs: Vec<LoadSpec> = (0..4)
        .map(|i| LoadSpec {
            tenant: "urgent".into(),
            class: JobClass::Interactive,
            base: 500 + 10 * i,
            cycles: 256,
        })
        .collect();

    let service = Service::new(config);
    let batch_baseline = solo_outcome(&batch_spec.job());
    let batch = service
        .submit(&batch_spec.tenant, batch_spec.class, batch_spec.job(), None)
        .expect("admitted");
    assert!(service.tick(), "batch unit claims");
    let mut interactive = Vec::new();
    for spec in &interactive_specs {
        let baseline = solo_outcome(&spec.job());
        let ok = service
            .submit(&spec.tenant, spec.class, spec.job(), None)
            .expect("admitted");
        interactive.push((ok.ticket, baseline));
        // Park the batch unit, run the burst, resume the batch unit.
        for _ in 0..3 {
            assert!(service.tick(), "scripted preemption step");
        }
    }
    service.run_idle();
    let pass = same_result(service.status(batch.ticket), &batch_baseline)
        && interactive
            .iter()
            .all(|(ticket, baseline)| same_result(service.status(*ticket), baseline))
        && service.stats().preemptions == interactive_specs.len() as u64;
    let timed = wall.map(|w| {
        let mut specs = vec![batch_spec.clone()];
        specs.extend(interactive_specs.iter().cloned());
        timed_load(w, config, 2, &specs)
    });
    service_record("service_preempt", &service, pass, timed)
}

/// `service_saturate2x`: four tenants offer jobs at twice the rate the
/// scripted scheduler drains them against a bounded queue (capacity 8,
/// quota 2). The rejection count is deterministic, the queue depth stays
/// bounded, and every *admitted* job completes bit-identically — overload
/// is refused at the front door, never absorbed or lost.
fn saturate2x(wall: Option<WallClock>) -> BenchRecord {
    let config = ServiceConfig {
        admission: AdmissionConfig {
            queue_capacity: 8,
            tenant_quota: 2,
            est_job_ms: 10,
        },
        ..ServiceConfig::default()
    };
    let specs: Vec<LoadSpec> = (0..64)
        .map(|i| LoadSpec::batch(format!("tenant-{}", i % 4), 10 * (i + 1), 2048))
        .collect();
    let service = Service::new(config);
    let mut admitted = Vec::new();
    let mut rejected = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        match service.submit(&spec.tenant, spec.class, spec.job(), None) {
            Ok(ok) => admitted.push((ok.ticket, solo_outcome(&spec.job()))),
            Err(SubmitError::Rejected { .. }) => rejected += 1,
            Err(SubmitError::Invalid(msg)) => panic!("invalid demo job: {msg}"),
        }
        // One scheduling step per four offers. Each two-slice group needs
        // two ticks to retire, so the offered load is twice what the
        // scripted scheduler can drain — sustained 2x saturation.
        if i % 4 == 3 {
            service.tick();
        }
    }
    service.run_idle();
    let stats = service.stats();
    let pass = admitted
        .iter()
        .all(|(ticket, baseline)| same_result(service.status(*ticket), baseline))
        && stats.completed == admitted.len() as u64
        && stats.admission.rejected() == rejected
        && admitted.len() as u64 + rejected == specs.len() as u64
        && rejected > 0
        && stats.admission.max_depth <= config.admission.queue_capacity;
    let timed = wall.map(|w| timed_load(w, config, 2, &specs));
    service_record("service_saturate2x", &service, pass, timed)
}

/// The `service` trajectory suite (see the module docs).
pub fn suite(wall: Option<WallClock>) -> BenchFile {
    BenchFile {
        suite: "service".into(),
        records: vec![pack16(wall), preempt(wall), saturate2x(wall)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_suite_is_deterministic_and_passes() {
        let a = suite(None);
        let b = suite(None);
        assert_eq!(a, b, "scripted records must be exactly reproducible");
        assert_eq!(a.suite, "service");
        let workloads: Vec<&str> = a.records.iter().map(|r| r.workload.as_str()).collect();
        assert_eq!(
            workloads,
            ["service_pack16", "service_preempt", "service_saturate2x"]
        );
        for record in &a.records {
            assert_eq!(record.tier, "scripted", "{}", record.workload);
            assert_eq!(record.pass, Some(true), "{} failed", record.workload);
            assert!(record.cycles > 0, "{}", record.workload);
            assert!(record.mcyc_per_s.is_none(), "untimed run grew wall data");
            assert!(record.jobs_per_s.is_none(), "untimed run grew wall data");
        }
        let pack = a.find("service_pack16", "scripted").unwrap();
        assert!(pack.lane_occupancy.unwrap() > 15.9, "16-lane packing lost");
        assert_eq!(pack.rejected, Some(0));
        let preempt = a.find("service_preempt", "scripted").unwrap();
        assert_eq!(preempt.preemptions, Some(4));
        let saturated = a.find("service_saturate2x", "scripted").unwrap();
        assert!(
            saturated.rejected.unwrap() > 0,
            "2x load never backpressured"
        );
    }

    #[test]
    fn timed_replay_fills_only_ungated_columns() {
        let quick = WallClock {
            warmup: 0,
            iters: 1,
        };
        let untimed = pack16(None);
        let timed = pack16(Some(quick));
        assert!(timed.jobs_per_s.unwrap() > 0.0);
        assert!(timed.p50_ms.unwrap() > 0.0);
        assert!(timed.p99_ms.unwrap() >= timed.p50_ms.unwrap());
        assert!(timed.mcyc_per_s.unwrap() > 0.0);
        // The gated columns are identical with and without timing: they
        // come from the scripted run alone.
        let strip = |mut r: BenchRecord| {
            r.mcyc_per_s = None;
            r.jobs_per_s = None;
            r.p50_ms = None;
            r.p99_ms = None;
            r
        };
        assert_eq!(strip(timed), strip(untimed));
    }
}
