//! `srbench-compare` — the perf-trajectory regression gate.
//!
//! ```sh
//! srbench-compare [--baseline <dir>] [--fresh <dir>] [--tolerance <fraction>]
//! ```
//!
//! Without `--fresh`, re-runs every trajectory suite **and** the
//! conformance corpus in-process (wall-clock-free: no timing loops) and
//! compares the results against the checked-in `BENCH_*.json` baselines
//! under `--baseline` (default `.`). With `--fresh`, compares the
//! `BENCH_*.json` files found in that directory instead — the mode
//! `ci.sh` uses to smoke-test that `report -- json` output round-trips
//! through the comparator.
//!
//! Only wall-clock-free metrics are gated (simulated cycles, fused
//! coverage, lane occupancy, deopts, pass verdicts); `mcyc_per_s` is
//! informational. Any gated metric regressing by more than the
//! tolerance (default 10%) fails with a stable `SR-B1xx` code; see
//! `systolic_ring_bench::compare` for the code table and DESIGN.md §13
//! for why the gate is wall-clock-free.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use systolic_ring_bench::compare::{self, Comparison, DEFAULT_TOLERANCE};
use systolic_ring_bench::record::{conformance_file, BenchFile};
use systolic_ring_bench::trajectory::{self, CONFORMANCE_FILE, TRAJECTORY_FILES};
use systolic_ring_harness::conformance;

fn usage() -> ExitCode {
    eprintln!("usage: srbench-compare [--baseline <dir>] [--fresh <dir>] [--tolerance <fraction>]");
    ExitCode::from(2)
}

fn load(dir: &Path, name: &str) -> Result<BenchFile, String> {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{e}"))?;
    BenchFile::parse(&text).map_err(|e| e.to_string())
}

/// Compares one suite's fresh run against its baseline file, folding
/// `SR-B101` in when the baseline is unreadable.
fn gate_suite(
    out: &mut Comparison,
    baseline_dir: &Path,
    name: &str,
    fresh: &BenchFile,
    tolerance: f64,
) {
    match load(baseline_dir, name) {
        Ok(baseline) => out.merge(compare::compare_files(&baseline, fresh, tolerance)),
        Err(detail) => out.failures.push(compare::missing_baseline(name, &detail)),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_dir = PathBuf::from(".");
    let mut fresh_dir: Option<PathBuf> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(path) => baseline_dir = PathBuf::from(path),
                None => return usage(),
            },
            "--fresh" => match it.next() {
                Some(path) => fresh_dir = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "--tolerance" => match it.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => tolerance = t,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let mut outcome = Comparison::default();
    match fresh_dir {
        Some(fresh) => {
            // File mode: gate every suite file present in the fresh dir.
            let mut seen = 0usize;
            for (_, name) in TRAJECTORY_FILES.iter().chain([&("", CONFORMANCE_FILE)]) {
                match load(&fresh, name) {
                    Ok(file) => {
                        seen += 1;
                        gate_suite(&mut outcome, &baseline_dir, name, &file, tolerance);
                    }
                    Err(_) => println!("srbench-compare: {name} not in fresh dir, skipped"),
                }
            }
            if seen == 0 {
                eprintln!(
                    "srbench-compare: no BENCH_*.json found under {}",
                    fresh.display()
                );
                return ExitCode::FAILURE;
            }
        }
        None => {
            // In-process mode: fresh-run every suite, wall-clock-free.
            for (suite, name) in TRAJECTORY_FILES {
                println!("srbench-compare: running suite {suite}");
                let fresh = trajectory::run_suite(suite, None).expect("known suite");
                gate_suite(&mut outcome, &baseline_dir, name, &fresh, tolerance);
            }
            println!("srbench-compare: running suite conformance");
            match conformance::run_dir(Path::new("programs")) {
                Ok(report) => gate_suite(
                    &mut outcome,
                    &baseline_dir,
                    CONFORMANCE_FILE,
                    &conformance_file(&report),
                    tolerance,
                ),
                Err(e) => {
                    eprintln!("srbench-compare: conformance run failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    for note in &outcome.notes {
        println!("srbench-compare: note: {note}");
    }
    for failure in &outcome.failures {
        eprintln!("srbench-compare: FAIL {failure}");
    }
    println!(
        "srbench-compare: {} records compared, {} notes, {} failures (tolerance {:.0}%)",
        outcome.compared,
        outcome.notes.len(),
        outcome.failures.len(),
        tolerance * 100.0
    );
    if outcome.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
