//! `srload` — an open-loop load generator for the `srserved` service.
//!
//! ```text
//! srload --addr HOST:PORT [--jobs N] [--rate JOBS_PER_S] [--tenants N]
//!        [--cycles N] [--out PATH] [--drain]
//! ```
//!
//! Submits `--jobs` demo jobs (the shared increment-stream object, see
//! `systolic_ring_bench::service`) from `--tenants` round-robin tenants
//! at a fixed arrival rate. The loop is *open*: arrivals are scheduled
//! from the start time, not from responses, so a slow service cannot
//! slow the offered load down — backpressure shows up as 429s, which are
//! counted and **not retried**, exactly the overload behavior the
//! service promises to survive. Latency is measured from the intended
//! arrival time to settlement, so queueing delay counts against the
//! service.
//!
//! The summary (jobs/s, p50/p99 latency, rejection and fault counts,
//! plus the server's own `/v1/stats` counters) is printed and, with
//! `--out`, written in the shared `BENCH_*.json` record schema — the
//! wall-clock fields of that file are informational and never gated, so
//! the output belongs in a scratch directory, not next to the checked-in
//! baselines. With `--drain` the server is drained afterwards; its clean
//! exit is the CI smoke gate's proof of graceful shutdown.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use systolic_ring_bench::record::{BenchFile, BenchRecord};
use systolic_ring_bench::service::{demo_inputs, demo_object, expected_outputs};
use systolic_ring_server::{Client, Submit, SubmitSpec};

struct Args {
    addr: SocketAddr,
    jobs: usize,
    rate: f64,
    tenants: usize,
    cycles: u64,
    out: Option<String>,
    drain: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = None;
    let mut jobs = 32usize;
    let mut rate = 100.0f64;
    let mut tenants = 4usize;
    let mut cycles = 2048u64;
    let mut out = None;
    let mut drain = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => {
                addr = Some(
                    value("--addr")?
                        .parse::<SocketAddr>()
                        .map_err(|e| format!("--addr: {e}"))?,
                )
            }
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--rate" => {
                rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--tenants" => {
                tenants = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?
            }
            "--cycles" => {
                cycles = value("--cycles")?
                    .parse()
                    .map_err(|e| format!("--cycles: {e}"))?
            }
            "--out" => out = Some(value("--out")?),
            "--drain" => drain = true,
            "--help" | "-h" => {
                return Err(
                    "usage: srload --addr HOST:PORT [--jobs N] [--rate JOBS_PER_S] \
                            [--tenants N] [--cycles N] [--out PATH] [--drain]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    let addr = addr.ok_or("--addr HOST:PORT is required (try --help)")?;
    if jobs == 0 || rate <= 0.0 || tenants == 0 || cycles == 0 {
        return Err("--jobs, --rate, --tenants and --cycles must be positive".into());
    }
    Ok(Args {
        addr,
        jobs,
        rate,
        tenants,
        cycles,
        out,
        drain,
    })
}

/// One job's fate, as the client saw it.
enum Fate {
    Completed(Duration),
    Faulted(Duration),
    Rejected,
    /// Transport or protocol error — the one outcome that fails srload.
    Lost(String),
}

fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    let rank = ((sorted.len() as f64 * pct).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("srload: {msg}");
            return ExitCode::from(2);
        }
    };
    let client = Client::new(args.addr).with_timeout(Duration::from_secs(60));
    if !client.health().unwrap_or(false) {
        eprintln!("srload: {} is not serving /healthz", args.addr);
        return ExitCode::FAILURE;
    }
    let object = demo_object();
    let interarrival = Duration::from_secs_f64(1.0 / args.rate);
    let start = Instant::now();
    let settled_cycles = AtomicU64::new(0);

    let mut fates = Vec::with_capacity(args.jobs);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..args.jobs)
            .map(|i| {
                let (client, object) = (&client, &object);
                let settled_cycles = &settled_cycles;
                scope.spawn(move || {
                    // Open loop: arrival i is scheduled from the start
                    // time; latency is measured from that intent.
                    let arrival = start + interarrival * i as u32;
                    if let Some(lead) = arrival.checked_duration_since(Instant::now()) {
                        thread::sleep(lead);
                    }
                    let base = (i % 1024) as i16;
                    let spec =
                        SubmitSpec::new(format!("load-{}", i % args.tenants), object, args.cycles)
                            .input(0, 0, &demo_inputs(base))
                            .sink(1, 0);
                    // A completed job's sink stream must be bit-identical
                    // to an uncontended local run of the same job — a
                    // wrong answer is a lost job, not a completion. Bases
                    // differ per job, so cross-tenant mixups can't pass.
                    let expected = expected_outputs(base, args.cycles);
                    let verified =
                        |status: &systolic_ring_server::TicketStatus| status.outputs == expected;
                    let ticket = match client.submit(spec) {
                        Ok(Submit::Accepted { ticket, .. }) => ticket,
                        Ok(Submit::Done(status)) => {
                            return match status.status.as_str() {
                                "completed" if verified(&status) => {
                                    Fate::Completed(arrival.elapsed())
                                }
                                "completed" => Fate::Lost(format!("job {i}: wrong sink output")),
                                _ => Fate::Faulted(arrival.elapsed()),
                            }
                        }
                        Ok(Submit::Rejected { .. }) => return Fate::Rejected,
                        Ok(Submit::Invalid(msg)) => return Fate::Lost(format!("400: {msg}")),
                        Err(e) => return Fate::Lost(format!("submit: {e}")),
                    };
                    match client.wait_settled(ticket, Duration::from_secs(120)) {
                        Ok(status) if status.status == "completed" => {
                            if !verified(&status) {
                                return Fate::Lost(format!("ticket {ticket}: wrong sink output"));
                            }
                            settled_cycles.fetch_add(status.cycles.unwrap_or(0), Ordering::Relaxed);
                            Fate::Completed(arrival.elapsed())
                        }
                        Ok(_) => Fate::Faulted(arrival.elapsed()),
                        Err(e) => Fate::Lost(format!("ticket {ticket}: {e}")),
                    }
                })
            })
            .collect();
        for handle in handles {
            fates.push(handle.join().expect("load thread"));
        }
    });
    let wall = start.elapsed();

    let mut latencies = Vec::new();
    let (mut completed, mut faulted, mut rejected, mut lost) = (0u64, 0u64, 0u64, 0u64);
    for fate in &fates {
        match fate {
            Fate::Completed(lat) => {
                completed += 1;
                latencies.push(*lat);
            }
            Fate::Faulted(lat) => {
                faulted += 1;
                latencies.push(*lat);
            }
            Fate::Rejected => rejected += 1,
            Fate::Lost(detail) => {
                lost += 1;
                eprintln!("srload: LOST {detail}");
            }
        }
    }
    latencies.sort();
    let secs = wall.as_secs_f64().max(1e-9);
    let (p50, p99) = if latencies.is_empty() {
        (Duration::ZERO, Duration::ZERO)
    } else {
        (percentile(&latencies, 0.50), percentile(&latencies, 0.99))
    };

    let stats = client.stats();
    let advanced = stats
        .as_ref()
        .ok()
        .and_then(|s| s.get("advanced_cycles").and_then(|v| v.as_u64()))
        .unwrap_or(0);
    println!(
        "srload: {} jobs offered at {:.0}/s over {:.2}s: {completed} completed, \
         {faulted} faulted, {rejected} rejected (backpressure), {lost} lost",
        args.jobs, args.rate, secs
    );
    println!(
        "srload: {:.1} settled jobs/s, latency p50 {:.2}ms p99 {:.2}ms, \
         {advanced} simulated cycles server-side",
        (completed + faulted) as f64 / secs,
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
    );

    if let Some(path) = &args.out {
        let file = BenchFile {
            suite: "service_load".into(),
            records: vec![BenchRecord {
                workload: "srload_open_loop".into(),
                geometry: format!("{} tenants x {} jobs", args.tenants, args.jobs),
                tier: format!("rate{:.0}", args.rate),
                cycles: advanced,
                // Every offered job must be accounted for client-side:
                // settled, or refused with a visible rejection.
                pass: Some(lost == 0),
                jobs_per_s: Some((completed + faulted) as f64 / secs),
                p50_ms: Some(p50.as_secs_f64() * 1e3),
                p99_ms: Some(p99.as_secs_f64() * 1e3),
                rejected: Some(rejected),
                ..BenchRecord::default()
            }],
        };
        if let Err(e) = std::fs::write(path, file.to_json()) {
            eprintln!("srload: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("srload: wrote {path}");
    }

    if args.drain {
        match client.drain() {
            Ok(body) => println!(
                "srload: drained (evicted_now {})",
                body.get("evicted_now")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0)
            ),
            Err(e) => {
                eprintln!("srload: drain failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if lost > 0 {
        eprintln!("srload: {lost} jobs lost without a client-visible verdict");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
