//! Regenerates the paper's tables and figures on stdout.
//!
//! Usage: `report [all|table1|table2|table3|comparative|scalability|ablations|batch|figure6|figure7] [--full]`
//!
//! `--full` runs Table 2 at the paper's 1024x768 (slow in debug builds);
//! the default is a 256x192 image with identical per-pixel behaviour.

use systolic_ring_bench::{
    ablations, batch, comparative, figures, kernels_table, scalability, table1, table2, table3,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let run_table2 = || {
        if full {
            table2::run(1024, 768)
        } else {
            table2::run(256, 192)
        }
    };

    match what {
        "table1" => print!("{}", table1::render(&table1::run())),
        "table2" => print!("{}", table2::render(&run_table2())),
        "table3" => print!("{}", table3::render(&table3::run())),
        "comparative" => print!("{}", comparative::render(&comparative::run())),
        "scalability" => print!("{}", scalability::render(&scalability::run())),
        "ablations" => print!("{}", ablations::render()),
        "batch" => print!("{}", batch::render(&batch::run(36))),
        "kernels" => print!("{}", kernels_table::render(&kernels_table::run())),
        "figure6" => print!("{}", figures::render_figure6(&figures::figure6())),
        "figure7" => {
            let (ring64, plan) = figures::figure7();
            print!("{}", figures::render_figure7(ring64, &plan));
        }
        "all" => {
            println!("==============================================================");
            println!(" Systolic Ring reproduction — paper-vs-measured report");
            println!("==============================================================\n");
            println!("{}", table1::render(&table1::run()));
            println!("{}", table2::render(&run_table2()));
            println!("{}", table3::render(&table3::run()));
            println!("{}", comparative::render(&comparative::run()));
            println!("{}", figures::render_figure6(&figures::figure6()));
            let (ring64, plan) = figures::figure7();
            println!("{}", figures::render_figure7(ring64, &plan));
            println!("{}", scalability::render(&scalability::run()));
            println!("{}", ablations::render());
            println!("{}", batch::render(&batch::run(36)));
            print!("{}", kernels_table::render(&kernels_table::run()));
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!("usage: report [all|table1|table2|table3|comparative|scalability|ablations|batch|kernels|figure6|figure7] [--full]");
            std::process::exit(2);
        }
    }
}
