//! Regenerates the paper's tables and figures on stdout.
//!
//! Usage: `report [all|table1|table2|table3|comparative|scalability|ablations|batch|figure6|figure7|json|experiments-md] [--full] [--quick] [dir]`
//!
//! `--full` runs Table 2 at the paper's 1024x768 (slow in debug builds);
//! the default is a 256x192 image with identical per-pixel behaviour.
//!
//! Two modes feed the machine-readable perf trajectory:
//!
//! * `report -- json [dir]` runs the trajectory suites with wall-clock
//!   timing and (re)writes the `BENCH_*.json` baselines under `dir`
//!   (default `.`); `--quick` uses the CI-smoke iteration counts.
//! * `report -- experiments-md [dir]` renders the generated
//!   EXPERIMENTS.md tables (A8/A10/A11/A12/A13) from the checked-in
//!   `BENCH_*.json` under `dir` — no simulation runs, pure
//!   regeneration.

use systolic_ring_bench::trajectory::{self, WallClock, TRAJECTORY_FILES};
use systolic_ring_bench::{
    ablations, batch, comparative, figures, kernels_table, scalability, table1, table2, table3,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let quick = args.iter().any(|a| a == "--quick");
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let what = positional.next().map(String::as_str).unwrap_or("all");
    let dir = std::path::PathBuf::from(positional.next().map(String::as_str).unwrap_or("."));

    let run_table2 = || {
        if full {
            table2::run(1024, 768)
        } else {
            table2::run(256, 192)
        }
    };

    match what {
        "table1" => print!("{}", table1::render(&table1::run())),
        "table2" => print!("{}", table2::render(&run_table2())),
        "table3" => print!("{}", table3::render(&table3::run())),
        "comparative" => print!("{}", comparative::render(&comparative::run())),
        "scalability" => print!("{}", scalability::render(&scalability::run())),
        "ablations" => print!("{}", ablations::render()),
        "batch" => print!("{}", batch::render(&batch::run(36))),
        "kernels" => print!("{}", kernels_table::render(&kernels_table::run())),
        "figure6" => print!("{}", figures::render_figure6(&figures::figure6())),
        "figure7" => {
            let (ring64, plan) = figures::figure7();
            print!("{}", figures::render_figure7(ring64, &plan));
        }
        "json" => {
            let wall = if quick {
                WallClock::QUICK
            } else {
                WallClock::FULL
            };
            for (file, suite) in trajectory::all_suites(Some(wall))
                .into_iter()
                .zip(TRAJECTORY_FILES)
            {
                let path = dir.join(suite.1);
                if let Err(e) = std::fs::write(&path, file.to_json()) {
                    eprintln!("report: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
                println!("report: wrote {}", path.display());
            }
        }
        "experiments-md" => match trajectory::experiments_md(&dir) {
            Ok(md) => print!("{md}"),
            Err(e) => {
                eprintln!("report: {e}");
                std::process::exit(1);
            }
        },
        "all" => {
            println!("==============================================================");
            println!(" Systolic Ring reproduction — paper-vs-measured report");
            println!("==============================================================\n");
            println!("{}", table1::render(&table1::run()));
            println!("{}", table2::render(&run_table2()));
            println!("{}", table3::render(&table3::run()));
            println!("{}", comparative::render(&comparative::run()));
            println!("{}", figures::render_figure6(&figures::figure6()));
            let (ring64, plan) = figures::figure7();
            println!("{}", figures::render_figure7(ring64, &plan));
            println!("{}", scalability::render(&scalability::run()));
            println!("{}", ablations::render());
            println!("{}", batch::render(&batch::run(36)));
            print!("{}", kernels_table::render(&kernels_table::run()));
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "usage: report [all|table1|table2|table3|comparative|scalability|ablations|batch|kernels|figure6|figure7|json|experiments-md] [--full] [--quick] [dir]"
            );
            std::process::exit(2);
        }
    }
}
