//! `srconform` — the four-tier ISA conformance runner, as a CLI.
//!
//! ```sh
//! srconform [--dir programs] [--json BENCH_conformance.json]
//! ```
//!
//! Walks the program corpus (plain `.sr` and literate `.sr.md` sources),
//! lints every object, runs each program on the slow, decoded, fused and
//! aot execution tiers, and judges the embedded `;!` expectations: sink
//! output, cycle budgets and cross-tier bit-equality. Prints a result
//! table; with `--json`, also writes the machine-readable
//! `BENCH_conformance.json` in the shared versioned record schema
//! (`systolic_ring_bench::record`) that the `srbench-compare` CI gate
//! reads back. Exits non-zero on any failure.

use std::path::PathBuf;
use std::process::ExitCode;

use systolic_ring_bench::record::conformance_file;
use systolic_ring_harness::conformance;

fn usage() -> ExitCode {
    eprintln!("usage: srconform [--dir <programs-dir>] [--json <out.json>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = PathBuf::from("programs");
    let mut json_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dir" => match it.next() {
                Some(path) => dir = PathBuf::from(path),
                None => return usage(),
            },
            "--json" => match it.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = match conformance::run_dir(&dir) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("srconform: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, conformance_file(&report).to_json()) {
            eprintln!("srconform: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("srconform: wrote {}", path.display());
    }
    if report.passed() {
        println!(
            "srconform: {} programs conform on all declared tiers",
            report.cases.len()
        );
        ExitCode::SUCCESS
    } else {
        for failure in report.failures() {
            eprintln!("srconform: FAIL {failure}");
        }
        ExitCode::FAILURE
    }
}
