//! Plain-text table rendering for the report binary.

/// A simple left-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.trim_end().len().max(8)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a cycle count with thousands separators.
pub fn cycles(n: u64) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

/// Formats a ratio like `7.9x`.
pub fn ratio(value: f64) -> String {
    format!("{value:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "cycles"]);
        t.row(["ring", "1,234"]);
        t.row(["mmx", "20,000"]);
        let text = t.render();
        assert!(text.contains("name"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn thousands_separators() {
        assert_eq!(cycles(0), "0");
        assert_eq!(cycles(999), "999");
        assert_eq!(cycles(1_000), "1,000");
        assert_eq!(cycles(1_234_567), "1,234,567");
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(7.94), "7.9x");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        assert!(t.render().contains('x'));
    }
}
