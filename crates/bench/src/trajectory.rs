//! The perf-trajectory suites: the deterministic workloads whose
//! [`crate::record::BenchFile`]s are checked in as `BENCH_*.json` and gated by
//! `srbench-compare` in CI.
//!
//! Five suites cover the repository's load-bearing performance claims:
//!
//! | suite | file | what it tracks |
//! |-------|------|----------------|
//! | `table1_motion` | `BENCH_table1_motion.json` | Table 1 motion estimation on slow/decoded/fused/aot tiers |
//! | `table2_wavelet` | `BENCH_table2_wavelet.json` | Table 2 wavelet 5/3 2-D on slow/decoded/fused/aot tiers |
//! | `fused` | `BENCH_fused.json` | 32-job `fir3.sr` lane-fusion sweep: decoded vs fused-serial vs lane-fused vs aot |
//! | `batch_scaling` | `BENCH_batch_scaling.json` | 36-job mixed kernel sweep, serial and 1/2/4 workers |
//! | `service` | `BENCH_service.json` | scripted multi-tenant service scenarios: packing, preemption, 2x-saturation backpressure (see [`crate::service`]) |
//!
//! (`BENCH_conformance.json`, the sixth baseline, is written by
//! `srconform` from the program corpus — same schema, different
//! producer.)
//!
//! Every suite runs each workload once to collect the wall-clock-free
//! metrics (simulated cycles, fused coverage, lane occupancy, deopts —
//! deterministic for a given tree) and, when a [`WallClock`] is given,
//! re-times it to fill the informational `mcyc_per_s` column. The
//! comparator never looks at `mcyc_per_s`, so a fresh gate run can skip
//! the timing loops entirely (`wall = None`) and stay fast.
//!
//! On the `aot` rows the `fused_coverage` column records the *combined
//! compiled* coverage — `(fused_cycles + aot_cycles) / cycles` — since
//! the AOT tier falls back to the fused engine between superblocks and
//! the gated claim is "cycles not interpreted".
//!
//! [`experiments_md`] renders the generated EXPERIMENTS.md tables
//! (Extensions A8, A10, A11, A12 and A13) from the *checked-in* files,
//! so every number in those docs traces back to a `BENCH_*.json` in the
//! same tree.

use std::path::Path;

use systolic_ring_asm::assemble;
use systolic_ring_core::{with_aot, with_decode_cache, with_fused, MachineParams, Stats};
use systolic_ring_harness::job::{CycleBudget, Job};
use systolic_ring_harness::microbench::{black_box, measure};
use systolic_ring_harness::runner::BatchRunner;
use systolic_ring_isa::{RingGeometry, Word16};
use systolic_ring_kernels::batch::kernel_sweep;
use systolic_ring_kernels::image::Image;
use systolic_ring_kernels::motion::{self, BlockMatch};
use systolic_ring_kernels::wavelet;

use crate::record::{geometry_label, BenchFile, BenchRecord};
use crate::table::cycles as fmt_cycles;

/// Wall-clock measurement configuration for the `mcyc_per_s` column.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    /// Untimed warmup iterations per workload.
    pub warmup: u32,
    /// Timed iterations per workload (the median is recorded).
    pub iters: u32,
}

impl WallClock {
    /// CI-smoke settings: 1 warmup + 3 timed iterations.
    pub const QUICK: WallClock = WallClock {
        warmup: 1,
        iters: 3,
    };
    /// Baseline-regeneration settings: 2 warmup + 10 timed iterations,
    /// matching the `benches/` timers.
    pub const FULL: WallClock = WallClock {
        warmup: 2,
        iters: 10,
    };
}

/// The five trajectory suites and their checked-in baseline files.
pub const TRAJECTORY_FILES: [(&str, &str); 5] = [
    ("table1_motion", "BENCH_table1_motion.json"),
    ("table2_wavelet", "BENCH_table2_wavelet.json"),
    ("fused", "BENCH_fused.json"),
    ("batch_scaling", "BENCH_batch_scaling.json"),
    ("service", "BENCH_service.json"),
];

/// The conformance baseline (written by `srconform`, same schema).
pub const CONFORMANCE_FILE: &str = "BENCH_conformance.json";

/// Builds one tier record from a single-machine kernel run.
fn tier_record(
    workload: &str,
    geometry: RingGeometry,
    tier: &str,
    cycles: u64,
    stats: &Stats,
    compiled_tier: bool,
    median_secs: Option<f64>,
) -> BenchRecord {
    // On the aot tier the compiled claim spans both engines: superblock
    // cycles plus the fused cycles the tier falls back to between them.
    let compiled = stats.fused_cycles + stats.aot_cycles;
    let coverage = compiled_tier.then(|| compiled as f64 / cycles.max(1) as f64);
    let occupancy = (compiled_tier && stats.fused_cycles > 0)
        .then(|| stats.fused_lane_occupancy as f64 / stats.fused_cycles as f64);
    BenchRecord {
        workload: workload.into(),
        geometry: geometry_label(geometry),
        tier: tier.into(),
        cycles,
        mcyc_per_s: median_secs.map(|s| cycles as f64 / s / 1e6),
        fused_coverage: coverage,
        lane_occupancy: occupancy,
        deopts: compiled_tier.then_some(stats.fused_deopts),
        ..BenchRecord::default()
    }
}

/// A tier label paired with the closure that runs the kernel on it.
type TierRun<'a> = (&'a str, Box<dyn Fn() -> (u64, Stats) + 'a>);

/// Runs one kernel closure on the four execution tiers.
fn tier_sweep(
    workload: &str,
    geometry: RingGeometry,
    run: impl Fn() -> (u64, Stats),
    wall: Option<WallClock>,
) -> Vec<BenchRecord> {
    let tiers: [TierRun; 4] = [
        (
            "slow",
            Box::new(|| with_fused(false, || with_decode_cache(false, &run))),
        ),
        ("decoded", Box::new(|| with_fused(false, &run))),
        ("fused", Box::new(&run)),
        ("aot", Box::new(|| with_aot(true, &run))),
    ];
    tiers
        .iter()
        .map(|(tier, run_tier)| {
            let (cycles, stats) = run_tier();
            let median = wall.map(|w| {
                measure(w.warmup, w.iters, || black_box(run_tier()))
                    .median
                    .as_secs_f64()
            });
            tier_record(
                workload,
                geometry,
                tier,
                cycles,
                &stats,
                matches!(*tier, "fused" | "aot"),
                median,
            )
        })
        .collect()
}

/// The `table1_motion` suite: Table 1 full-search motion estimation
/// (8x8 block, ±4 displacement, 64x64 picture — the bench-sized spec)
/// on a Ring-16, across the slow, decoded, fused and aot tiers.
pub fn table1_motion(wall: Option<WallClock>) -> BenchFile {
    let (reference, current) = Image::motion_pair(64, 64, 2, -1, 2002);
    let spec = BlockMatch {
        x0: 28,
        y0: 28,
        block: 8,
        range: 4,
    };
    let run = move || {
        let r = motion::block_match_run(
            RingGeometry::RING_16,
            black_box(&reference),
            black_box(&current),
            spec,
        )
        .expect("ring motion estimation");
        (r.cycles, r.stats)
    };
    BenchFile {
        suite: "table1_motion".into(),
        records: tier_sweep("table1_motion", RingGeometry::RING_16, run, wall),
    }
}

/// The `table2_wavelet` suite: Table 2 one-level 2-D 5/3 lifting
/// wavelet of a 64x48 16-bit image on a Ring-16, across the four
/// tiers.
pub fn table2_wavelet(wall: Option<WallClock>) -> BenchFile {
    let image = Image::textured(64, 48, 53);
    let run = move || {
        let r = wavelet::forward_2d(RingGeometry::RING_16, black_box(&image))
            .expect("wavelet transform");
        (r.cycles, r.stats)
    };
    BenchFile {
        suite: "table2_wavelet".into(),
        records: tier_sweep("table2_wavelet", RingGeometry::RING_16, run, wall),
    }
}

/// The 32 identical `fir3.sr` jobs the runner's lane fusion targets
/// (input streams differ per job; everything else is shared).
fn fir3_sweep(fused: bool) -> (RingGeometry, Vec<Job>) {
    let source = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs/fir3.sr"),
    )
    .expect("shipped program");
    let object = assemble(&source).expect("fir3 assembles");
    let geometry = object.geometry.expect("declared ring");
    let jobs = (0..32)
        .map(|i| {
            Job::from_object(
                format!("fir3-{i}"),
                geometry,
                MachineParams::PAPER,
                object.clone(),
                CycleBudget::Cycles(16_384),
            )
            .with_input(0, 0, (0..256).map(|w| Word16::from_i16(w * 3 + i)))
            .with_sink(1, 0)
            .with_fused(fused)
        })
        .collect();
    (geometry, jobs)
}

/// One batch-runner record (total simulated cycles plus the merged
/// fused counters across every lane).
fn batch_record(
    workload: &str,
    geometry_name: String,
    tier: &str,
    runner: &BatchRunner,
    jobs: &[Job],
    pass: bool,
    wall: Option<WallClock>,
) -> BenchRecord {
    let summary = runner.run(jobs).summary();
    let compiled = summary.merged.fused_cycles + summary.merged.aot_cycles;
    let fused_on = summary.merged.fused_cycles > 0;
    let median = wall.map(|w| {
        measure(w.warmup, w.iters, || {
            black_box(runner.run(jobs)).summary().completed
        })
        .median
        .as_secs_f64()
    });
    BenchRecord {
        workload: workload.into(),
        geometry: geometry_name,
        tier: tier.into(),
        cycles: summary.total_cycles,
        mcyc_per_s: median.map(|s| summary.total_cycles as f64 / s / 1e6),
        fused_coverage: (compiled > 0)
            .then(|| compiled as f64 / summary.total_cycles.max(1) as f64),
        lane_occupancy: fused_on.then(|| {
            summary.merged.fused_lane_occupancy as f64 / summary.merged.fused_cycles as f64
        }),
        deopts: Some(summary.merged.fused_deopts),
        pass: Some(pass && summary.completed == summary.jobs),
        ..BenchRecord::default()
    }
}

/// The `fused` suite: the 32-job `fir3.sr` sweep on one worker, on the
/// decoded tier, the fused tier with lane fusion off (single-lane
/// bursts), the fused tier with up to 16-lane lockstep batching — the
/// lane-fusion gain isolated from thread parallelism — and the aot tier
/// (load-time superblock prefill, lane fusion off so the gain over
/// `fused_serial` is the AOT compiler alone).
pub fn fused_batch(wall: Option<WallClock>) -> BenchFile {
    let (geometry, fused_jobs) = fir3_sweep(true);
    let (_, decoded_jobs) = fir3_sweep(false);
    let aot_jobs: Vec<Job> = fir3_sweep(true)
        .1
        .into_iter()
        .map(|j| j.with_aot(true))
        .collect();
    let lanes_on = BatchRunner::with_workers(1);
    let lanes_off = BatchRunner::with_workers(1).with_lane_fusion(false);
    let geometry_name = geometry_label(geometry);
    BenchFile {
        suite: "fused".into(),
        records: vec![
            batch_record(
                "batch32_fir3",
                geometry_name.clone(),
                "decoded",
                &lanes_off,
                &decoded_jobs,
                true,
                wall,
            ),
            batch_record(
                "batch32_fir3",
                geometry_name.clone(),
                "fused_serial",
                &lanes_off,
                &fused_jobs,
                true,
                wall,
            ),
            batch_record(
                "batch32_fir3",
                geometry_name.clone(),
                "lane_fused",
                &lanes_on,
                &fused_jobs,
                true,
                wall,
            ),
            batch_record(
                "batch32_fir3",
                geometry_name,
                "aot",
                &lanes_off,
                &aot_jobs,
                true,
                wall,
            ),
        ],
    }
}

/// The `batch_scaling` suite: the 36-job mixed kernel sweep run
/// serially and on 1/2/4 workers (fixed counts, so the baseline is
/// machine-independent), with bit-identical-to-serial verdicts in the
/// `pass` column.
pub fn batch_scaling(wall: Option<WallClock>) -> BenchFile {
    let sweep = kernel_sweep(0xba7c, 36);
    let serial = BatchRunner::run_serial(&sweep);
    let serial_summary = serial.summary();
    let mut records = Vec::new();
    let fused_on = serial_summary.merged.fused_cycles > 0;
    records.push(BenchRecord {
        workload: "batch36_mixed".into(),
        geometry: "mixed".into(),
        tier: "serial".into(),
        cycles: serial_summary.total_cycles,
        mcyc_per_s: wall.map(|_| {
            serial_summary.total_cycles as f64 / serial.wall.as_secs_f64().max(1e-9) / 1e6
        }),
        fused_coverage: fused_on.then(|| {
            serial_summary.merged.fused_cycles as f64 / serial_summary.total_cycles.max(1) as f64
        }),
        lane_occupancy: fused_on.then(|| {
            serial_summary.merged.fused_lane_occupancy as f64
                / serial_summary.merged.fused_cycles as f64
        }),
        deopts: Some(serial_summary.merged.fused_deopts),
        pass: Some(serial_summary.completed == serial_summary.jobs),
        ..BenchRecord::default()
    });
    for workers in [1usize, 2, 4] {
        let runner = BatchRunner::with_workers(workers);
        let matches = runner.run(&sweep).outcomes_match(&serial);
        records.push(batch_record(
            "batch36_mixed",
            "mixed".into(),
            &format!("workers{workers}"),
            &runner,
            &sweep,
            matches,
            wall,
        ));
    }
    BenchFile {
        suite: "batch_scaling".into(),
        records,
    }
}

/// Runs every trajectory suite, in [`TRAJECTORY_FILES`] order.
pub fn all_suites(wall: Option<WallClock>) -> Vec<BenchFile> {
    vec![
        table1_motion(wall),
        table2_wavelet(wall),
        fused_batch(wall),
        batch_scaling(wall),
        crate::service::suite(wall),
    ]
}

/// Runs one trajectory suite by name (`None` for an unknown name).
pub fn run_suite(suite: &str, wall: Option<WallClock>) -> Option<BenchFile> {
    match suite {
        "table1_motion" => Some(table1_motion(wall)),
        "table2_wavelet" => Some(table2_wavelet(wall)),
        "fused" => Some(fused_batch(wall)),
        "batch_scaling" => Some(batch_scaling(wall)),
        "service" => Some(crate::service::suite(wall)),
        _ => None,
    }
}

/// Human-facing row label for a trajectory workload.
fn workload_label(workload: &str) -> &str {
    match workload {
        "table1_motion" => "Table 1 motion estimation (8x8 block, ±4, 64x64, Ring-16)",
        "table2_wavelet" => "Table 2 wavelet 5/3 2-D (64x48, Ring-16)",
        "batch32_fir3" => "32-job `fir3.sr` sweep, lane-fused (1 worker, Ring-8)",
        "service_pack16" => "16 tenants, identical objects, one 16-lane lockstep group",
        "service_preempt" => "4 interactive bursts preempting a 4096-cycle batch job",
        "service_saturate2x" => "2x-saturating offered load vs bounded queue (cap 8, quota 2)",
        other => other,
    }
}

fn mcyc(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.2}"),
        None => "—".into(),
    }
}

fn speedup(fast: Option<f64>, slow: Option<f64>) -> String {
    match (fast, slow) {
        (Some(f), Some(s)) if s > 0.0 => format!("**{:.2}x**", f / s),
        _ => "—".into(),
    }
}

fn coverage(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:.0}%", v * 100.0),
        None => "—".into(),
    }
}

fn occupancy(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.2}"),
        None => "—".into(),
    }
}

fn load(dir: &Path, name: &str) -> Result<BenchFile, String> {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    BenchFile::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Renders the generated EXPERIMENTS.md tables (Extensions A8, A10, A11,
/// A12 and A13) from the checked-in `BENCH_*.json` baselines under `dir`.
///
/// The output is a pure function of the baseline files, and
/// EXPERIMENTS.md must contain each block byte-identically —
/// `crates/bench/tests/trajectory.rs` enforces that, which is what makes
/// the doc tables regenerated-from-JSON rather than hand-transcribed.
pub fn experiments_md(dir: &Path) -> Result<String, String> {
    let motion = load(dir, "BENCH_table1_motion.json")?;
    let wavelet_f = load(dir, "BENCH_table2_wavelet.json")?;
    let fused_f = load(dir, "BENCH_fused.json")?;
    let scaling = load(dir, "BENCH_batch_scaling.json")?;
    let service = load(dir, "BENCH_service.json")?;

    let regen = "Regenerate: `cargo run --release -p systolic-ring-bench --bin report -- json .` \
                 then `report -- experiments-md`";
    let mut out = String::new();

    // A8 — decode cache: decoded vs slow.
    out.push_str("<!-- begin generated table: A8 (report -- experiments-md) -->\n");
    out.push_str(
        "| workload | simulated cycles | cached Mcyc/s | uncached Mcyc/s | speedup |\n\
         |---|---|---|---|---|\n",
    );
    for file in [&motion, &wavelet_f] {
        for record in &file.records {
            if record.tier != "decoded" {
                continue;
            }
            let slow = file.find(&record.workload, "slow");
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                workload_label(&record.workload),
                fmt_cycles(record.cycles),
                mcyc(record.mcyc_per_s),
                mcyc(slow.and_then(|s| s.mcyc_per_s)),
                speedup(record.mcyc_per_s, slow.and_then(|s| s.mcyc_per_s)),
            ));
        }
    }
    out.push_str(&format!(
        "\n{regen} (decoded vs slow tiers of `BENCH_table1_motion.json` + \
         `BENCH_table2_wavelet.json`).\n"
    ));
    out.push_str("<!-- end generated table: A8 -->\n\n");

    // A10 — fused engine: fused vs decoded, plus the lane-fused batch.
    out.push_str("<!-- begin generated table: A10 (report -- experiments-md) -->\n");
    out.push_str(
        "| workload (fused vs decoded) | simulated cycles | fused Mcyc/s | decoded Mcyc/s | \
         speedup | coverage | lanes | deopts |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for file in [&motion, &wavelet_f] {
        for record in &file.records {
            if record.tier != "fused" {
                continue;
            }
            let decoded = file.find(&record.workload, "decoded");
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
                workload_label(&record.workload),
                fmt_cycles(record.cycles),
                mcyc(record.mcyc_per_s),
                mcyc(decoded.and_then(|d| d.mcyc_per_s)),
                speedup(record.mcyc_per_s, decoded.and_then(|d| d.mcyc_per_s)),
                coverage(record.fused_coverage),
                occupancy(record.lane_occupancy),
                record.deopts.map_or("—".into(), |d| d.to_string()),
            ));
        }
    }
    if let Some(lane_fused) = fused_f.find("batch32_fir3", "lane_fused") {
        let decoded = fused_f.find("batch32_fir3", "decoded");
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            workload_label(&lane_fused.workload),
            fmt_cycles(lane_fused.cycles),
            mcyc(lane_fused.mcyc_per_s),
            mcyc(decoded.and_then(|d| d.mcyc_per_s)),
            speedup(lane_fused.mcyc_per_s, decoded.and_then(|d| d.mcyc_per_s)),
            coverage(lane_fused.fused_coverage),
            occupancy(lane_fused.lane_occupancy),
            lane_fused.deopts.map_or("—".into(), |d| d.to_string()),
        ));
    }
    out.push_str(&format!(
        "\n{regen} (fused vs decoded tiers of `BENCH_table1_motion.json` / \
         `BENCH_table2_wavelet.json` / `BENCH_fused.json`).\n"
    ));
    out.push_str("<!-- end generated table: A10 -->\n\n");

    // A11 — the trajectory itself: batch scaling records.
    out.push_str("<!-- begin generated table: A11 (report -- experiments-md) -->\n");
    out.push_str(
        "| batch configuration (36 mixed kernel jobs) | simulated cycles | Mcyc/s | coverage | \
         lanes | bit-identical |\n\
         |---|---|---|---|---|---|\n",
    );
    for record in &scaling.records {
        let label = match record.tier.as_str() {
            "serial" => "serial baseline".to_owned(),
            other => other.replacen("workers", "", 1) + " worker(s)",
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            label,
            fmt_cycles(record.cycles),
            mcyc(record.mcyc_per_s),
            coverage(record.fused_coverage),
            occupancy(record.lane_occupancy),
            match record.pass {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "—",
            },
        ));
    }
    out.push_str(&format!(
        "\n{regen} (all tiers of `BENCH_batch_scaling.json`).\n"
    ));
    out.push_str("<!-- end generated table: A11 -->\n\n");

    // A12 — the multi-tenant service: scripted scheduler scenarios.
    out.push_str("<!-- begin generated table: A12 (report -- experiments-md) -->\n");
    out.push_str(
        "| service scenario (scripted, deterministic) | simulated cycles | lanes | preemptions | \
         rejected | jobs/s | p50 ms | p99 ms | pass |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    for record in &service.records {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            workload_label(&record.workload),
            fmt_cycles(record.cycles),
            occupancy(record.lane_occupancy),
            record.preemptions.map_or("—".into(), |v| v.to_string()),
            record.rejected.map_or("—".into(), |v| v.to_string()),
            mcyc(record.jobs_per_s),
            mcyc(record.p50_ms),
            mcyc(record.p99_ms),
            match record.pass {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "—",
            },
        ));
    }
    out.push_str(&format!(
        "\n{regen} (the `scripted` tier of `BENCH_service.json`; jobs/s and latency \
         percentiles are wall-clock, never gated).\n"
    ));
    out.push_str("<!-- end generated table: A12 -->\n\n");

    // A13 — the AOT tier: aot vs decoded and vs fused, with the
    // combined compiled coverage the gate tracks.
    out.push_str("<!-- begin generated table: A13 (report -- experiments-md) -->\n");
    out.push_str(
        "| workload (aot tier) | simulated cycles | aot Mcyc/s | decoded Mcyc/s | \
         vs decoded | fused Mcyc/s | vs fused | compiled coverage | deopts |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    let fused_label = |workload: &str| match workload {
        "batch32_fir3" => "fused_serial",
        _ => "fused",
    };
    for file in [&motion, &wavelet_f, &fused_f] {
        for record in &file.records {
            if record.tier != "aot" {
                continue;
            }
            let decoded = file.find(&record.workload, "decoded");
            let fused = file.find(&record.workload, fused_label(&record.workload));
            let label = match record.workload.as_str() {
                "batch32_fir3" => "32-job `fir3.sr` sweep (1 worker, no lane fusion, Ring-8)",
                other => workload_label(other),
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
                label,
                fmt_cycles(record.cycles),
                mcyc(record.mcyc_per_s),
                mcyc(decoded.and_then(|d| d.mcyc_per_s)),
                speedup(record.mcyc_per_s, decoded.and_then(|d| d.mcyc_per_s)),
                mcyc(fused.and_then(|d| d.mcyc_per_s)),
                speedup(record.mcyc_per_s, fused.and_then(|d| d.mcyc_per_s)),
                coverage(record.fused_coverage),
                record.deopts.map_or("—".into(), |d| d.to_string()),
            ));
        }
    }
    out.push_str(&format!(
        "\n{regen} (the `aot` rows of `BENCH_table1_motion.json` / \
         `BENCH_table2_wavelet.json` / `BENCH_fused.json`; coverage on the aot \
         rows is combined `(fused_cycles + aot_cycles) / cycles`).\n"
    ));
    out.push_str("<!-- end generated table: A13 -->\n");

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_suite_covers_the_four_tiers_deterministically() {
        let a = table1_motion(None);
        let b = table1_motion(None);
        assert_eq!(a, b, "wall-free records must be deterministic");
        assert_eq!(a.suite, "table1_motion");
        let tiers: Vec<&str> = a.records.iter().map(|r| r.tier.as_str()).collect();
        assert_eq!(tiers, ["slow", "decoded", "fused", "aot"]);
        assert!(a.records.iter().all(|r| r.cycles > 0));
        assert!(
            a.records.iter().all(|r| r.cycles == a.records[0].cycles),
            "tiers must agree on simulated cycles"
        );
        assert!(a.records.iter().all(|r| r.mcyc_per_s.is_none()));
        let fused = a.find("table1_motion", "fused").unwrap();
        assert!(fused.fused_coverage.unwrap() > 0.0);
        assert_eq!(fused.deopts, Some(0));
        // The aot tier's combined compiled coverage can only gain on the
        // fused tier: every fused window is also an AOT candidate.
        let aot = a.find("table1_motion", "aot").unwrap();
        assert!(aot.fused_coverage.unwrap() >= fused.fused_coverage.unwrap() - 1e-9);
    }

    #[test]
    fn suite_lookup_rejects_unknown_names() {
        assert!(run_suite("nope", None).is_none());
    }
}
