//! Ablations of the paper's design decisions.
//!
//! * **A2 — hardware multiplexing**: the same 3-tap FIR mapped spatially
//!   (one output/cycle, many Dnodes) versus folded onto one local-mode
//!   Dnode (one output per 7 cycles) — the area/throughput trade §3 and §6
//!   describe.
//! * **Feedback-pipeline depth**: how deep the per-switch pipelines must
//!   be for the evaluation workloads, and what the registers cost — the
//!   "delays are automatically achieved in them" claim priced out.
//! * **Motion-estimation drain overhead**: the share of ME cycles spent in
//!   the context-switched drain/reset phases rather than pixel arithmetic.

use systolic_ring_core::{ConfigError, MachineParams, RingMachine};
use systolic_ring_isa::switch::PortSource;
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::image::test_signal;
use systolic_ring_kernels::{fir, motion};
use systolic_ring_model::grain;
use systolic_ring_model::{HardwareParams, ST_CMOS_018};

use crate::table::{ratio, TextTable};

/// A2: spatial vs folded FIR.
#[derive(Clone, Debug)]
pub struct FirAblation {
    /// Cycles for the spatial mapping.
    pub spatial_cycles: u64,
    /// Dnodes the spatial mapping keeps busy.
    pub spatial_dnodes: usize,
    /// Cycles for the folded (local-mode) mapping.
    pub folded_cycles: u64,
    /// Dnodes the folded mapping keeps busy.
    pub folded_dnodes: usize,
    /// Samples filtered.
    pub samples: usize,
}

/// Runs the FIR multiplexing ablation on a Ring-16.
///
/// # Panics
///
/// Panics if either mapping faults or they disagree (correctness bug).
pub fn fir_ablation() -> FirAblation {
    let geometry = RingGeometry::RING_16;
    let coeffs = [5, -3, 2];
    let input = test_signal(256, 77);
    let spatial = fir::spatial(geometry, &coeffs, &input).expect("spatial FIR");
    let folded = fir::local_serial(geometry, &coeffs, &input).expect("folded FIR");
    assert_eq!(spatial.outputs, folded.outputs, "mappings disagree");
    FirAblation {
        spatial_cycles: spatial.cycles,
        spatial_dnodes: geometry.dnodes() - spatial.stats.idle_dnodes(),
        folded_cycles: folded.cycles,
        folded_dnodes: geometry.dnodes() - folded.stats.idle_dnodes(),
        samples: input.len(),
    }
}

/// Feedback-depth ablation: whether each workload's deepest pipeline tap
/// fits, per configured depth.
#[derive(Clone, Debug)]
pub struct DepthPoint {
    /// Configured pipeline depth.
    pub depth: usize,
    /// Deepest stage the wavelet mapping reads (4) fits?
    pub wavelet_fits: bool,
    /// Deepest stage the FIR skew chain reads (0) fits?
    pub fir_fits: bool,
    /// Pipeline register cost for a Ring-16 at this depth (mm², 0.18 µm).
    pub pipe_area_mm2: f64,
}

/// Probes which workloads a given feedback depth supports.
pub fn depth_ablation() -> Vec<DepthPoint> {
    let geometry = RingGeometry::RING_16;
    [1usize, 2, 4, 5, 8, 16]
        .into_iter()
        .map(|depth| {
            let params = MachineParams::PAPER.with_pipe_depth(depth);
            let mut m = RingMachine::new(geometry, params);
            let probe = |m: &mut RingMachine, stage: u8| -> bool {
                match m.configure().set_port(
                    0,
                    2,
                    2,
                    1,
                    PortSource::Pipe {
                        switch: 1,
                        stage,
                        lane: 3,
                    },
                ) {
                    Ok(()) => true,
                    Err(ConfigError::StageOutOfRange { .. }) => false,
                    Err(e) => panic!("unexpected config error: {e}"),
                }
            };
            let wavelet_fits = probe(&mut m, 4);
            let fir_fits = probe(&mut m, 0);
            // Pipeline registers: depth x width x 16 bits x 6 gates per
            // switch (the model's pipeline term).
            let hw = HardwareParams {
                pipe_depth: depth,
                ..HardwareParams::PAPER
            };
            let gates =
                depth as f64 * geometry.width() as f64 * 16.0 * 6.0 * geometry.switches() as f64;
            let _ = hw;
            DepthPoint {
                depth,
                wavelet_fits,
                fir_fits,
                pipe_area_mm2: ST_CMOS_018.gates_to_mm2(gates),
            }
        })
        .collect()
}

/// Context demand per workload, with the configuration-SRAM cost of
/// provisioning that many contexts on a Ring-16.
#[derive(Clone, Debug)]
pub struct ContextPoint {
    /// Workload name.
    pub workload: &'static str,
    /// Contexts the mapping uses.
    pub contexts: usize,
    /// Config-SRAM area for that many contexts (mm², 0.18 µm, Ring-16).
    pub sram_mm2: f64,
}

/// Context-count ablation: how much multi-context memory each workload
/// actually needs (the §3 "hardware multiplexing" resource).
pub fn context_ablation() -> Vec<ContextPoint> {
    let g = RingGeometry::RING_16;
    let bits = systolic_ring_model::area::context_bits(g);
    let cost = |n: usize| ST_CMOS_018.sram_to_mm2(bits * n as f64);
    let me_contexts = motion::sad_units(g) + 4;
    vec![
        ContextPoint {
            workload: "wavelet / FIR / FFT (static datapath)",
            contexts: 1,
            sram_mm2: cost(1),
        },
        ContextPoint {
            workload: "matvec (compute/drain/reset)",
            contexts: 4,
            sram_mm2: cost(4),
        },
        ContextPoint {
            workload: "motion estimation (per-unit drains)",
            contexts: me_contexts,
            sram_mm2: cost(me_contexts),
        },
    ]
}

/// ME cycle breakdown: pixel arithmetic vs drain/control overhead.
#[derive(Clone, Debug)]
pub struct MeOverhead {
    /// Geometry analysed.
    pub geometry: RingGeometry,
    /// Total schedule cycles.
    pub total: u64,
    /// Pure pixel-arithmetic cycles (candidates x block pixels / units).
    pub compute: u64,
}

impl MeOverhead {
    /// Fraction of cycles that are not pixel arithmetic.
    pub fn overhead_fraction(&self) -> f64 {
        1.0 - self.compute as f64 / self.total as f64
    }
}

/// ME drain-overhead ablation across geometries.
pub fn me_overhead() -> Vec<MeOverhead> {
    [
        RingGeometry::RING_8,
        RingGeometry::RING_16,
        RingGeometry::RING_64,
    ]
    .into_iter()
    .map(|g| {
        let units = motion::sad_units(g) as u64;
        let rounds = 289u64.div_ceil(units);
        MeOverhead {
            geometry: g,
            total: motion::analytic_cycles(g, 289, 64),
            compute: rounds * 64,
        }
    })
    .collect()
}

/// Renders all ablations.
pub fn render() -> String {
    let mut out = String::from("Ablations of the paper's design decisions\n\n");

    let f = fir_ablation();
    out.push_str(&format!(
        "A2 — hardware multiplexing (3-tap FIR, {} samples, Ring-16):\n",
        f.samples
    ));
    let mut t = TextTable::new(["mapping", "cycles", "Dnodes busy", "cycles/sample"]);
    t.row([
        "spatial (one output/cycle)".to_owned(),
        crate::table::cycles(f.spatial_cycles),
        f.spatial_dnodes.to_string(),
        format!("{:.2}", f.spatial_cycles as f64 / f.samples as f64),
    ]);
    t.row([
        "folded on 1 Dnode (local mode)".to_owned(),
        crate::table::cycles(f.folded_cycles),
        f.folded_dnodes.to_string(),
        format!("{:.2}", f.folded_cycles as f64 / f.samples as f64),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "-> {} throughput for {} the Dnodes: temporal vs spatial mapping on one fabric.\n\n",
        ratio(f.folded_cycles as f64 / f.spatial_cycles as f64),
        ratio(f.spatial_dnodes as f64 / f.folded_dnodes as f64),
    ));

    out.push_str("Feedback-pipeline depth (Ring-16):\n");
    let mut t = TextTable::new([
        "depth",
        "FIR skew fits",
        "wavelet tap fits",
        "pipe area mm2",
    ]);
    for p in depth_ablation() {
        t.row([
            p.depth.to_string(),
            if p.fir_fits { "yes" } else { "no" }.to_owned(),
            if p.wavelet_fits { "yes" } else { "no" }.to_owned(),
            format!("{:.4}", p.pipe_area_mm2),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    out.push_str("Context demand per workload (config SRAM at 0.18um, Ring-16):\n");
    let mut t = TextTable::new(["workload", "contexts", "config SRAM mm2"]);
    for p in context_ablation() {
        t.row([
            p.workload.to_owned(),
            p.contexts.to_string(),
            format!("{:.4}", p.sram_mm2),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    out.push_str("Motion-estimation drain/control overhead:\n");
    let mut t = TextTable::new(["ring", "total cycles", "compute cycles", "overhead"]);
    for p in me_overhead() {
        t.row([
            format!("Ring-{}", p.geometry.dnodes()),
            crate::table::cycles(p.total),
            crate::table::cycles(p.compute),
            format!("{:.0}%", p.overhead_fraction() * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    out.push_str(
        "Grain size (the §2 motivation): the Ring-8 datapath priced on a\n\
         bit-level (FPGA-class) fabric at 0.18um:\n",
    );
    let c = grain::compare(RingGeometry::RING_8, HardwareParams::PAPER, ST_CMOS_018);
    let mut t = TextTable::new(["substrate", "area mm2", "vs ring"]);
    t.row([
        "coarse-grained ring (this paper)".to_owned(),
        format!("{:.2}", c.ring_asic_mm2),
        "1.0x".to_owned(),
    ]);
    t.row([
        "FPGA, empirical ~35x gap".to_owned(),
        format!("{:.1}", c.fpga_empirical_mm2),
        ratio(c.empirical_factor()),
    ]);
    t.row([
        "FPGA at the paper's MIT quote (1% useful)".to_owned(),
        format!("{:.0}", c.fpga_mit_quote_mm2),
        ratio(c.mit_factor()),
    ]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_ablation_shows_the_fold_factor() {
        let f = fir_ablation();
        let slowdown = f.folded_cycles as f64 / f.spatial_cycles as f64;
        assert!((5.0..9.0).contains(&slowdown), "slowdown = {slowdown:.1}");
        assert!(f.folded_dnodes == 1);
        assert!(f.spatial_dnodes > 4);
    }

    #[test]
    fn depth_thresholds() {
        let points = depth_ablation();
        for p in &points {
            assert!(p.fir_fits, "stage 0 must always fit");
            assert_eq!(p.wavelet_fits, p.depth >= 5, "depth {}", p.depth);
        }
        // Area grows linearly with depth.
        let a1 = points.first().expect("points").pipe_area_mm2;
        let a16 = points.last().expect("points").pipe_area_mm2;
        assert!((a16 / a1 - 16.0).abs() < 1e-6);
    }

    #[test]
    fn me_overhead_shrinks_on_smaller_fabrics() {
        let points = me_overhead();
        // Drain cost grows with units: bigger rings pay more overhead.
        assert!(points[0].overhead_fraction() < points[2].overhead_fraction());
        for p in &points {
            assert!(p.overhead_fraction() < 0.7, "{}", p.geometry);
        }
    }

    #[test]
    fn context_demand_is_workload_dependent() {
        let points = context_ablation();
        assert_eq!(points[0].contexts, 1);
        assert_eq!(points[2].contexts, 12); // 8 SAD units + 4
        assert!(points[2].sram_mm2 > points[0].sram_mm2 * 10.0);
        // Even ME's context memory stays small next to the Dnodes.
        assert!(points[2].sram_mm2 < 0.1);
    }

    #[test]
    fn render_is_complete() {
        let text = render();
        assert!(text.contains("A2"));
        assert!(text.contains("Feedback-pipeline depth"));
        assert!(text.contains("Context demand"));
        assert!(text.contains("drain/control overhead"));
        assert!(text.contains("Grain size"));
        assert!(text.contains("35.0x"));
    }
}
