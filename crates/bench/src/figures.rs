//! Figures 6 and 7 — the APEX prototype run and the SoC floorplan.

use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::image::Image;
use systolic_ring_model::floorplan::{figure7_blocks, pack, Floorplan};
use systolic_ring_model::{core_area, HardwareParams, ST_CMOS_018};
use systolic_ring_soc::ApexPrototype;

/// Result of the Figure 6 prototype run.
#[derive(Clone, Debug)]
pub struct Figure6 {
    /// Core cycles until halt.
    pub core_cycles: u64,
    /// Pixels processed.
    pub pixels: usize,
    /// The scanned monitor frame as a binary PGM.
    pub pgm: Vec<u8>,
    /// `true` if the VIDEO contents matched the golden filter.
    pub exact: bool,
}

/// Runs the Figure 6 demo on a 64x64 image (the prototype's "64x64 pic").
///
/// # Panics
///
/// Panics if the board faults — the demo is fixed-function.
pub fn figure6() -> Figure6 {
    let input = Image::textured(64, 64, 1964);
    let mut board = ApexPrototype::new(&input).expect("board construction");
    let report = board.run().expect("board run");
    let golden = ApexPrototype::golden(&input);
    let got: Vec<i16> = board.video().words().iter().map(|w| w.as_i16()).collect();
    let exact = got == golden;
    Figure6 {
        core_cycles: report.core_cycles,
        pixels: input.width() * input.height(),
        pgm: board.scan_pgm(),
        exact,
    }
}

/// Renders the Figure 6 report.
pub fn render_figure6(f: &Figure6) -> String {
    format!(
        "Figure 6 — APEX prototype: Ring-8 + controller, object code from PRG,\n\
         64x64 image from IMAGE, filtered frame to VIDEO, scanned by the VGA model.\n\
         core cycles: {} for {} pixels ({:.2} cycles/pixel)\n\
         output matches the golden filter: {}\n\
         monitor frame: {} bytes of PGM (write it to disk with the apex_prototype example)\n",
        crate::table::cycles(f.core_cycles),
        f.pixels,
        f.core_cycles as f64 / f.pixels as f64,
        f.exact,
        f.pgm.len()
    )
}

/// Builds the Figure 7 floorplan with the Ring-64 area from the model.
///
/// # Panics
///
/// Panics if the blocks fail to pack (a model regression).
pub fn figure7() -> (f64, Floorplan) {
    let ring64 = core_area(RingGeometry::RING_64, HardwareParams::PAPER, ST_CMOS_018).total_mm2();
    let plan = pack(4.0, 3.0, &figure7_blocks(ring64)).expect("floorplan packs");
    (ring64, plan)
}

/// Renders the Figure 7 report with the ASCII floorplan.
pub fn render_figure7(ring64_mm2: f64, plan: &Floorplan) -> String {
    let mut out = format!(
        "Figure 7 — foreseeable SoC: 4x3 mm die, 0.18um.\n\
         Ring-64 modelled at {ring64_mm2:.2} mm2 (paper projects 3.4 mm2); \
         ARM7TDMI at the paper's 0.54 mm2.\n\
         die utilization {:.0}%\n\n",
        plan.utilization() * 100.0
    );
    for p in &plan.placements {
        out.push_str(&format!(
            "  {:<12} {:>5.2} mm2 at ({:.2}, {:.2})  {:.2} x {:.2} mm\n",
            p.block.name, p.block.area_mm2, p.x_mm, p.y_mm, p.w_mm, p.h_mm
        ));
    }
    out.push('\n');
    out.push_str(&plan.ascii(56, 21));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_runs_exactly() {
        let f = figure6();
        assert!(f.exact);
        assert_eq!(f.pixels, 4096);
        assert!(f.core_cycles < 4500);
        assert!(f.pgm.starts_with(b"P5\n64 64\n255\n"));
    }

    #[test]
    fn figure7_packs_and_renders() {
        let (ring64, plan) = figure7();
        assert!((2.6..4.2).contains(&ring64));
        let text = render_figure7(ring64, &plan);
        assert!(text.contains("ARM7TDMI"));
        assert!(text.contains("Ring-64"));
        assert!(text.contains('R'));
    }
}
