//! Table 1 — motion-estimation performance: ASIC vs Systolic Ring vs MMX.
//!
//! Paper setup: "the number of cycles needed for matching a 8x8 reference
//! block against its search area of 8 pixels displacement", on a 64x64
//! picture, with the ring results from a Ring-16. Claims to reproduce:
//! the ASIC is much faster than the ring; the ring is "almost 8 times
//! faster than an MMX solution".

use systolic_ring_baselines::{asic_me, mmx};
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::image::Image;
use systolic_ring_kernels::motion::{self, BlockMatch};

use crate::table::{cycles, ratio, TextTable};

/// Results of the Table 1 reproduction.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Ring cycles (simulated, drains and controller overhead included).
    pub ring_cycles: u64,
    /// Ring geometry used.
    pub geometry: RingGeometry,
    /// MMX-model cycles.
    pub mmx_cycles: u64,
    /// ASIC-model cycles.
    pub asic_cycles: u64,
    /// Number of candidates evaluated (in-frame).
    pub candidates: usize,
    /// `true` if all three implementations agreed on the best match (they
    /// must — they compute the same SADs).
    pub agree: bool,
    /// The agreed best displacement.
    pub best: (isize, isize),
}

impl Table1 {
    /// MMX cycles over ring cycles (paper: "almost 8x").
    pub fn mmx_over_ring(&self) -> f64 {
        self.mmx_cycles as f64 / self.ring_cycles as f64
    }

    /// Ring cycles over ASIC cycles (paper: ASIC "much faster").
    pub fn ring_over_asic(&self) -> f64 {
        self.ring_cycles as f64 / self.asic_cycles as f64
    }
}

/// Runs the full Table 1 workload: 8x8 block, ±8 displacement, 64x64
/// picture, Ring-16 (the paper's configuration).
///
/// # Panics
///
/// Panics if any implementation faults or they disagree on a SAD — that
/// would be a correctness bug, not a measurement.
pub fn run() -> Table1 {
    run_with(RingGeometry::RING_16)
}

/// Runs Table 1 on an arbitrary geometry (used by the scalability sweep).
///
/// # Panics
///
/// See [`run`].
pub fn run_with(geometry: RingGeometry) -> Table1 {
    let (reference, current) = Image::motion_pair(64, 64, 2, -1, 2002);
    let spec = BlockMatch::paper_at(28, 28);

    let ring =
        motion::block_match(geometry, &reference, &current, spec).expect("ring motion estimation");
    let mmx = mmx::full_search(&reference, &current, spec);
    let asic = asic_me::full_search(&reference, &current, spec);

    // Cross-validate: same candidates, same SADs, same winner.
    assert_eq!(ring.candidates.len(), mmx.candidates.len());
    assert_eq!(ring.candidates.len(), asic.candidates.len());
    for (r, m) in ring.candidates.iter().zip(&mmx.candidates) {
        assert_eq!(r, m, "ring vs mmx SAD mismatch");
    }
    let agree = ring.best == mmx.best && ring.best == asic.best;

    Table1 {
        ring_cycles: ring.cycles,
        geometry,
        mmx_cycles: mmx.cycles,
        asic_cycles: asic.cycles,
        candidates: ring.candidates.len(),
        agree,
        best: ring.best,
    }
}

/// Renders the table with the paper's qualitative expectations alongside.
pub fn render(t: &Table1) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 1 — motion estimation: 8x8 block, +-8 displacement, 64x64 picture\n\
         ({} candidates on {}; winner {:?}, all implementations agree: {})\n\n",
        t.candidates, t.geometry, t.best, t.agree
    ));
    let mut table = TextTable::new(["implementation", "cycles", "vs ring", "paper says"]);
    table.row([
        "block-matching ASIC [7] (model)".to_owned(),
        cycles(t.asic_cycles),
        format!("{} faster", ratio(t.ring_over_asic())),
        "\"much faster\" than the ring".to_owned(),
    ]);
    table.row([
        format!("Systolic {} (simulated)", t.geometry),
        cycles(t.ring_cycles),
        "1.0x".to_owned(),
        "-".to_owned(),
    ]);
    table.row([
        "Intel MMX (model)".to_owned(),
        cycles(t.mmx_cycles),
        format!("{} slower", ratio(t.mmx_over_ring())),
        "ring \"almost 8 times faster\"".to_owned(),
    ]);
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        let t = run();
        assert!(t.agree, "implementations disagree on the best match");
        assert_eq!(t.candidates, 289);
        // ASIC much faster than the ring.
        assert!(
            t.ring_over_asic() > 3.0,
            "ring/asic = {:.1}",
            t.ring_over_asic()
        );
        // Ring several times faster than MMX (paper: almost 8x).
        let r = t.mmx_over_ring();
        assert!((4.0..12.0).contains(&r), "mmx/ring = {r:.1}");
    }

    #[test]
    fn render_mentions_everything() {
        let t = run();
        let text = render(&t);
        assert!(text.contains("Table 1"));
        assert!(text.contains("MMX"));
        assert!(text.contains("ASIC"));
        assert!(text.contains("Ring-16"));
    }
}
