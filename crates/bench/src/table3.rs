//! Table 3 — synthesis results: Dnode/core area and frequency per node.

use systolic_ring_isa::RingGeometry;
use systolic_ring_model::{
    core_area, dnode_area_mm2, freq_mhz, HardwareParams, Tech, ST_CMOS_018, ST_CMOS_025,
};

use crate::table::TextTable;

/// One technology row of Table 3: model output next to the paper value.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Technology name.
    pub tech: &'static str,
    /// Modelled Dnode area (mm²).
    pub dnode_mm2: f64,
    /// Paper Dnode area (mm²).
    pub paper_dnode_mm2: f64,
    /// Modelled Ring-8 core area (mm²).
    pub core_mm2: f64,
    /// Paper core area (mm²).
    pub paper_core_mm2: f64,
    /// Modelled frequency (MHz).
    pub freq_mhz: f64,
    /// Paper frequency (MHz).
    pub paper_freq_mhz: f64,
}

/// The two Table 3 rows.
pub fn run() -> Vec<Table3Row> {
    let row = |tech: Tech, paper_dnode: f64, paper_core: f64, paper_freq: f64| {
        let core = core_area(RingGeometry::RING_8, HardwareParams::PAPER, tech);
        Table3Row {
            tech: tech.name,
            dnode_mm2: dnode_area_mm2(tech),
            paper_dnode_mm2: paper_dnode,
            core_mm2: core.total_mm2(),
            paper_core_mm2: paper_core,
            freq_mhz: freq_mhz(RingGeometry::RING_8, tech),
            paper_freq_mhz: paper_freq,
        }
    };
    vec![
        row(ST_CMOS_025, 0.06, 0.9, 180.0),
        row(ST_CMOS_018, 0.04, 0.7, 200.0),
    ]
}

/// Renders Table 3 with paper-vs-model columns.
pub fn render(rows: &[Table3Row]) -> String {
    let mut out = String::from(
        "Table 3 — synthesis results (Ring-8 core; model calibrated on the\n\
         Dnode areas and Ring-8 frequencies, core areas are predictions)\n\n",
    );
    let mut table = TextTable::new([
        "tech",
        "Dnode mm2 (paper)",
        "core mm2 (paper)",
        "freq MHz (paper)",
    ]);
    for r in rows {
        table.row([
            r.tech.to_owned(),
            format!("{:.3} ({:.2})", r.dnode_mm2, r.paper_dnode_mm2),
            format!("{:.2} ({:.1})", r.core_mm2, r.paper_core_mm2),
            format!("{:.0} ({:.0})", r.freq_mhz, r.paper_freq_mhz),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_the_paper_rows() {
        let rows = run();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!((r.dnode_mm2 - r.paper_dnode_mm2).abs() < 1e-9, "{}", r.tech);
            assert!((r.freq_mhz - r.paper_freq_mhz).abs() < 1e-6, "{}", r.tech);
            let core_err = (r.core_mm2 - r.paper_core_mm2).abs() / r.paper_core_mm2;
            assert!(
                core_err < 0.20,
                "{}: core error {:.0}%",
                r.tech,
                core_err * 100.0
            );
        }
    }

    #[test]
    fn render_has_both_nodes() {
        let text = render(&run());
        assert!(text.contains("0.25um"));
        assert!(text.contains("0.18um"));
    }
}
