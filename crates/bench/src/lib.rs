//! Benchmark harness: every table and figure of the paper, regenerated.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`table1`] | Table 1 — motion-estimation cycles (ASIC / Ring / MMX) |
//! | [`table2`] | Table 2 — wavelet-transform implementations |
//! | [`table3`] | Table 3 — synthesis results |
//! | [`comparative`] | §5.1 — MIPS and bandwidth figures |
//! | [`figures`] | Figures 6 (APEX prototype) and 7 (SoC floorplan) |
//! | [`scalability`] | extension A1 — the scalability sweep |
//! | [`kernels_table`] | extension — the validated kernel-library summary |
//! | [`ablations`] | extension A2 + design-decision ablations |
//! | [`batch`] | extension — parallel batch-simulation scaling + oracle |
//!
//! Run `cargo run --release -p systolic-ring-bench --bin report -- all`
//! for the full paper-vs-measured report; the wall-clock benches under
//! `benches/` (plain `std::time::Instant` timers, no external harness)
//! time the same workloads.

pub mod ablations;
pub mod batch;
pub mod comparative;
pub mod figures;
pub mod kernels_table;
pub mod scalability;
pub mod table;
pub mod table1;
pub mod table2;
pub mod table3;
