//! Benchmark harness: every table and figure of the paper, regenerated.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`table1`] | Table 1 — motion-estimation cycles (ASIC / Ring / MMX) |
//! | [`table2`] | Table 2 — wavelet-transform implementations |
//! | [`table3`] | Table 3 — synthesis results |
//! | [`comparative`] | §5.1 — MIPS and bandwidth figures |
//! | [`figures`] | Figures 6 (APEX prototype) and 7 (SoC floorplan) |
//! | [`scalability`] | extension A1 — the scalability sweep |
//! | [`kernels_table`] | extension — the validated kernel-library summary |
//! | [`ablations`] | extension A2 + design-decision ablations |
//! | [`batch`] | extension — parallel batch-simulation scaling + oracle |
//! | [`record`] | extension A11 — the versioned `BENCH_*.json` record schema |
//! | [`trajectory`] | extension A11 — the perf-trajectory suites + generated doc tables |
//! | [`compare`] | extension A11 — the `srbench-compare` regression gate |
//! | [`service`] | extension A12 — the multi-tenant service suite (+ the `srload` load generator) |
//!
//! Run `cargo run --release -p systolic-ring-bench --bin report -- all`
//! for the full paper-vs-measured report; the wall-clock benches under
//! `benches/` (plain `std::time::Instant` timers, no external harness)
//! time the same workloads. `report -- json` writes the machine-readable
//! perf trajectory (`BENCH_*.json`), `report -- experiments-md` renders
//! the EXPERIMENTS.md tables from it, and the `srbench-compare` binary
//! gates regressions against the checked-in baselines in CI.

pub mod ablations;
pub mod batch;
pub mod comparative;
pub mod compare;
pub mod figures;
pub mod kernels_table;
pub mod record;
pub mod scalability;
pub mod service;
pub mod table;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod trajectory;
