//! Scalability sweep (extension A1) — the paper's headline adjective,
//! quantified.
//!
//! §4.1 argues that "a 256 Dnodes version ... still fully dynamically
//! reconfigurable ... would requires a prohibitive, disproportioned RISC
//! configuration controller", motivating the dual-level (global/local)
//! configuration scheme. This sweep quantifies the argument: for each ring
//! size it reports the area and clock from the technology model, the
//! motion-estimation cycle count from the hardware schedule, and the
//! configuration-write bandwidth a *global-only* (no contexts, no local
//! mode) design would demand of the controller — which grows linearly with
//! the fabric while the controller issues one write per cycle.

use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::motion;
use systolic_ring_model::{area, core_area, freq_mhz, peak_mips, HardwareParams, ST_CMOS_018};

use crate::table::{cycles, TextTable};

/// One sweep point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Geometry of this point.
    pub geometry: RingGeometry,
    /// Core area at 0.18 µm (mm²).
    pub area_mm2: f64,
    /// Area per Dnode (mm²) — flat area growth is the scalability claim.
    pub area_per_dnode_mm2: f64,
    /// Modelled clock (MHz).
    pub freq_mhz: f64,
    /// Peak GOPS (1 op/Dnode/cycle).
    pub peak_gips: f64,
    /// Cycles for the Table 1 motion-estimation workload (289 candidates,
    /// 64-pixel blocks) per the hardware schedule.
    pub me_cycles: u64,
    /// Configuration words a global-only design must rewrite per cycle to
    /// emulate per-cycle reconfiguration of the whole fabric.
    pub global_only_writes_per_cycle: u64,
}

/// The swept geometries, Ring-4 to Ring-256.
pub fn sweep_geometries() -> Vec<RingGeometry> {
    [
        (2usize, 2usize),
        (4, 2),
        (4, 4),
        (8, 4),
        (8, 8),
        (16, 8),
        (16, 16),
    ]
    .into_iter()
    .map(|(l, w)| RingGeometry::new(l, w).expect("valid geometry"))
    .collect()
}

/// Runs the sweep.
pub fn run() -> Vec<SweepPoint> {
    sweep_geometries()
        .into_iter()
        .map(|g| {
            let core = core_area(g, HardwareParams::PAPER, ST_CMOS_018);
            let f = freq_mhz(g, ST_CMOS_018);
            // Rewriting every Dnode instruction and every switch port each
            // cycle, at one controller write per cycle.
            let writes = g.dnodes() as u64 + (g.switches() * g.width() * 4) as u64;
            SweepPoint {
                geometry: g,
                area_mm2: core.total_mm2(),
                area_per_dnode_mm2: core.total_mm2() / g.dnodes() as f64,
                freq_mhz: f,
                peak_gips: peak_mips(g, ST_CMOS_018) / 1000.0,
                me_cycles: motion::analytic_cycles(g, 289, 64),
                global_only_writes_per_cycle: writes,
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "Scalability sweep (extension) — area/clock from the calibrated model,\n\
         ME cycles from the hardware schedule (289 candidates, 8x8 blocks).\n\
         `global-only writes` is the per-cycle configuration traffic a design\n\
         without contexts/local mode would demand of a 1-write/cycle controller.\n\n",
    );
    let mut t = TextTable::new([
        "ring",
        "area mm2",
        "mm2/Dnode",
        "clock MHz",
        "peak GOPS",
        "ME cycles",
        "global-only writes/cycle",
    ]);
    for p in points {
        t.row([
            format!("Ring-{}", p.geometry.dnodes()),
            format!("{:.2}", p.area_mm2),
            format!("{:.3}", p.area_per_dnode_mm2),
            format!("{:.0}", p.freq_mhz),
            format!("{:.1}", p.peak_gips),
            cycles(p.me_cycles),
            format!("{}", p.global_only_writes_per_cycle),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nconfig SRAM per context at Ring-256: {:.0} bits\n",
        area::context_bits(RingGeometry::new(16, 16).expect("geometry"))
    ));
    out.push_str(
        "note: ME cycles stop improving past Ring-64 — the serial bus drain\n\
         (4 cycles per SAD unit per round) becomes the bottleneck, an honest\n\
         limit of the single shared bus the paper's architecture provides.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_per_dnode_stays_flat() {
        let points = run();
        let first = points.first().expect("points").area_per_dnode_mm2;
        let last = points.last().expect("points").area_per_dnode_mm2;
        // The scalability claim: no routing blow-up; per-Dnode cost stays
        // within ~50% across a 64x size range.
        assert!(last < first * 1.5, "{first:.4} -> {last:.4}");
    }

    #[test]
    fn me_speeds_up_with_size_until_drain_bound() {
        let points = run();
        // Compute-bound regime: up to Ring-64 every doubling helps.
        for pair in points.windows(2).take(4) {
            assert!(
                pair[1].me_cycles < pair[0].me_cycles,
                "{} vs {}",
                pair[0].geometry,
                pair[1].geometry
            );
        }
        // Beyond that the serial bus drain (4 cycles per SAD unit per
        // round) dominates and scaling saturates — a real architectural
        // finding the report surfaces.
        let ring64 = points
            .iter()
            .find(|p| p.geometry.dnodes() == 64)
            .expect("Ring-64");
        let ring256 = points.last().expect("points");
        assert!(ring256.me_cycles as f64 > 0.5 * ring64.me_cycles as f64);
    }

    #[test]
    fn global_only_demand_grows_linearly() {
        let points = run();
        let ring4 = &points[0];
        let ring256 = &points[points.len() - 1];
        let growth =
            ring256.global_only_writes_per_cycle as f64 / ring4.global_only_writes_per_cycle as f64;
        assert!(growth > 40.0, "growth = {growth:.0}x");
        // Even the smallest ring already exceeds 1 write/cycle.
        assert!(ring4.global_only_writes_per_cycle > 1);
    }

    #[test]
    fn clock_degrades_only_logarithmically() {
        let points = run();
        let fastest = points.iter().map(|p| p.freq_mhz).fold(0.0, f64::max);
        let slowest = points.iter().map(|p| p.freq_mhz).fold(f64::MAX, f64::min);
        assert!(slowest > 0.8 * fastest, "{slowest:.0} vs {fastest:.0}");
    }

    #[test]
    fn render_has_all_rows() {
        let text = render(&run());
        assert!(text.contains("Ring-4"));
        assert!(text.contains("Ring-256"));
    }
}
