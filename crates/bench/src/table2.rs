//! Table 2 — wavelet-transform implementations compared.
//!
//! Paper setup: 2-D direct lifting transform of a 1024x768 16-bit image,
//! one pixel sample per clock cycle, 25% of the Ring-16 left free; the
//! comparison rows are the published figures of two dedicated wavelet
//! chips (\[10\], \[11\]).

use systolic_ring_baselines::wavelet_cores::{
    ring16_record, WaveletCoreRecord, DIOU_LIFTING, NAVARRO_MALLAT,
};
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::golden;
use systolic_ring_kernels::image::Image;
use systolic_ring_kernels::wavelet;
use systolic_ring_model::{core_area, freq_mhz, HardwareParams, ST_CMOS_018};

use crate::table::{cycles, TextTable};

/// Results of the Table 2 reproduction.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// Image dimensions processed.
    pub width: usize,
    /// Image dimensions processed.
    pub height: usize,
    /// Simulated cycles for the full 2-D transform.
    pub cycles: u64,
    /// Cycles per pixel (paper: 1).
    pub cycles_per_pixel: f64,
    /// Fraction of Dnodes never used (paper: 25% free).
    pub free_fraction: f64,
    /// `true` if the hardware coefficients matched the golden transform.
    pub exact: bool,
    /// The three comparison records (the ring row uses the area/frequency
    /// model).
    pub records: Vec<WaveletCoreRecord>,
}

/// Runs Table 2 on a `width` x `height` image (the paper uses 1024x768;
/// smaller sizes keep the same per-pixel behaviour).
///
/// # Panics
///
/// Panics if the kernel faults or produces wrong coefficients.
pub fn run(width: usize, height: usize) -> Table2 {
    let geometry = RingGeometry::RING_16;
    let image = Image::textured(width, height, 53);
    let run = wavelet::forward_2d(geometry, &image).expect("wavelet transform");
    let expect = golden::lifting53_forward_2d(width, height, image.data());
    let exact = run.coefficients == expect;
    assert!(exact, "hardware wavelet deviates from the golden transform");

    let area = core_area(geometry, HardwareParams::PAPER, ST_CMOS_018).total_mm2();
    let freq = freq_mhz(geometry, ST_CMOS_018);
    let cycles_per_pixel = run.cycles as f64 / run.pixels as f64;
    let free_fraction = run.stats.idle_dnodes() as f64 / geometry.dnodes() as f64;

    Table2 {
        width,
        height,
        cycles: run.cycles,
        cycles_per_pixel,
        free_fraction,
        exact,
        records: vec![
            NAVARRO_MALLAT,
            DIOU_LIFTING,
            ring16_record(area, freq, 1.0 / cycles_per_pixel),
        ],
    }
}

/// Renders the comparison table plus the measured ring figures.
pub fn render(t: &Table2) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 2 — 2-D 5/3 lifting wavelet, {}x{} 16-bit image\n\
         (simulated {} cycles = {:.2} cycles/pixel; {:.0}% of the fabric left free;\n\
          coefficients bit-exact vs the golden transform: {})\n\n",
        t.width,
        t.height,
        cycles(t.cycles),
        t.cycles_per_pixel,
        t.free_fraction * 100.0,
        t.exact
    ));
    let mut table = TextTable::new([
        "circuit",
        "techno",
        "area mm2",
        "freq MHz",
        "memory",
        "Msamples/s",
        "flexible",
    ]);
    for r in &t.records {
        table.row([
            r.name.to_owned(),
            format!("{:.2}um", r.techno_um),
            format!("{:.1}", r.area_mm2),
            format!("{:.0}", r.freq_mhz),
            r.memory.to_owned(),
            format!("{:.0}", r.msamples_per_s()),
            if r.fixed_function { "no" } else { "yes" }.to_owned(),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_holds() {
        let t = run(64, 48);
        assert!(t.exact);
        // ~1 cycle/pixel for the full 2-D transform (the paper's rate).
        assert!(t.cycles_per_pixel < 1.3, "cpp = {:.2}", t.cycles_per_pixel);
        // ~25% of the fabric free.
        assert!(
            (t.free_fraction - 0.3125).abs() < 0.07,
            "free = {}",
            t.free_fraction
        );
        // The ring is far smaller than the Mallat chip and competitive in
        // throughput.
        let ring = &t.records[2];
        assert!(ring.area_mm2 < NAVARRO_MALLAT.area_mm2 / 10.0);
        assert!(ring.msamples_per_s() > 100.0);
    }

    #[test]
    fn render_has_all_rows() {
        let t = run(32, 16);
        let text = render(&t);
        assert!(text.contains("Mallat"));
        assert!(text.contains("Lifting core"));
        assert!(text.contains("Ring-16"));
    }
}
