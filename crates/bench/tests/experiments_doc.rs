//! Pins the perf-trajectory contract between the checked-in
//! `BENCH_*.json` baselines and the prose that cites them:
//!
//! * every baseline parses under the current schema version;
//! * the generated A8/A10/A11/A12/A13 blocks in EXPERIMENTS.md are
//!   byte-identical to `report -- experiments-md` output;
//! * a fresh (wall-clock-free) conformance run passes the regression
//!   gate against the checked-in conformance baseline.

use std::path::{Path, PathBuf};

use systolic_ring_bench::compare::{compare_files, DEFAULT_TOLERANCE};
use systolic_ring_bench::record::{conformance_file, BenchFile, SCHEMA, VERSION};
use systolic_ring_bench::trajectory::{self, CONFORMANCE_FILE, TRAJECTORY_FILES};
use systolic_ring_harness::conformance;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn load(name: &str) -> BenchFile {
    let path = repo_root().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} unreadable: {e}", path.display()));
    BenchFile::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Every checked-in baseline parses at the current schema version and
/// carries at least one record per declared suite.
#[test]
fn checked_in_baselines_parse_at_the_current_version() {
    for (suite, name) in TRAJECTORY_FILES {
        let file = load(name);
        assert_eq!(file.suite, suite, "{name}");
        assert!(!file.records.is_empty(), "{name}: empty suite");
        // Byte-stable emission: re-serializing the parsed file must
        // reproduce the checked-in bytes exactly.
        let text = std::fs::read_to_string(repo_root().join(name)).unwrap();
        assert_eq!(file.to_json(), text, "{name}: not in canonical form");
    }
    let conf = load(CONFORMANCE_FILE);
    assert_eq!(conf.suite, "conformance");
    assert!(conf.records.iter().all(|r| r.pass == Some(true)));
    let _ = (SCHEMA, VERSION); // parse() already enforced the header
}

/// The generated tables in EXPERIMENTS.md are byte-identical to what
/// `report -- experiments-md` renders from the checked-in JSON, so the
/// prose can never drift from the baselines it cites.
#[test]
fn experiments_md_blocks_are_byte_identical() {
    let root = repo_root();
    let rendered = trajectory::experiments_md(&root).expect("render from checked-in JSON");
    let doc = std::fs::read_to_string(root.join("EXPERIMENTS.md")).expect("EXPERIMENTS.md");
    for table in ["A8", "A10", "A11", "A12", "A13"] {
        let begin = format!("<!-- begin generated table: {table} (report -- experiments-md) -->");
        let end = format!("<!-- end generated table: {table} -->");
        let block = {
            let start = rendered
                .find(&begin)
                .unwrap_or_else(|| panic!("renderer emits no {table} block"));
            let stop = rendered[start..]
                .find(&end)
                .unwrap_or_else(|| panic!("renderer leaves {table} block open"));
            &rendered[start..start + stop + end.len()]
        };
        assert!(
            doc.contains(block),
            "EXPERIMENTS.md table {table} is stale — regenerate with \
             `cargo run --release -p systolic-ring-bench --bin report -- experiments-md`\n\
             expected block:\n{block}"
        );
    }
}

/// A fresh conformance sweep (no wall-clock involved) passes the
/// regression gate against the checked-in baseline.
#[test]
fn fresh_conformance_run_passes_the_gate() {
    let baseline = load(CONFORMANCE_FILE);
    let report = conformance::run_dir(&repo_root().join("programs")).expect("corpus runs");
    let fresh = conformance_file(&report);
    let outcome = compare_files(&baseline, &fresh, DEFAULT_TOLERANCE);
    assert!(
        outcome.passed(),
        "gate failures:\n{}",
        outcome
            .failures
            .iter()
            .map(|f| format!("{}: {}", f.code, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(outcome.compared, baseline.records.len());
}
