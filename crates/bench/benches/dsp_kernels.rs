//! Extended kernel library: matvec, separable convolution and FFT stages
//! on the simulated fabric.

use systolic_ring_harness::microbench::{black_box, Group};
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::golden::Complex16;
use systolic_ring_kernels::image::{test_signal, Image};
use systolic_ring_kernels::{conv, fft, matvec};

fn main() {
    let g = RingGeometry::RING_16;

    let mut group = Group::new("dsp_kernels");

    let a = test_signal(16 * 12, 1);
    let x = test_signal(12, 2);
    group.bench("matvec_16x12", || {
        matvec::multiply(g, black_box(&a), 16, 12, black_box(&x)).expect("matvec")
    });

    let image = Image::textured(24, 24, 3);
    group.bench("conv3x3_24x24", || {
        conv::conv3x3(g, &[1, 2, 1], &[1, 2, 1], black_box(&image)).expect("conv")
    });

    let signal: Vec<Complex16> = (0..32)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * (3 * i) as f64 / 32.0;
            ((800.0 * theta.cos()) as i16, (800.0 * theta.sin()) as i16)
        })
        .collect();
    group.bench("fft_32", || {
        fft::fft(g, black_box(&signal), 15).expect("fft")
    });
    group.bench("fft_32_golden_software", || {
        fft::golden_fft(black_box(&signal), 15)
    });

    group.finish_print();
}
