//! Criterion bench for the Table 1 motion-estimation workload: times the
//! simulated Ring, the MMX model and the ASIC model on the same problem.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use systolic_ring_baselines::{asic_me, mmx};
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::image::Image;
use systolic_ring_kernels::motion::{self, BlockMatch};

fn bench_table1(c: &mut Criterion) {
    let (reference, current) = Image::motion_pair(64, 64, 2, -1, 2002);
    let spec = BlockMatch { x0: 28, y0: 28, block: 8, range: 4 };

    let mut group = c.benchmark_group("table1_motion");
    group.sample_size(10);
    group.bench_function("ring16_simulated", |b| {
        b.iter(|| {
            motion::block_match(
                RingGeometry::RING_16,
                black_box(&reference),
                black_box(&current),
                spec,
            )
            .expect("ring ME")
        })
    });
    group.bench_function("mmx_model", |b| {
        b.iter(|| mmx::full_search(black_box(&reference), black_box(&current), spec))
    });
    group.bench_function("asic_model", |b| {
        b.iter(|| asic_me::full_search(black_box(&reference), black_box(&current), spec))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
