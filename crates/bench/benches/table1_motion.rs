//! Table 1 motion-estimation workload: times the simulated Ring, the MMX
//! model and the ASIC model on the same problem.

use systolic_ring_baselines::{asic_me, mmx};
use systolic_ring_harness::microbench::{black_box, Group};
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::image::Image;
use systolic_ring_kernels::motion::{self, BlockMatch};

fn main() {
    let (reference, current) = Image::motion_pair(64, 64, 2, -1, 2002);
    let spec = BlockMatch {
        x0: 28,
        y0: 28,
        block: 8,
        range: 4,
    };

    let mut group = Group::new("table1_motion");
    group.bench("ring16_simulated", || {
        motion::block_match(
            RingGeometry::RING_16,
            black_box(&reference),
            black_box(&current),
            spec,
        )
        .expect("ring ME")
    });
    group.bench("mmx_model", || {
        mmx::full_search(black_box(&reference), black_box(&current), spec)
    });
    group.bench("asic_model", || {
        asic_me::full_search(black_box(&reference), black_box(&current), spec)
    });
    group.finish_print();
}
