//! Criterion bench for the §5.1 comparative figures: the saturated-MAC
//! fabric and the scalar baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use systolic_ring_baselines::scalar::{self, CostModel};
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::mac;

fn bench_comparative(c: &mut Criterion) {
    let a: Vec<i16> = (0..512).map(|v| (v % 97) as i16).collect();
    let b_vec: Vec<i16> = (0..512).map(|v| (v % 89) as i16 - 44).collect();

    let mut group = c.benchmark_group("comparative_mips");
    group.sample_size(10);
    group.bench_function("ring8_dot_product_simulated", |b| {
        b.iter(|| {
            mac::dot_product(RingGeometry::RING_8, black_box(&a), black_box(&b_vec))
                .expect("dot product")
        })
    });
    group.bench_function("ring8_dot_product_parallel_simulated", |b| {
        b.iter(|| {
            mac::dot_product_parallel(RingGeometry::RING_8, black_box(&a), black_box(&b_vec))
                .expect("dot product")
        })
    });
    group.bench_function("scalar_model_dot_product", |b| {
        b.iter(|| scalar::dot_product(CostModel::PENTIUM_II_CLASS, black_box(&a), black_box(&b_vec)))
    });
    group.finish();
}

criterion_group!(benches, bench_comparative);
criterion_main!(benches);
