//! §5.1 comparative figures: the saturated-MAC fabric and the scalar
//! baseline.

use systolic_ring_baselines::scalar::{self, CostModel};
use systolic_ring_harness::microbench::{black_box, Group};
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::mac;

fn main() {
    let a: Vec<i16> = (0..512).map(|v| (v % 97) as i16).collect();
    let b: Vec<i16> = (0..512).map(|v| (v % 89) as i16 - 44).collect();

    let mut group = Group::new("comparative_mips");
    group.bench("ring8_dot_product_simulated", || {
        mac::dot_product(RingGeometry::RING_8, black_box(&a), black_box(&b)).expect("dot product")
    });
    group.bench("ring8_dot_product_parallel_simulated", || {
        mac::dot_product_parallel(RingGeometry::RING_8, black_box(&a), black_box(&b))
            .expect("dot product")
    });
    group.bench("scalar_model_dot_product", || {
        scalar::dot_product(CostModel::PENTIUM_II_CLASS, black_box(&a), black_box(&b))
    });
    group.finish_print();
}
