//! Criterion bench for the Table 3 technology model (cheap analytic code;
//! the bench guards against accidental blow-ups in the sweep path).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use systolic_ring_isa::RingGeometry;
use systolic_ring_model::{core_area, freq_mhz, HardwareParams, ST_CMOS_018, ST_CMOS_025};

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_synthesis");
    group.bench_function("core_area_both_nodes", |b| {
        b.iter(|| {
            let a = core_area(
                black_box(RingGeometry::RING_8),
                HardwareParams::PAPER,
                ST_CMOS_025,
            );
            let b2 = core_area(
                black_box(RingGeometry::RING_8),
                HardwareParams::PAPER,
                ST_CMOS_018,
            );
            (a.total_mm2(), b2.total_mm2())
        })
    });
    group.bench_function("freq_model", |b| {
        b.iter(|| freq_mhz(black_box(RingGeometry::RING_64), ST_CMOS_018))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
