//! Table 3 technology model (cheap analytic code; the bench guards
//! against accidental blow-ups in the sweep path).

use systolic_ring_harness::microbench::{black_box, Group};
use systolic_ring_isa::RingGeometry;
use systolic_ring_model::{core_area, freq_mhz, HardwareParams, ST_CMOS_018, ST_CMOS_025};

fn main() {
    let mut group = Group::new("table3_synthesis").with_iters(10, 100);
    group.bench("core_area_both_nodes", || {
        let a = core_area(
            black_box(RingGeometry::RING_8),
            HardwareParams::PAPER,
            ST_CMOS_025,
        );
        let b = core_area(
            black_box(RingGeometry::RING_8),
            HardwareParams::PAPER,
            ST_CMOS_018,
        );
        (a.total_mm2(), b.total_mm2())
    });
    group.bench("freq_model", || {
        freq_mhz(black_box(RingGeometry::RING_64), ST_CMOS_018)
    });
    group.finish_print();
}
