//! Criterion bench for the ablation workloads: spatial vs folded FIR and
//! the recursive IIR on the feedback network.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::image::test_signal;
use systolic_ring_kernels::{fir, iir};

fn bench_ablations(c: &mut Criterion) {
    let input = test_signal(128, 7);
    let coeffs = [5, -3, 2];

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("fir_spatial", |b| {
        b.iter(|| fir::spatial(RingGeometry::RING_16, &coeffs, black_box(&input)).expect("fir"))
    });
    group.bench_function("fir_folded_local", |b| {
        b.iter(|| {
            fir::local_serial(RingGeometry::RING_16, &coeffs, black_box(&input)).expect("fir")
        })
    });
    group.bench_function("iir_feedback_network", |b| {
        b.iter(|| {
            iir::first_order(RingGeometry::RING_8, 100, 8, black_box(&input)).expect("iir")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
