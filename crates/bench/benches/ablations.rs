//! Ablation workloads: spatial vs folded FIR and the recursive IIR on the
//! feedback network.

use systolic_ring_harness::microbench::{black_box, Group};
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::image::test_signal;
use systolic_ring_kernels::{fir, iir};

fn main() {
    let input = test_signal(128, 7);
    let coeffs = [5, -3, 2];

    let mut group = Group::new("ablations");
    group.bench("fir_spatial", || {
        fir::spatial(RingGeometry::RING_16, &coeffs, black_box(&input)).expect("fir")
    });
    group.bench("fir_folded_local", || {
        fir::local_serial(RingGeometry::RING_16, &coeffs, black_box(&input)).expect("fir")
    });
    group.bench("iir_feedback_network", || {
        iir::first_order(RingGeometry::RING_8, 100, 8, black_box(&input)).expect("iir")
    });
    group.finish_print();
}
