//! Dataflow compiler: compile time and compiled execution vs the software
//! interpreter.

use systolic_ring_compiler::{compile, Graph};
use systolic_ring_core::MachineParams;
use systolic_ring_harness::microbench::{black_box, Group};
use systolic_ring_isa::dnode::AluOp;
use systolic_ring_isa::RingGeometry;

fn blend_graph() -> Graph {
    let mut g = Graph::new();
    let p = g.input();
    let q = g.input();
    let w = g.constant(11);
    let w_inv = g.constant(5);
    let four = g.constant(4);
    let cap = g.constant(255);
    let pw = g.op(AluOp::Mul, p, w);
    let qw = g.op(AluOp::Mul, q, w_inv);
    let sum = g.op(AluOp::Add, pw, qw);
    let scaled = g.op(AluOp::Shr, sum, four);
    let y = g.op(AluOp::Min, scaled, cap);
    g.output(y);
    g
}

fn main() {
    let g = blend_graph();
    let p: Vec<i16> = (0..256).map(|i| i % 256).collect();
    let q: Vec<i16> = (0..256).map(|i| 255 - i % 256).collect();
    let streams: [&[i16]; 2] = [&p, &q];

    let mut group = Group::new("compiler");
    group.bench("compile_blend_graph", || {
        compile(black_box(&g), RingGeometry::RING_16, MachineParams::PAPER).expect("ok")
    });
    let compiled = compile(&g, RingGeometry::RING_16, MachineParams::PAPER).expect("ok");
    group.bench("run_compiled_256_samples", || {
        compiled.run(black_box(&streams)).expect("runs")
    });
    group.bench("interpret_256_samples", || {
        g.interpret(black_box(&streams)).expect("ok")
    });
    group.finish_print();
}
