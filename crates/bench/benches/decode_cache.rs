//! Decode-cache ablation: simulated cycles per wall-clock second on the
//! Table 1 motion-estimation and Table 2 wavelet workloads, with the
//! predecoded configuration cache enabled (the default) and disabled
//! (the decode-per-cycle reference path).
//!
//! The kernels construct their machines internally with
//! [`MachineParams::PAPER`], so the uncached runs use the scoped
//! [`with_decode_cache`] override rather than threading a flag through
//! every driver. The fused engine is pinned off for *both* sides so this
//! bench keeps measuring the decode cache itself; the fused-vs-decoded
//! comparison lives in the `fused` bench.
//!
//! [`MachineParams::PAPER`]: systolic_ring_core::MachineParams::PAPER

use systolic_ring_core::{with_decode_cache, with_fused};
use systolic_ring_harness::microbench::{black_box, Group, Measurement};
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::image::Image;
use systolic_ring_kernels::motion::{self, BlockMatch};
use systolic_ring_kernels::wavelet;

fn cycles_per_sec(cycles: u64, m: Measurement) -> f64 {
    cycles as f64 / m.median.as_secs_f64()
}

fn report(name: &str, cycles: u64, cached: Measurement, uncached: Measurement) {
    let fast = cycles_per_sec(cycles, cached);
    let slow = cycles_per_sec(cycles, uncached);
    println!(
        "  {name:<16} {cycles:>9} cycles   cached {:>7.2} Mcyc/s   uncached {:>7.2} Mcyc/s   speedup {:.2}x",
        fast / 1e6,
        slow / 1e6,
        fast / slow
    );
}

fn main() {
    // Table 1: full-search motion estimation on a Ring-16.
    let (reference, current) = Image::motion_pair(64, 64, 2, -1, 2002);
    let spec = BlockMatch {
        x0: 28,
        y0: 28,
        block: 8,
        range: 4,
    };
    let motion_run = || {
        motion::block_match_run(
            RingGeometry::RING_16,
            black_box(&reference),
            black_box(&current),
            spec,
        )
        .expect("ring ME")
    };
    let motion_cycles = motion_run().cycles;

    // Table 2: 2-D 5/3 lifting wavelet on a Ring-16.
    let image = Image::textured(64, 48, 53);
    let wavelet_run =
        || wavelet::forward_2d(RingGeometry::RING_16, black_box(&image)).expect("wavelet");
    let wavelet_cycles = wavelet_run().cycles;

    let mut group = Group::new("decode_cache");
    let motion_cached = group.bench("table1_motion/cached", || with_fused(false, motion_run));
    let motion_uncached = group.bench("table1_motion/uncached", || {
        with_fused(false, || with_decode_cache(false, motion_run))
    });
    let wavelet_cached = group.bench("table2_wavelet/cached", || with_fused(false, wavelet_run));
    let wavelet_uncached = group.bench("table2_wavelet/uncached", || {
        with_fused(false, || with_decode_cache(false, wavelet_run))
    });
    group.finish_print();

    println!("simulated throughput (median):");
    report(
        "table1_motion",
        motion_cycles,
        motion_cached,
        motion_uncached,
    );
    report(
        "table2_wavelet",
        wavelet_cycles,
        wavelet_cached,
        wavelet_uncached,
    );
}
