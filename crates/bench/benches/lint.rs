//! Static lint vs dynamic simulation: the speed claim behind `ringlint`.
//!
//! The lint's reason to exist is that it verifies an object in
//! microseconds, without instantiating a `RingMachine`. This bench pits
//! `lint_object` against the dynamic alternative it replaces —
//! instantiate a paper-sized machine, load the object and simulate 1 000
//! cycles — over every generated kernel object, and enforces the
//! repository's acceptance floor: linting must be at least 100x faster.

use systolic_ring_core::{MachineParams, RingMachine};
use systolic_ring_harness::microbench::{black_box, Group};
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::objects;
use systolic_ring_lint::lint_object;

fn main() {
    let corpus = objects::all();

    let mut group = Group::new("lint").with_iters(10, 50);
    let lint = group.bench("lint_all_kernel_objects", || {
        for (_, object) in &corpus {
            black_box(lint_object(black_box(object)));
        }
    });
    let simulate = group.bench("instantiate_and_simulate_1k_cycles", || {
        for (name, object) in &corpus {
            let geometry = object.geometry.unwrap_or(RingGeometry::RING_8);
            let mut m = RingMachine::new(geometry, MachineParams::PAPER);
            m.load(object).unwrap_or_else(|e| panic!("{name}: {e}"));
            m.run(1_000).unwrap_or_else(|e| panic!("{name}: {e}"));
            black_box(m.stats().cycles);
        }
    });
    group.finish_print();

    let ratio = simulate.median.as_nanos() as f64 / lint.median.as_nanos().max(1) as f64;
    println!("speedup: lint is {ratio:.0}x faster than simulating 1k cycles");
    assert!(
        ratio >= 100.0,
        "lint must be >=100x faster than instantiate+simulate ({ratio:.1}x)"
    );
}
