//! Batch-engine scaling bench: wall-clock for a ≥32-job kernel sweep,
//! serial vs `BatchRunner` across worker counts, with bit-identical
//! per-job results checked on every configuration.

use systolic_ring_harness::job::Job;
use systolic_ring_harness::runner::BatchRunner;
use systolic_ring_kernels::batch as kbatch;

fn sweep_jobs() -> Vec<Job> {
    // 36 independent kernel jobs (mixed FIR / MAC / IIR / matvec /
    // wavelet), deterministic streams.
    kbatch::kernel_sweep(0xba7c, 36)
}

fn main() {
    let jobs = sweep_jobs();
    println!("batch_scaling: {} jobs", jobs.len());

    let serial = BatchRunner::run_serial(&jobs);
    println!(
        "  serial                 {:>10.3} ms",
        serial.wall.as_secs_f64() * 1e3
    );

    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut workers = 2usize;
    let mut counts = vec![1usize];
    while workers < max_workers {
        counts.push(workers);
        workers *= 2;
    }
    counts.push(max_workers);
    counts.dedup();

    for &n in &counts {
        let parallel = BatchRunner::with_workers(n).run(&jobs);
        assert!(
            parallel.outcomes_match(&serial),
            "parallel results must be bit-identical to serial at {n} workers"
        );
        let summary = parallel.summary();
        println!(
            "  {:>2} workers             {:>10.3} ms   speedup {:>5.2}x   {:>8.2} sim-MIPS",
            n,
            parallel.wall.as_secs_f64() * 1e3,
            serial.wall.as_secs_f64() / parallel.wall.as_secs_f64(),
            summary.sim_mips
        );
    }
}
