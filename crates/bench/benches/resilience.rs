//! Resilience bench: what fault tolerance costs and what it buys.
//!
//! Three measurements, all on the Table 1 / Table 2 workloads:
//!
//! 1. **Detection overhead** — the Table 1 motion-estimation and Table 2
//!    wavelet kernels with per-cycle parity scrubs armed (injection off)
//!    versus bare. The acceptance bound is ≤ 5% wall-clock overhead.
//! 2. **Checkpoint cost** — wall-clock of `checkpoint()` and `restore()`
//!    on a configured Ring-16, the unit of rollback the retry policy pays
//!    per recovery.
//! 3. **Resilience table** — a chaos campaign across every kernel family
//!    and a sweep of injection rates: clean / recovered / detected-failed
//!    / undetected counts, detected faults, retries and remaps per rate.
//!
//! The kernels construct their machines internally, so detection is armed
//! through the scoped [`with_faults`] override, mirroring how the decode
//! cache ablation uses [`with_decode_cache`].
//!
//! [`with_decode_cache`]: systolic_ring_core::with_decode_cache

use systolic_ring_core::{with_faults, FaultConfig, MachineParams, RingMachine};
use systolic_ring_harness::campaign::run_chaos;
use systolic_ring_harness::job::RetryPolicy;
use systolic_ring_harness::microbench::{black_box, Group, Measurement};
use systolic_ring_harness::runner::BatchRunner;
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::batch::campaign_suite;
use systolic_ring_kernels::image::Image;
use systolic_ring_kernels::motion::{self, BlockMatch};
use systolic_ring_kernels::wavelet;

fn overhead_pct(bare: &Measurement, armed: &Measurement) -> f64 {
    (armed.median.as_secs_f64() / bare.median.as_secs_f64() - 1.0) * 100.0
}

fn main() {
    // Table 1: full-search motion estimation on a Ring-16.
    let (reference, current) = Image::motion_pair(64, 64, 2, -1, 2002);
    let spec = BlockMatch {
        x0: 28,
        y0: 28,
        block: 8,
        range: 4,
    };
    let motion_run = || {
        motion::block_match_run(
            RingGeometry::RING_16,
            black_box(&reference),
            black_box(&current),
            spec,
        )
        .expect("ring ME")
    };

    // Table 2: 2-D 5/3 lifting wavelet on a Ring-16.
    let image = Image::textured(64, 48, 53);
    let wavelet_run =
        || wavelet::forward_2d(RingGeometry::RING_16, black_box(&image)).expect("wavelet");

    // Detection armed, injection off: the configuration every production
    // run would ship with if this were silicon.
    let detect = FaultConfig::detect_only(1);

    let mut group = Group::new("resilience");
    let motion_bare = group.bench("table1_motion/bare", motion_run);
    let motion_armed = group.bench("table1_motion/detect", || with_faults(detect, motion_run));
    let wavelet_bare = group.bench("table2_wavelet/bare", wavelet_run);
    let wavelet_armed = group.bench("table2_wavelet/detect", || with_faults(detect, wavelet_run));

    // Checkpoint/restore cost on a configured, busy Ring-16.
    let mut m = RingMachine::new(RingGeometry::RING_16, MachineParams::PAPER);
    let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One)
        .write_reg(Reg::R0)
        .write_out();
    for d in 0..m.geometry().dnodes() {
        m.set_local_program(d, &[mac]).expect("program");
        m.set_mode(d, DnodeMode::Local);
    }
    m.run(256).expect("warm-up");
    let ckpt_cost = group.bench("ring16/checkpoint", || black_box(m.checkpoint()));
    let snapshot = m.checkpoint();
    let restore_cost = group.bench("ring16/restore", || m.restore(black_box(&snapshot)));
    group.finish_print();

    println!("detection overhead (median, parity scrub every cycle):");
    println!(
        "  table1_motion    {:+.2}%    table2_wavelet   {:+.2}%",
        overhead_pct(&motion_bare, &motion_armed),
        overhead_pct(&wavelet_bare, &wavelet_armed),
    );
    println!(
        "checkpoint {:.1} us   restore {:.1} us (Ring-16)",
        ckpt_cost.median.as_secs_f64() * 1e6,
        restore_cost.median.as_secs_f64() * 1e6,
    );

    // The resilience table: every kernel family under a fault-rate sweep.
    let report = run_chaos(
        &BatchRunner::new(),
        &[0, 200, 1_000, 5_000, 20_000],
        0xC0FFEE,
        RetryPolicy::retries(8).with_remap(true),
        |_| campaign_suite(0xC0FFEE, 2),
    );
    println!("\nchaos campaign (11 kernel families x 2 rounds per rate):");
    print!("{}", report.render());
    assert!(report.zero_undetected(), "silent corruption in the sweep");
}
