//! Scalability sweep: simulator throughput across ring sizes
//! (cycles/second of wall time scales with fabric size).

use systolic_ring_core::RingMachine;
use systolic_ring_harness::microbench::{black_box, Group};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::RingGeometry;

fn main() {
    let mut group = Group::new("scalability_sim_throughput");
    for (layers, width) in [(4usize, 2usize), (4, 4), (8, 8), (16, 16)] {
        let geometry = RingGeometry::new(layers, width).expect("geometry");
        let name = format!("run_1000_cycles/ring{}", geometry.dnodes());
        group.bench(&name, || {
            let mut m = RingMachine::with_defaults(geometry);
            let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One).write_reg(Reg::R0);
            for d in 0..geometry.dnodes() {
                m.set_local_program(d, &[mac]).expect("program");
                m.set_mode(d, DnodeMode::Local);
            }
            m.run(black_box(1000)).expect("run");
            m.stats().total_ops()
        });
    }
    group.finish_print();
}
