//! Criterion bench for the scalability sweep: simulator throughput across
//! ring sizes (cycles/second of wall time scales with fabric size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use systolic_ring_core::RingMachine;
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::RingGeometry;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability_sim_throughput");
    group.sample_size(10);
    for (layers, width) in [(4usize, 2usize), (4, 4), (8, 8), (16, 16)] {
        let geometry = RingGeometry::new(layers, width).expect("geometry");
        group.bench_with_input(
            BenchmarkId::new("run_1000_cycles", format!("ring{}", geometry.dnodes())),
            &geometry,
            |b, &g| {
                b.iter(|| {
                    let mut m = RingMachine::with_defaults(g);
                    let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One)
                        .write_reg(Reg::R0);
                    for d in 0..g.dnodes() {
                        m.set_local_program(d, &[mac]).expect("program");
                        m.set_mode(d, DnodeMode::Local);
                    }
                    m.run(black_box(1000)).expect("run");
                    m.stats().total_ops()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
