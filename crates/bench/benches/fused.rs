//! Fused-engine ablation: simulated cycles per wall-clock second with the
//! fused steady-state engine enabled (the default) against the decoded
//! per-cycle fast path (the decode-cache-only configuration), plus the
//! aggregate-throughput gain from lane-fused batch execution of a
//! 32-job identical-program sweep.
//!
//! The kernels construct their machines internally with
//! [`MachineParams::PAPER`], so the tier selection uses the scoped
//! [`with_fused`] override rather than threading a flag through every
//! driver. Both tiers here keep the decode cache on: the comparison
//! isolates exactly what burst compilation adds on top of predecoding.
//!
//! [`MachineParams::PAPER`]: systolic_ring_core::MachineParams::PAPER

use systolic_ring_asm::assemble;
use systolic_ring_core::{with_fused, MachineParams};
use systolic_ring_harness::job::{CycleBudget, Job};
use systolic_ring_harness::microbench::{black_box, Group, Measurement};
use systolic_ring_harness::runner::BatchRunner;
use systolic_ring_isa::{RingGeometry, Word16};
use systolic_ring_kernels::image::Image;
use systolic_ring_kernels::motion::{self, BlockMatch};
use systolic_ring_kernels::wavelet;

fn cycles_per_sec(cycles: u64, m: Measurement) -> f64 {
    cycles as f64 / m.median.as_secs_f64()
}

fn report(name: &str, cycles: u64, fused: Measurement, decoded: Measurement) {
    let fast = cycles_per_sec(cycles, fused);
    let slow = cycles_per_sec(cycles, decoded);
    println!(
        "  {name:<16} {cycles:>9} cycles   fused {:>7.2} Mcyc/s   decoded {:>7.2} Mcyc/s   speedup {:.2}x",
        fast / 1e6,
        slow / 1e6,
        fast / slow
    );
}

/// 32 identical fir3 jobs differing only in their input streams — the
/// shape the runner's lane fusion targets.
fn fir3_sweep() -> Vec<Job> {
    let source = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs/fir3.sr"),
    )
    .expect("shipped program");
    let object = assemble(&source).expect("fir3 assembles");
    let geometry = object.geometry.expect("declared ring");
    (0..32)
        .map(|i| {
            Job::from_object(
                format!("fir3-{i}"),
                geometry,
                MachineParams::PAPER,
                object.clone(),
                CycleBudget::Cycles(16_384),
            )
            .with_input(0, 0, (0..256).map(|w| Word16::from_i16(w * 3 + i)))
            .with_sink(1, 0)
        })
        .collect()
}

fn main() {
    // Table 1: full-search motion estimation on a Ring-16.
    let (reference, current) = Image::motion_pair(64, 64, 2, -1, 2002);
    let spec = BlockMatch {
        x0: 28,
        y0: 28,
        block: 8,
        range: 4,
    };
    let motion_run = || {
        motion::block_match_run(
            RingGeometry::RING_16,
            black_box(&reference),
            black_box(&current),
            spec,
        )
        .expect("ring ME")
    };
    let motion_cycles = motion_run().cycles;

    // Table 2: 2-D 5/3 lifting wavelet on a Ring-16.
    let image = Image::textured(64, 48, 53);
    let wavelet_run =
        || wavelet::forward_2d(RingGeometry::RING_16, black_box(&image)).expect("wavelet");
    let wavelet_cycles = wavelet_run().cycles;

    let mut group = Group::new("fused");
    let motion_fused = group.bench("table1_motion/fused", motion_run);
    let motion_decoded = group.bench("table1_motion/decoded", || with_fused(false, motion_run));
    let wavelet_fused = group.bench("table2_wavelet/fused", wavelet_run);
    let wavelet_decoded = group.bench("table2_wavelet/decoded", || with_fused(false, wavelet_run));

    // Lane fusion: one worker so the gain isolates burst sharing, not
    // thread-level parallelism. Three tiers: lane-fused (16 jobs per
    // burst), fused-serial (single-lane bursts, one job at a time) and
    // decoded (the PR-2 decode-cache path — the acceptance baseline).
    let batch_cycles: u64 = 32 * 16_384;
    let jobs = fir3_sweep();
    let decoded_jobs: Vec<Job> = fir3_sweep()
        .into_iter()
        .map(|j| j.with_fused(false))
        .collect();
    let lanes_on = BatchRunner::with_workers(1);
    let lanes_off = BatchRunner::with_workers(1).with_lane_fusion(false);
    let batch_fused = group.bench("batch32_fir3/lane_fused", || {
        black_box(lanes_on.run(&jobs)).summary().completed
    });
    let batch_serial = group.bench("batch32_fir3/fused_serial", || {
        black_box(lanes_off.run(&jobs)).summary().completed
    });
    let batch_decoded = group.bench("batch32_fir3/decoded", || {
        black_box(lanes_off.run(&decoded_jobs)).summary().completed
    });
    group.finish_print();

    println!("simulated throughput (median):");
    report("table1_motion", motion_cycles, motion_fused, motion_decoded);
    report(
        "table2_wavelet",
        wavelet_cycles,
        wavelet_fused,
        wavelet_decoded,
    );
    report("batch32_fir3", batch_cycles, batch_fused, batch_decoded);
    println!(
        "  batch32_fir3 fused-serial midpoint: {:>7.2} Mcyc/s",
        cycles_per_sec(batch_cycles, batch_serial) / 1e6
    );

    let run = wavelet_run();
    println!(
        "wavelet fused coverage: {} of {} cycles in {} bursts ({} deopts)",
        run.stats.fused_cycles, run.cycles, run.stats.fused_entries, run.stats.fused_deopts
    );
}
