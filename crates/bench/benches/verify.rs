//! Static verification vs dynamic simulation: the speed claim behind
//! the `ringverify` passes.
//!
//! The verify passes exist to discharge `;! cycles` budgets and prove
//! hazard freedom *without running the machine*. This bench pits the
//! full static pipeline — `lint_object_expecting`, which includes the
//! forking schedule walk, the hazard replay and the interval fixpoint —
//! against the dynamic verification it replaces: the conformance case,
//! which builds a machine per declared tier, runs each to halt and
//! checks the `;!` expectations (exactly what `srconform` does, and what
//! establishing the same facts dynamically costs). Both sides cover the
//! entire shipped literate corpus (`programs/`), and the repository's
//! acceptance floor is enforced: verifying must be at least 50x faster
//! than simulating.

use std::path::Path;

use systolic_ring_asm::assemble_source;
use systolic_ring_harness::conformance::{discover, run_case};
use systolic_ring_harness::microbench::{black_box, Group};
use systolic_ring_isa::expect::Expectations;
use systolic_ring_isa::object::Object;
use systolic_ring_lint::{lint_object_expecting, LintLimits};

/// Every literate program shipped in `programs/`, with its embedded
/// expectations (the same corpus `srconform` runs).
fn corpus() -> Vec<(String, Object, Expectations)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs");
    let mut sources: Vec<_> = std::fs::read_dir(&dir)
        .expect("programs/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".sr") || n.ends_with(".sr.md"))
        })
        .collect();
    sources.sort();
    sources
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable source");
            let (object, expectations) =
                assemble_source(&name, &text).unwrap_or_else(|e| panic!("{name}: {e}"));
            (name, object, expectations)
        })
        .collect()
}

fn main() {
    let corpus = corpus();
    assert!(corpus.len() >= 6, "literate corpus went missing");
    let limits = LintLimits::default();
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs");
    let cases = discover(&dir).expect("conformance corpus discovers");
    assert_eq!(cases.len(), corpus.len(), "both sides cover the corpus");

    let mut group = Group::new("verify").with_iters(20, 200);
    let verify = group.bench("verify_literate_corpus", || {
        for (_, object, expectations) in &corpus {
            let report = lint_object_expecting(black_box(object), &limits, Some(expectations));
            black_box(report.proof.cycle_bound);
        }
    });
    let simulate = group.bench("simulate_conformance_corpus", || {
        for case in &cases {
            let result = run_case(black_box(case));
            assert!(result.passed(), "{}: {:?}", result.name, result.failures);
            black_box(result.tiers.len());
        }
    });
    group.finish_print();

    // The gate compares best-observed times: `min` is the standard
    // noise-robust estimator for short microbench windows (a single
    // scheduler preemption inflates a 30 us sample far more than a 2 ms
    // one, so a median-of-medians ratio flaps under load).
    let ratio = simulate.min.as_nanos() as f64 / verify.min.as_nanos().max(1) as f64;
    let median_ratio = simulate.median.as_nanos() as f64 / verify.median.as_nanos().max(1) as f64;
    println!(
        "speedup: verify is {ratio:.0}x faster than simulating the conformance corpus \
         (median-based: {median_ratio:.0}x)"
    );
    assert!(
        ratio >= 50.0,
        "verify must be >=50x faster than dynamic conformance ({ratio:.1}x)"
    );
}
