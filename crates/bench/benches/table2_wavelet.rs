//! Table 2 wavelet workload: the simulated Ring-16 lifting pipeline versus
//! the golden software transform.

use systolic_ring_harness::microbench::{black_box, Group};
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::image::Image;
use systolic_ring_kernels::{golden, wavelet};

fn main() {
    let image = Image::textured(64, 48, 53);

    let mut group = Group::new("table2_wavelet");
    group.bench("ring16_simulated_2d", || {
        wavelet::forward_2d(RingGeometry::RING_16, black_box(&image)).expect("wavelet")
    });
    group.bench("golden_software_2d", || {
        golden::lifting53_forward_2d(64, 48, black_box(image.data()))
    });
    group.finish_print();
}
