//! Criterion bench for the Table 2 wavelet workload: the simulated Ring-16
//! lifting pipeline versus the golden software transform.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use systolic_ring_isa::RingGeometry;
use systolic_ring_kernels::image::Image;
use systolic_ring_kernels::{golden, wavelet};

fn bench_table2(c: &mut Criterion) {
    let image = Image::textured(64, 48, 53);

    let mut group = c.benchmark_group("table2_wavelet");
    group.sample_size(10);
    group.bench_function("ring16_simulated_2d", |b| {
        b.iter(|| wavelet::forward_2d(RingGeometry::RING_16, black_box(&image)).expect("wavelet"))
    });
    group.bench_function("golden_software_2d", |b| {
        b.iter(|| golden::lifting53_forward_2d(64, 48, black_box(image.data())))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
