//! Umbrella crate for the **Systolic Ring** reproduction — the coarse-grained
//! dynamically reconfigurable DSP architecture of Sassatelli et al.
//! (DATE 2002), rebuilt as a cycle-accurate Rust system.
//!
//! This crate re-exports the whole workspace under one roof:
//!
//! * [`isa`] — word, geometry, Dnode/switch/controller encodings, object
//!   format,
//! * [`core`] — the cycle-accurate machine simulator,
//! * [`asm`] — the two-level assembler and disassembler,
//! * [`kernels`] — DSP kernels (MAC/FIR/IIR/FIFO, motion estimation,
//!   wavelet) with golden models,
//! * [`baselines`] — the comparators (MMX model, block-matching ASIC
//!   model, scalar CPU model, wavelet-core records),
//! * [`compiler`] — the dataflow-graph compiler/profiler (the paper's
//!   stated future work),
//! * [`model`] — the calibrated area/timing technology model,
//! * [`soc`] — the APEX prototype substrate (memories, VGA, host DMA),
//! * [`harness`] — the parallel batch-simulation engine, the deterministic
//!   test kit (SplitMix64 PRNG) and the wall-clock microbenchmark timer.
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for paper-vs-measured results. The
//! runnable entry points live in `examples/` and the report binary in
//! `crates/bench`.
//!
//! # Examples
//!
//! ```
//! use systolic_ring::asm::assemble;
//! use systolic_ring::core::RingMachine;
//! use systolic_ring::isa::{RingGeometry, Word16};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let object = assemble(
//!     ".ring 4x2
//!      route 0,0.in1 = host.0
//!      node 0,0: shl in1, one > out
//!      capture 1 = lane 0
//!      .code
//!      wait 16
//!      halt
//! ")?;
//! let mut machine = RingMachine::with_defaults(RingGeometry::RING_8);
//! machine.load(&object)?;
//! machine.open_sink(1, 0)?;
//! machine.attach_input(0, 0, [21].map(Word16::from_i16))?;
//! machine.run_until_halt(100)?;
//! let out = machine.take_sink(1, 0)?;
//! assert!(out.contains(&Word16::from_i16(42)));
//! # Ok(())
//! # }
//! ```

pub use systolic_ring_asm as asm;
pub use systolic_ring_baselines as baselines;
pub use systolic_ring_compiler as compiler;
pub use systolic_ring_core as core;
pub use systolic_ring_harness as harness;
pub use systolic_ring_isa as isa;
pub use systolic_ring_kernels as kernels;
pub use systolic_ring_lint as lint;
pub use systolic_ring_model as model;
pub use systolic_ring_soc as soc;
