//! Whole-frame motion estimation: the H.261 encoder's view.
//!
//! ```sh
//! cargo run --release --example motion_field
//! ```
//!
//! Runs the Table 1 block-matching kernel for every 8x8 block of a frame
//! pair with planted global motion, and renders the recovered motion field
//! as an ASCII arrow map — the macroblock loop a video encoder would drive
//! the ring with.

use systolic_ring::isa::RingGeometry;
use systolic_ring::kernels::image::Image;
use systolic_ring::kernels::motion::{self, BlockMatch};

fn arrow(dx: isize, dy: isize) -> char {
    match (dx.signum(), dy.signum()) {
        (0, 0) => '.',
        (1, 0) => '>',
        (-1, 0) => '<',
        (0, 1) => 'v',
        (0, -1) => '^',
        (1, 1) => '\\',
        (-1, -1) => '`',
        (1, -1) => '/',
        (-1, 1) => 'L',
        _ => '?',
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h, bs) = (64usize, 64usize, 8usize);
    let (true_dx, true_dy) = (3isize, -2isize);
    let (reference, current) = Image::motion_pair(w, h, true_dx, true_dy, 77);
    println!(
        "motion field of a {w}x{h} frame pair with planted motion ({true_dx}, {true_dy});\n\
         each cell is one 8x8 block tracked on the Ring-16 (search +-4)\n"
    );

    let mut total_cycles = 0u64;
    let mut hits = 0usize;
    let mut blocks = 0usize;
    let mut field = String::new();
    for by in (0..h).step_by(bs) {
        for bx in (0..w).step_by(bs) {
            let spec = BlockMatch {
                x0: bx,
                y0: by,
                block: bs,
                range: 4,
            };
            let est = motion::block_match(RingGeometry::RING_16, &reference, &current, spec)?;
            total_cycles += est.cycles;
            blocks += 1;
            // Tracking current -> reference recovers the negated motion.
            if est.best == (-true_dx, -true_dy) {
                hits += 1;
            }
            field.push(arrow(est.best.0, est.best.1));
            field.push(' ');
        }
        field.push('\n');
    }
    println!("{field}");
    println!(
        "{hits}/{blocks} blocks recovered the planted motion exactly \
         (border blocks see clamped content);"
    );
    println!(
        "total: {total_cycles} cycles = {:.0} cycles/block; at 200 MHz that is {:.1} us/frame",
        total_cycles as f64 / blocks as f64,
        total_cycles as f64 / 200.0
    );
    let interior = hits as f64 / blocks as f64;
    assert!(interior > 0.5, "motion recovery rate {interior:.2}");
    Ok(())
}
