//! Batch-engine demo: run a mixed sweep of kernel jobs across all cores,
//! verify bit-identical results against the serial baseline, and print
//! the aggregate report plus the differential-oracle verdict.
//!
//! ```sh
//! cargo run --release --example batch_sweep
//! cargo run --release --example batch_sweep -- 64 0xfeed
//! ```

use systolic_ring::harness::runner::BatchRunner;
use systolic_ring::kernels::batch::{kernel_sweep, oracle_suite, run_oracle};

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args
        .next()
        .map(|a| a.parse().expect("job count"))
        .unwrap_or(36);
    let seed: u64 = args
        .next()
        .map(|a| {
            let a = a.trim_start_matches("0x");
            u64::from_str_radix(a, 16).expect("hex seed")
        })
        .unwrap_or(0xba7c);

    println!("batch sweep: {jobs} kernel jobs, seed {seed:#x}\n");

    let sweep = kernel_sweep(seed, jobs);
    let serial = BatchRunner::run_serial(&sweep);
    println!("serial baseline: {:.3} ms", serial.wall.as_secs_f64() * 1e3);

    let runner = BatchRunner::new();
    let parallel = runner.run(&sweep);
    assert!(
        parallel.outcomes_match(&serial),
        "parallel outcomes must be bit-identical to serial"
    );
    println!(
        "parallel ({} workers): {:.3} ms — bit-identical to serial\n",
        parallel.workers,
        parallel.wall.as_secs_f64() * 1e3
    );
    print!("{}", parallel.summary().render());

    println!("\ndifferential oracle (every kernel family vs its golden model):");
    let oracle = run_oracle(&runner, oracle_suite(seed, 2));
    println!(
        "  {} cases, {} mismatches, {} faults — {}",
        oracle.cases,
        oracle.mismatches.len(),
        oracle.faults.len(),
        if oracle.all_match() { "PASS" } else { "FAIL" }
    );
    for line in oracle.mismatches.iter().chain(&oracle.faults) {
        println!("  {line}");
    }
    std::process::exit(if oracle.all_match() { 0 } else { 1 });
}
