//! The Table 2 workload: the JPEG2000-style 5/3 lifting wavelet on the
//! Ring-16 lifting pipeline.
//!
//! ```sh
//! cargo run --release --example wavelet_transform [--full]
//! ```
//!
//! `--full` processes the paper's 1024x768 image (slower); the default is
//! 256x192 with identical per-pixel behaviour.

use systolic_ring::isa::RingGeometry;
use systolic_ring::kernels::image::Image;
use systolic_ring::kernels::{golden, wavelet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");
    let (w, h) = if full { (1024, 768) } else { (256, 192) };
    let image = Image::textured(w, h, 53);
    println!("2-D 5/3 lifting transform of a {w}x{h} 16-bit image on a Ring-16\n");

    let run = wavelet::forward_2d(RingGeometry::RING_16, &image)?;
    let expect = golden::lifting53_forward_2d(w, h, image.data());
    let exact = run.coefficients == expect;

    println!("cycles:           {}", run.cycles);
    println!(
        "cycles/pixel:     {:.3}  (paper: \"one pixel sample is computed each clock cycle\")",
        run.cycles as f64 / run.pixels as f64
    );
    println!(
        "fabric left free: {:.0}%  (paper: \"25% of the Ring structure remains free\")",
        run.stats.idle_dnodes() as f64 / 16.0 * 100.0
    );
    println!("bit-exact vs the golden lifting transform: {exact}");

    // Round-trip sanity on the first row: inverse(golden) reconstructs.
    let row = &image.data()[..w];
    let (a, d) = golden::lifting53_forward(row);
    let back = golden::lifting53_inverse(&a, &d);
    println!(
        "reversible (row 0 round-trips through the inverse): {}",
        back == row
    );

    // Energy compaction: most coefficient energy sits in the LL quadrant.
    let energy = |vals: &[i16]| -> f64 { vals.iter().map(|&v| (v as f64).powi(2)).sum() };
    let mut ll = Vec::new();
    let mut rest = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let v = run.coefficients[y * w + x];
            if x < w / 2 && y < h / 2 {
                ll.push(v);
            } else {
                rest.push(v);
            }
        }
    }
    println!(
        "energy compaction: LL holds {:.1}% of the coefficient energy",
        energy(&ll) / (energy(&ll) + energy(&rest)) * 100.0
    );
    Ok(())
}
