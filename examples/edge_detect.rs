//! Sobel edge detection: separable convolutions on the fabric, gradient
//! magnitude on the host — a classic video pipeline for the architecture's
//! target domain.
//!
//! ```sh
//! cargo run --release --example edge_detect
//! ```
//!
//! Writes `edges_input.pgm` and `edges_output.pgm`.

use std::fs;

use systolic_ring::isa::RingGeometry;
use systolic_ring::kernels::conv;
use systolic_ring::kernels::image::Image;
use systolic_ring::soc::ppm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h) = (96usize, 96usize);
    // A frame with structure: textured background plus a bright box.
    let mut input = Image::textured(w, h, 8);
    for y in 30..66 {
        for x in 30..66 {
            input.set_pixel(x, y, 230);
        }
    }
    let g = RingGeometry::RING_16;

    // Sobel X = [1 0 -1] x [1 2 1]; Sobel Y = [1 2 1] x [1 0 -1].
    let gx = conv::conv3x3(g, &[1, 0, -1], &[1, 2, 1], &input)?;
    let gy = conv::conv3x3(g, &[1, 2, 1], &[1, 0, -1], &input)?;

    // Gradient magnitude (host side): |gx| + |gy|, scaled to 8 bits.
    let mag: Vec<u8> = gx
        .output
        .iter()
        .zip(&gy.output)
        .map(|(&x, &y)| ((x.unsigned_abs() + y.unsigned_abs()) / 4).min(255) as u8)
        .collect();

    let input_pixels: Vec<u8> = input
        .data()
        .iter()
        .map(|&p| p.clamp(0, 255) as u8)
        .collect();
    fs::write("edges_input.pgm", ppm::encode_pgm(w, h, &input_pixels))?;
    fs::write("edges_output.pgm", ppm::encode_pgm(w, h, &mag))?;

    let total_cycles = gx.cycles + gy.cycles;
    println!(
        "Sobel on {w}x{h}: {} fabric cycles ({:.2} cycles/pixel over 4 passes)",
        total_cycles,
        total_cycles as f64 / (w * h) as f64
    );
    println!(
        "at 190 MHz that is {:.2} ms/frame ({:.0} fps)",
        total_cycles as f64 / 190e3,
        190e6 / total_cycles as f64
    );
    // The box edges dominate the magnitude image.
    let edge_row: u32 = (28..68).map(|x| mag[30 * w + x] as u32).sum();
    let flat_row: u32 = (28..68).map(|x| mag[10 * w + x] as u32).sum();
    println!("edge-row energy {edge_row} vs flat-row energy {flat_row}");
    assert!(edge_row > flat_row * 2);
    println!("\nwrote edges_input.pgm and edges_output.pgm");
    Ok(())
}
