//! The Table 1 workload end to end: H.261-style full-search block matching
//! on the Ring-16, with the MMX and ASIC baselines alongside.
//!
//! ```sh
//! cargo run --release --example motion_estimation
//! ```

use systolic_ring::baselines::{asic_me, mmx};
use systolic_ring::isa::RingGeometry;
use systolic_ring::kernels::image::Image;
use systolic_ring::kernels::motion::{self, BlockMatch};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64x64 frame pair with planted motion (2, -1) plus sensor noise.
    let (reference, current) = Image::motion_pair(64, 64, 2, -1, 2002);
    let spec = BlockMatch::paper_at(28, 28);
    println!(
        "full-search block matching: 8x8 block at (28,28), +-{} displacement\n",
        spec.range
    );

    let ring = motion::block_match(RingGeometry::RING_16, &reference, &current, spec)?;
    println!(
        "Ring-16 (simulated):  best {:?} sad {}  in {} cycles",
        ring.best, ring.best_sad, ring.cycles
    );
    println!(
        "  {} candidates on {} SAD units, {} controller instructions,",
        ring.candidates.len(),
        motion::sad_units(RingGeometry::RING_16),
        ring.stats.ctrl_instrs
    );
    println!(
        "  fabric utilization {:.0}%, {} context switches",
        ring.stats.utilization() * 100.0,
        ring.stats.ctx_switches
    );

    let m = mmx::full_search(&reference, &current, spec);
    println!(
        "\nMMX model:            best {:?} sad {}  in {} cycles ({} instructions)",
        m.best, m.best_sad, m.cycles, m.instructions
    );

    let a = asic_me::full_search(&reference, &current, spec);
    println!(
        "ASIC model [7]:       best {:?} sad {}  in {} cycles ({} PEs)",
        a.best, a.best_sad, a.cycles, a.pes
    );

    println!(
        "\nring vs MMX: {:.1}x faster (paper: \"almost 8 times faster\")",
        m.cycles as f64 / ring.cycles as f64
    );
    println!(
        "ASIC vs ring: {:.1}x faster (paper: \"much faster ... at the price of flexibility\")",
        ring.cycles as f64 / a.cycles as f64
    );

    assert_eq!(ring.best, m.best);
    assert_eq!(ring.best, a.best);
    println!("\nall three implementations agree on the best match.");
    Ok(())
}
