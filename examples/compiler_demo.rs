//! The compiling/profiling tool — the paper's §6 future work — in action.
//!
//! ```sh
//! cargo run --example compiler_demo
//! ```
//!
//! Builds a dataflow graph for an alpha-blend with clamp
//! (`y = clamp((a*x + b*(255-x)) >> 8)`-style mixing), compiles it onto a
//! Ring-16, prints the placement/profiling report, and streams pixels
//! through the generated configuration.

use systolic_ring::compiler::{compile, Graph};
use systolic_ring::core::MachineParams;
use systolic_ring::isa::dnode::AluOp;
use systolic_ring::isa::RingGeometry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Blend two pixel streams p, q with weight w/16:
    // y = min(255, (p*w + q*(16-w)) >> 4).
    let mut g = Graph::new();
    let p = g.input();
    let q = g.input();
    let w = g.constant(11); // fixed 11/16 blend
    let w_inv = g.constant(16 - 11);
    let four = g.constant(4);
    let cap = g.constant(255);
    let pw = g.op(AluOp::Mul, p, w);
    let qw = g.op(AluOp::Mul, q, w_inv);
    let sum = g.op(AluOp::Add, pw, qw);
    let scaled = g.op(AluOp::Shr, sum, four);
    let y = g.op(AluOp::Min, scaled, cap);
    g.output(y);

    let compiled = compile(&g, RingGeometry::RING_16, MachineParams::PAPER)?;
    println!("--- mapping / profiling report -------------------------------");
    print!("{}", compiled.report());
    println!("---------------------------------------------------------------\n");

    let stream_p: Vec<i16> = (0..16).map(|i| i * 16).collect();
    let stream_q: Vec<i16> = (0..16).map(|i| 255 - i * 16).collect();
    let streams: [&[i16]; 2] = [&stream_p, &stream_q];
    let (outputs, cycles) = compiled.run(&streams)?;
    let golden = g.interpret(&streams)?;

    println!("p: {stream_p:?}");
    println!("q: {stream_q:?}");
    println!("y: {:?}", outputs[0]);
    println!(
        "\n{} samples in {} cycles on {} Dnodes; matches the interpreter: {}",
        stream_p.len(),
        cycles,
        compiled.dnodes_used(),
        outputs == golden
    );
    assert_eq!(outputs, golden);
    Ok(())
}
