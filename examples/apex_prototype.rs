//! The Figure 6 prototype: object code in PRG, image filtering on the
//! Ring-8, result on the (simulated) VGA monitor.
//!
//! ```sh
//! cargo run --example apex_prototype
//! ```
//!
//! Writes `apex_input.pgm` and `apex_output.pgm` to the current directory —
//! the IMAGE memory contents and the monitor picture.

use std::fs;

use systolic_ring::kernels::image::Image;
use systolic_ring::soc::{ppm, ApexPrototype};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = Image::textured(64, 64, 1964);
    println!("APEX prototype (Figure 6): Ring-8 + controller + PRG/IMAGE/VIDEO + VGA\n");

    let mut board = ApexPrototype::new(&input)?;
    let object = board.boot_object()?;
    println!(
        "PRG memory holds the assembled object: {} controller words, {} fabric preloads",
        object.code.len(),
        object.preload.len()
    );

    let report = board.run()?;
    println!(
        "ran: {} core cycles for {} pixels ({:.2} cycles/pixel)",
        report.core_cycles,
        report.video_words,
        report.core_cycles as f64 / report.video_words as f64
    );

    let golden = ApexPrototype::golden(&input);
    let got: Vec<i16> = board.video().words().iter().map(|w| w.as_i16()).collect();
    println!("VIDEO memory matches the golden filter: {}", got == golden);

    let input_pixels: Vec<u8> = input
        .data()
        .iter()
        .map(|&p| p.clamp(0, 255) as u8)
        .collect();
    fs::write("apex_input.pgm", ppm::encode_pgm(64, 64, &input_pixels))?;
    fs::write("apex_output.pgm", board.scan_pgm())?;
    println!("\nwrote apex_input.pgm and apex_output.pgm (the monitor picture).");
    Ok(())
}
