//! Quickstart: build a ring, run the classic macro-operators, read results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks through the three ways of programming the fabric:
//! 1. a **local-mode** MAC macro-operator (one Dnode, zero controller
//!    overhead),
//! 2. a **spatially mapped** 3-tap FIR at one sample per cycle,
//! 3. a recursive IIR through the **feedback network**.

use systolic_ring::isa::RingGeometry;
use systolic_ring::kernels::image::test_signal;
use systolic_ring::kernels::{fir, golden, iir, mac};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = RingGeometry::RING_16;
    println!("Systolic Ring quickstart on a {geometry}\n");

    // 1. Dot product on a single local-mode MAC Dnode.
    let a: Vec<i16> = (1..=32).collect();
    let b: Vec<i16> = (1..=32).map(|v| v % 7 - 3).collect();
    let run = mac::dot_product(geometry, &a, &b)?;
    println!(
        "dot product (local-mode MAC): {} in {} cycles (golden: {})",
        run.outputs[0],
        run.cycles,
        golden::dot_product(&a, &b)
    );

    // 2. Spatial 3-tap FIR: one output per cycle.
    let coeffs = [3, -2, 5];
    let input = test_signal(64, 1);
    let run = fir::spatial(geometry, &coeffs, &input)?;
    let expect = golden::fir(&coeffs, &input);
    println!(
        "spatial FIR-3: {} samples in {} cycles ({:.2} cycles/sample), exact = {}",
        input.len(),
        run.cycles,
        run.cycles as f64 / input.len() as f64,
        run.outputs == expect
    );

    // 3. The same FIR folded onto one Dnode in local mode.
    let run = fir::local_serial(geometry, &coeffs, &input)?;
    println!(
        "folded FIR-3 (1 Dnode):  {} samples in {} cycles ({:.2} cycles/sample), exact = {}",
        input.len(),
        run.cycles,
        run.cycles as f64 / input.len() as f64,
        run.outputs == expect
    );

    // 4. Recursive IIR through the feedback pipelines.
    let run = iir::first_order(geometry, 128, 8, &input)?;
    let expect = golden::iir_first_order(128, 8, &input);
    println!(
        "IIR (pole 0.5, feedback network): {} samples in {} cycles, exact = {}",
        input.len(),
        run.cycles,
        run.outputs == expect
    );

    println!("\nEverything above ran cycle-accurately on the simulated fabric.");
    Ok(())
}
