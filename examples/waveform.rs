//! The simulator's logic analyzer: trace fabric signals and dump a VCD.
//!
//! ```sh
//! cargo run --example waveform
//! ```
//!
//! Builds a two-stage pipeline, traces the Dnode outputs, a register, the
//! bus and the active context for 24 cycles, prints the text waveform and
//! writes `ring.vcd` (loadable in GTKWave).

use std::fs;

use systolic_ring::core::trace::{Signal, Tracer};
use systolic_ring::core::RingMachine;
use systolic_ring::isa::ctrl::CtrlInstr;
use systolic_ring::isa::dnode::{AluOp, MicroInstr, Operand, Reg};
use systolic_ring::isa::switch::PortSource;
use systolic_ring::isa::{RingGeometry, Word16};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    // Stage 1: double the host stream; stage 2: accumulate.
    m.configure()
        .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })?;
    m.configure().set_dnode_instr(
        0,
        0,
        MicroInstr::op(AluOp::Shl, Operand::In1, Operand::One).write_out(),
    )?;
    m.configure()
        .set_port(0, 1, 0, 0, PortSource::PrevOut { lane: 0 })?;
    let d1 = RingGeometry::RING_8.dnode_index(1, 0);
    m.configure().set_dnode_instr(
        0,
        d1,
        MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::In1)
            .write_reg(Reg::R0)
            .write_out(),
    )?;
    // The controller ping-pongs the active context to show up in the trace.
    let prog = [
        CtrlInstr::Wait { cycles: 6 },
        CtrlInstr::Ctx { ctx: 1 },
        CtrlInstr::Wait { cycles: 4 },
        CtrlInstr::Ctx { ctx: 0 },
        CtrlInstr::Halt,
    ];
    let words: Vec<u32> = prog.iter().map(CtrlInstr::encode).collect();
    m.controller_mut().load_program(&words)?;
    m.attach_input(0, 0, (1..=12).map(Word16::from_i16))?;

    let mut tracer = Tracer::new([
        Signal::DnodeOut { dnode: 0 },
        Signal::DnodeOut { dnode: d1 },
        Signal::DnodeReg {
            dnode: d1,
            reg: Reg::R0,
        },
        Signal::CtrlPc,
        Signal::ActiveCtx,
    ]);
    tracer.run(&mut m, 24)?;

    println!("text waveform (hex values per cycle):\n");
    println!("{}", tracer.render_text());

    let vcd = tracer.to_vcd();
    fs::write("ring.vcd", &vcd)?;
    println!("wrote ring.vcd ({} bytes) — open it in GTKWave.", vcd.len());
    Ok(())
}
