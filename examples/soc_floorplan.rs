//! The Figure 7 projection: a Ring-64 + ARM7 SoC on a 4x3 mm 0.18 µm die.
//!
//! ```sh
//! cargo run --example soc_floorplan
//! ```

use systolic_ring::isa::RingGeometry;
use systolic_ring::model::floorplan::{figure7_blocks, pack};
use systolic_ring::model::{core_area, freq_mhz, peak_mips, HardwareParams, ST_CMOS_018};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = RingGeometry::RING_64;
    let area = core_area(geometry, HardwareParams::PAPER, ST_CMOS_018);
    println!("Figure 7 — foreseeable SoC (0.18um, 4x3 mm die)\n");
    println!("Ring-64 area breakdown (model; paper projects 3.4 mm2):");
    println!("  Dnodes        {:>6.2} mm2", area.dnodes_mm2);
    println!("  switches      {:>6.2} mm2", area.switches_mm2);
    println!("  config layer  {:>6.2} mm2", area.config_mm2);
    println!("  controller    {:>6.2} mm2", area.controller_mm2);
    println!("  integration   {:>6.2} mm2", area.overhead_mm2);
    println!("  total         {:>6.2} mm2", area.total_mm2());
    println!(
        "\nclock {:.0} MHz, peak {:.1} GOPS (1 op/Dnode/cycle)",
        freq_mhz(geometry, ST_CMOS_018),
        peak_mips(geometry, ST_CMOS_018) / 1000.0
    );

    let plan = pack(4.0, 3.0, &figure7_blocks(area.total_mm2()))?;
    println!("\ndie utilization {:.0}%:\n", plan.utilization() * 100.0);
    for p in &plan.placements {
        println!(
            "  {:<12} {:>5.2} mm2  at ({:.2}, {:.2})  {:.2} x {:.2} mm",
            p.block.name, p.block.area_mm2, p.x_mm, p.y_mm, p.w_mm, p.h_mm
        );
    }
    println!("\n{}", plan.ascii(56, 21));
    Ok(())
}
