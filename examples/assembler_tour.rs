//! A tour of the two-level assembler: write a mixed ring/controller
//! program, inspect its object code, disassemble it, run it.
//!
//! ```sh
//! cargo run --example assembler_tour
//! ```
//!
//! The program streams numbers through a squarer built from the hardwired
//! multiplier while the controller computes a checksum of the results it
//! pops back — both levels of the paper's tool flow in one source file.

use systolic_ring::asm::{assemble, disassemble};
use systolic_ring::core::RingMachine;
use systolic_ring::isa::{RingGeometry, Word16};

const SOURCE: &str = "
; ---- ring level: a squarer on Dnode (0,0), captured at switch 1 ----
.ring 4x2
route 0,0.in1 = host.0
node  0,0: mul in1, in1 > out
capture 1 = lane 0

; ---- a stand-alone counter in local mode on Dnode (3,1) ----
.local 3,1
  add r0, one > r0, out
.endlocal
.mode 3,1 local

; ---- controller level: pop 8 squares, accumulate a checksum ----
.code
  addi r1, r0, 8        ; remaining
  addi r2, r0, 0        ; checksum
next:
  hpop r3, 1            ; blocks until a capture arrives
  beq  r3, r0, next     ; skip the zero warm-up samples
  add  r2, r2, r3
  addi r1, r1, -1
  bne  r1, r0, next
  sw   r2, 0(r0)        ; checksum -> dmem[0]
  halt

.data
  .word 0
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let object = assemble(SOURCE)?;
    println!(
        "assembled: {} controller words, {} fabric preloads, {} data words\n",
        object.code.len(),
        object.preload.len(),
        object.data.len()
    );

    println!("--- disassembly ---------------------------------------------");
    print!("{}", disassemble(&object));
    println!("--------------------------------------------------------------\n");

    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    m.load(&object)?;
    // Note: switch 1's sink stays closed — the controller consumes the
    // captures itself with `hpop`.
    m.attach_input(0, 0, (1..=8).map(Word16::from_i16))?;
    let cycles = m.run_until_halt(500)?;

    let checksum = m.controller().dmem(0).expect("dmem[0]");
    let expect: u32 = (1..=8u32).map(|v| v * v).sum();
    println!("controller checksum of the 8 squares: {checksum} (expected {expect})");
    println!("halted after {cycles} cycles");
    println!(
        "local-mode counter on Dnode (3,1) reached {}",
        m.dnode(RingGeometry::RING_8.dnode_index(3, 1)).out()
    );
    assert_eq!(checksum, expect);
    Ok(())
}
