#!/bin/sh
# Local CI gate: everything must pass before a change lands.
#
#   ./ci.sh          # build + tests + formatting
#
# The suite is fully offline and dependency-free: the workspace builds
# against the standard library only, and all randomized tests run on the
# in-tree deterministic test kit (`harness::testkit`).
set -eu
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> ringlint gate (shipped programs verify-clean; warnings deny by default)"
cargo build --release -q -p systolic-ring-asm -p systolic-ring-lint
lintdir="$(mktemp -d)"
trap 'rm -rf "$lintdir"' EXIT
for src in programs/*.sr programs/*.sr.md; do
    obj="$lintdir/$(basename "$src" | sed 's/\.sr\(\.md\)\?$//').obj"
    ./target/release/srasm "$src" -o "$obj"
done
./target/release/ringlint "$lintdir"/*.obj
# The machine-readable mode must stay stable and report every object.
./target/release/ringlint --json "$lintdir"/*.obj | grep -q '"version":1'
cargo test -q --test lint_crosscheck shipped_corpus_lints_without_warnings

echo "==> conformance gate (programs/ on slow+decoded+fused+aot, cross-tier bit-equality)"
# Writes to a scratch path: the checked-in BENCH_conformance.json is the
# baseline the perf gate below compares against, so CI must not clobber it.
cargo run --release -q -p systolic-ring-bench --bin srconform -- \
    --dir programs --json "$lintdir/BENCH_conformance.json"

echo "==> perf gate (fresh simulated-cycle metrics vs checked-in BENCH_*.json)"
cargo run --release -q -p systolic-ring-bench --bin srbench-compare

echo "==> perf smoke (report -- json round-trips through the comparator)"
cargo run --release -q -p systolic-ring-bench --bin report -- json "$lintdir" --quick
cargo run --release -q -p systolic-ring-bench --bin srbench-compare -- \
    --baseline . --fresh "$lintdir"

echo "==> service smoke (srserved + srload over TCP, graceful drain must exit 0)"
cargo build --release -q -p systolic-ring-server -p systolic-ring-bench
./target/release/srserved --port-file "$lintdir/srserved.port" &
srserved_pid=$!
for _ in $(seq 1 100); do
    [ -s "$lintdir/srserved.port" ] && break
    sleep 0.1
done
[ -s "$lintdir/srserved.port" ] || { echo "srserved never bound"; exit 1; }
./target/release/srload --addr "$(cat "$lintdir/srserved.port")" \
    --jobs 24 --rate 200 --out "$lintdir/BENCH_service_load.json" --drain
# Drain must shut the server down cleanly: a nonzero exit (jobs lost,
# checkpoints unparked, sockets leaked) fails CI here via set -e.
wait "$srserved_pid"
grep -q '"suite": "service_load"' "$lintdir/BENCH_service_load.json"

echo "==> lint self-test smoke (negative corpus must keep tripping)"
cargo test -q -p systolic-ring-lint --test negative_corpus
cargo test -q -p systolic-ring-lint --test cli

echo "==> verify speed gate (static proofs >=50x faster than simulating, recorded row)"
cargo bench -q -p systolic-ring-bench --bench verify

echo "==> chaos smoke (fault injection, 1 seed, 2 kernel families)"
cargo test -q --test chaos chaos_smoke

echo "==> fused smoke (fused vs decoded differential, 1 oracle round)"
cargo test -q --test fused fused_smoke

echo "==> aot smoke (aot vs decoded differential over the kernel families)"
cargo test -q --test fused aot_smoke

echo "==> cargo bench --no-run (bench code must keep compiling)"
cargo bench --no-run --workspace -q

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci: all checks passed"
