#!/bin/sh
# Local CI gate: everything must pass before a change lands.
#
#   ./ci.sh          # build + tests + formatting
#
# The suite is fully offline and dependency-free: the workspace builds
# against the standard library only, and all randomized tests run on the
# in-tree deterministic test kit (`harness::testkit`).
set -eu
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci: all checks passed"
