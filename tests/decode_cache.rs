//! Decode-cache acceptance: the cached fast path and the
//! decode-per-cycle reference path must agree — output for output, cycle
//! for cycle, counter for counter — over every kernel family in the
//! library, and both must match the golden software models.

use systolic_ring::harness::runner::BatchRunner;
use systolic_ring::kernels::batch::{oracle_suite, run_oracle, OracleCase};

const SEED: u64 = 0xdeca_c4ed;
const ROUNDS: usize = 2;

fn suite_with_cache(enabled: bool) -> Vec<OracleCase> {
    oracle_suite(SEED, ROUNDS)
        .into_iter()
        .map(|case| OracleCase {
            job: case.job.with_decode_cache(enabled),
            ..case
        })
        .collect()
}

/// Both paths satisfy the golden differential oracle on their own.
#[test]
fn both_paths_match_golden_models() {
    for enabled in [true, false] {
        let report = run_oracle(&BatchRunner::new(), suite_with_cache(enabled));
        assert!(
            report.all_match(),
            "decode_cache={enabled}: mismatches {:?} faults {:?}",
            report.mismatches,
            report.faults
        );
    }
}

/// Fast vs slow, kernel by kernel: identical outputs, identical cycle
/// counts, identical architectural statistics. Only the cache's own
/// hit/miss counters may differ — and they must be zero on the slow path
/// and live on the fast path.
#[test]
fn fast_and_slow_paths_agree_over_every_kernel_family() {
    let fast_jobs: Vec<_> = suite_with_cache(true).into_iter().map(|c| c.job).collect();
    let slow_jobs: Vec<_> = suite_with_cache(false).into_iter().map(|c| c.job).collect();
    let fast = BatchRunner::new().run(&fast_jobs);
    let slow = BatchRunner::new().run(&slow_jobs);

    assert_eq!(fast.reports.len(), 22, "11 kernel families x 2 rounds");
    let mut fast_hits = 0;
    for (f, s) in fast.reports.iter().zip(&slow.reports) {
        let fo = f
            .outcome
            .output()
            .unwrap_or_else(|| panic!("fast path faulted on {}: {:?}", f.name, f.outcome));
        let so = s
            .outcome
            .output()
            .unwrap_or_else(|| panic!("slow path faulted on {}: {:?}", s.name, s.outcome));
        assert_eq!(fo.outputs, so.outputs, "{}: outputs diverged", f.name);
        assert_eq!(fo.cycles, so.cycles, "{}: cycle counts diverged", f.name);
        assert_eq!(
            fo.stats.without_cache_counters(),
            so.stats.without_cache_counters(),
            "{}: architectural stats diverged",
            f.name
        );
        assert_eq!(
            so.stats.decode_cache_hits + so.stats.decode_cache_misses,
            0,
            "{}: slow path must never touch the cache",
            s.name
        );
        fast_hits += fo.stats.decode_cache_hits;
    }
    assert!(
        fast_hits > 0,
        "the cached suite must actually execute from the cache"
    );
}
