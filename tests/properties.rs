//! Property-based tests over the core data structures and kernel
//! invariants, spanning crate boundaries, driven by the in-tree
//! deterministic testkit.

use systolic_ring::isa::ctrl::CtrlInstr;
use systolic_ring::isa::dnode::{AluOp, MicroInstr, Operand, Reg};
use systolic_ring::isa::object::{Object, Preload};
use systolic_ring::isa::switch::{HostCapture, PortSource};
use systolic_ring::isa::{RingGeometry, Word16};
use systolic_ring::kernels::golden;
use systolic_ring_harness::for_random_cases;
use systolic_ring_harness::testkit::TestRng;

const REGS: [Reg; 4] = [Reg::R0, Reg::R1, Reg::R2, Reg::R3];

const ALU_OPS: [AluOp; 29] = [
    AluOp::Nop,
    AluOp::PassA,
    AluOp::PassB,
    AluOp::Add,
    AluOp::AddSat,
    AluOp::Sub,
    AluOp::SubSat,
    AluOp::Neg,
    AluOp::Abs,
    AluOp::AbsDiff,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Not,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Asr,
    AluOp::Min,
    AluOp::Max,
    AluOp::MinU,
    AluOp::MaxU,
    AluOp::Slt,
    AluOp::SltU,
    AluOp::Mul,
    AluOp::MulHi,
    AluOp::MulHiU,
    AluOp::Mac,
    AluOp::MacSat,
    AluOp::Msu,
];

fn any_operand(rng: &mut TestRng) -> Operand {
    match rng.index(9) {
        0 => Operand::Reg(*rng.choose(&REGS)),
        1 => Operand::In1,
        2 => Operand::In2,
        3 => Operand::Fifo1,
        4 => Operand::Fifo2,
        5 => Operand::Bus,
        6 => Operand::Imm,
        7 => Operand::Zero,
        _ => Operand::One,
    }
}

fn any_micro(rng: &mut TestRng) -> MicroInstr {
    MicroInstr {
        alu: *rng.choose(&ALU_OPS),
        src_a: any_operand(rng),
        src_b: any_operand(rng),
        wr_reg: if rng.next_bool() {
            Some(*rng.choose(&REGS))
        } else {
            None
        },
        wr_out: rng.next_bool(),
        wr_bus: rng.next_bool(),
        imm: Word16::new(rng.any_u16()),
    }
}

fn any_source(rng: &mut TestRng) -> PortSource {
    match rng.index(5) {
        0 => PortSource::Zero,
        1 => PortSource::Bus,
        2 => PortSource::PrevOut {
            lane: rng.next_u64() as u8,
        },
        3 => PortSource::HostIn {
            port: rng.next_u64() as u8,
        },
        _ => PortSource::Pipe {
            switch: rng.next_u64() as u8,
            stage: rng.next_u64() as u8,
            lane: rng.next_u64() as u8,
        },
    }
}

/// Every microinstruction survives encode/decode.
#[test]
fn microinstruction_round_trips() {
    for_random_cases!(512, 0x01, |rng| {
        let instr = any_micro(rng);
        let word = instr.encode();
        assert_eq!(MicroInstr::decode(word).unwrap(), instr);
    });
}

/// Every switch source survives encode/decode.
#[test]
fn port_source_round_trips() {
    for_random_cases!(512, 0x02, |rng| {
        let src = any_source(rng);
        assert_eq!(PortSource::decode(src.encode()).unwrap(), src);
    });
}

/// Decoding any 32-bit controller word either fails or re-encodes to the
/// identical word (no aliasing encodings).
#[test]
fn ctrl_decode_is_injective() {
    for_random_cases!(2048, 0x03, |rng| {
        let word = rng.next_u32();
        if let Ok(instr) = CtrlInstr::decode(word) {
            assert_eq!(instr.encode(), word);
        }
    });
}

/// Decoding any 64-bit microinstruction word either fails or re-encodes
/// identically.
#[test]
fn micro_decode_is_injective() {
    for_random_cases!(2048, 0x04, |rng| {
        let word = rng.next_u64();
        if let Ok(instr) = MicroInstr::decode(word) {
            assert_eq!(instr.encode(), word);
        }
    });
}

/// Word16 saturating ops stay within the signed range and agree with wide
/// arithmetic when no saturation occurs.
#[test]
fn word16_saturation_laws() {
    for_random_cases!(1024, 0x05, |rng| {
        let a = rng.any_i16();
        let b = rng.any_i16();
        let wa = Word16::from_i16(a);
        let wb = Word16::from_i16(b);
        let sat = wa.saturating_add(wb).as_i16();
        let wide = a as i32 + b as i32;
        assert_eq!(sat as i32, wide.clamp(i16::MIN as i32, i16::MAX as i32));
        let d = wa.abs_diff(wb).as_i16();
        assert!(d >= 0);
        assert_eq!(d as i32, (a as i32 - b as i32).abs().min(i16::MAX as i32));
    });
}

/// ALU eval is total: every op on every input produces a value and matches
/// commutativity where algebra requires it.
#[test]
fn alu_commutativity() {
    for_random_cases!(1024, 0x06, |rng| {
        let op = *rng.choose(&ALU_OPS);
        let wa = Word16::from_i16(rng.any_i16());
        let wb = Word16::from_i16(rng.any_i16());
        let acc = Word16::ZERO;
        let fwd = op.eval(wa, wb, acc);
        if matches!(
            op,
            AluOp::Add
                | AluOp::AddSat
                | AluOp::And
                | AluOp::Or
                | AluOp::Xor
                | AluOp::Min
                | AluOp::Max
                | AluOp::MinU
                | AluOp::MaxU
                | AluOp::Mul
                | AluOp::MulHi
                | AluOp::MulHiU
                | AluOp::AbsDiff
        ) {
            assert_eq!(fwd, op.eval(wb, wa, acc), "{op} not commutative");
        }
    });
}

/// Object serialization round-trips for arbitrary well-formed objects.
#[test]
fn object_round_trips() {
    for_random_cases!(256, 0x07, |rng| {
        let code: Vec<u32> = (0..rng.index(64)).map(|_| rng.next_u32()).collect();
        let data: Vec<u32> = (0..rng.index(64)).map(|_| rng.next_u32()).collect();
        let preload: Vec<Preload> = (0..rng.index(16))
            .map(|_| Preload::Mode {
                dnode: rng.any_u16(),
                local: rng.next_bool(),
            })
            .collect();
        let object = Object {
            geometry: Some(RingGeometry::RING_16),
            contexts: rng.below(16) as u16,
            code,
            data,
            preload,
        };
        assert_eq!(Object::from_bytes(&object.to_bytes()).unwrap(), object);
    });
}

/// Host-capture words round trip.
#[test]
fn host_capture_round_trips() {
    for_random_cases!(256, 0x08, |rng| {
        let cap = if rng.next_bool() {
            HostCapture::lane(rng.next_u64() as u8)
        } else {
            HostCapture::DISABLED
        };
        assert_eq!(HostCapture::decode(cap.encode()).unwrap(), cap);
    });
}

/// The golden 5/3 lifting transform is perfectly reversible for any
/// even-length signal.
#[test]
fn lifting_is_reversible() {
    for_random_cases!(256, 0x09, |rng| {
        let len = 2 * (rng.index(31) + 1);
        let signal = rng.vec_i16(len, -4000..4000);
        let (a, d) = golden::lifting53_forward(&signal);
        assert_eq!(golden::lifting53_inverse(&a, &d), signal);
    });
}

/// Golden SAD is a metric-like form: zero on identical blocks and
/// symmetric.
#[test]
fn sad_is_symmetric_and_zero_on_equal() {
    for_random_cases!(256, 0x0a, |rng| {
        let block = rng.vec_i16(16, 0..256);
        let other = rng.vec_i16(16, 0..256);
        assert_eq!(golden::sad(&block, &block), 0);
        assert_eq!(golden::sad(&block, &other), golden::sad(&other, &block));
    });
}

/// Golden FIR is linear: fir(c, x + y) == fir(c, x) + fir(c, y) in
/// wrapping arithmetic.
#[test]
fn fir_is_linear() {
    for_random_cases!(256, 0x0b, |rng| {
        let taps = rng.index(4) + 1;
        let coeffs = rng.vec_i16(taps, -20..20);
        let len = rng.index(31) + 1;
        let x = rng.vec_i16(len, -100..100);
        let y: Vec<i16> = x.iter().map(|v| v.wrapping_mul(2)).collect();
        let sum: Vec<i16> = x.iter().zip(&y).map(|(a, b)| a.wrapping_add(*b)).collect();
        let fx = golden::fir(&coeffs, &x);
        let fy = golden::fir(&coeffs, &y);
        let fsum = golden::fir(&coeffs, &sum);
        let combined: Vec<i16> = fx
            .iter()
            .zip(&fy)
            .map(|(a, b)| a.wrapping_add(*b))
            .collect();
        assert_eq!(fsum, combined);
    });
}

/// Hardware/golden agreement under random inputs: the single-Dnode MAC.
#[test]
fn hardware_mac_agrees_with_golden_on_random_vectors() {
    for_random_cases!(10, 99, |rng| {
        let n = rng.index(39) + 1;
        let a = rng.vec_i16(n, -300..300);
        let b = rng.vec_i16(n, -300..300);
        let run = systolic_ring::kernels::mac::dot_product(RingGeometry::RING_8, &a, &b)
            .expect("dot product");
        assert_eq!(run.outputs[0], golden::dot_product(&a, &b));
    });
}
