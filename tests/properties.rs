//! Property-based tests over the core data structures and kernel
//! invariants, spanning crate boundaries.

use proptest::prelude::*;

use systolic_ring::isa::ctrl::CtrlInstr;
use systolic_ring::isa::dnode::{AluOp, MicroInstr, Operand, Reg};
use systolic_ring::isa::object::{Object, Preload};
use systolic_ring::isa::switch::{HostCapture, PortSource};
use systolic_ring::isa::{RingGeometry, Word16};
use systolic_ring::kernels::golden;

fn arb_reg() -> impl Strategy<Value = Reg> {
    prop_oneof![
        Just(Reg::R0),
        Just(Reg::R1),
        Just(Reg::R2),
        Just(Reg::R3)
    ]
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        Just(Operand::In1),
        Just(Operand::In2),
        Just(Operand::Fifo1),
        Just(Operand::Fifo2),
        Just(Operand::Bus),
        Just(Operand::Imm),
        Just(Operand::Zero),
        Just(Operand::One),
    ]
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Nop),
        Just(AluOp::PassA),
        Just(AluOp::PassB),
        Just(AluOp::Add),
        Just(AluOp::AddSat),
        Just(AluOp::Sub),
        Just(AluOp::SubSat),
        Just(AluOp::Neg),
        Just(AluOp::Abs),
        Just(AluOp::AbsDiff),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Not),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Asr),
        Just(AluOp::Min),
        Just(AluOp::Max),
        Just(AluOp::MinU),
        Just(AluOp::MaxU),
        Just(AluOp::Slt),
        Just(AluOp::SltU),
        Just(AluOp::Mul),
        Just(AluOp::MulHi),
        Just(AluOp::MulHiU),
        Just(AluOp::Mac),
        Just(AluOp::MacSat),
        Just(AluOp::Msu),
    ]
}

fn arb_micro() -> impl Strategy<Value = MicroInstr> {
    (
        arb_alu(),
        arb_operand(),
        arb_operand(),
        proptest::option::of(arb_reg()),
        any::<bool>(),
        any::<bool>(),
        any::<u16>(),
    )
        .prop_map(|(alu, src_a, src_b, wr_reg, wr_out, wr_bus, imm)| MicroInstr {
            alu,
            src_a,
            src_b,
            wr_reg,
            wr_out,
            wr_bus,
            imm: Word16::new(imm),
        })
}

fn arb_source() -> impl Strategy<Value = PortSource> {
    prop_oneof![
        Just(PortSource::Zero),
        Just(PortSource::Bus),
        any::<u8>().prop_map(|lane| PortSource::PrevOut { lane }),
        any::<u8>().prop_map(|port| PortSource::HostIn { port }),
        (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(switch, stage, lane)| PortSource::Pipe { switch, stage, lane }),
    ]
}

proptest! {
    /// Every microinstruction survives encode/decode.
    #[test]
    fn microinstruction_round_trips(instr in arb_micro()) {
        let word = instr.encode();
        prop_assert_eq!(MicroInstr::decode(word).unwrap(), instr);
    }

    /// Every switch source survives encode/decode.
    #[test]
    fn port_source_round_trips(src in arb_source()) {
        prop_assert_eq!(PortSource::decode(src.encode()).unwrap(), src);
    }

    /// Decoding any 32-bit controller word either fails or re-encodes to
    /// the identical word (no aliasing encodings).
    #[test]
    fn ctrl_decode_is_injective(word in any::<u32>()) {
        if let Ok(instr) = CtrlInstr::decode(word) {
            prop_assert_eq!(instr.encode(), word);
        }
    }

    /// Decoding any 64-bit microinstruction word either fails or
    /// re-encodes identically.
    #[test]
    fn micro_decode_is_injective(word in any::<u64>()) {
        if let Ok(instr) = MicroInstr::decode(word) {
            prop_assert_eq!(instr.encode(), word);
        }
    }

    /// Word16 saturating ops stay within the signed range and agree with
    /// wide arithmetic when no saturation occurs.
    #[test]
    fn word16_saturation_laws(a in any::<i16>(), b in any::<i16>()) {
        let wa = Word16::from_i16(a);
        let wb = Word16::from_i16(b);
        let sat = wa.saturating_add(wb).as_i16();
        let wide = a as i32 + b as i32;
        prop_assert_eq!(sat as i32, wide.clamp(i16::MIN as i32, i16::MAX as i32));
        let d = wa.abs_diff(wb).as_i16();
        prop_assert!(d >= 0);
        prop_assert_eq!(d as i32, (a as i32 - b as i32).abs().min(i16::MAX as i32));
    }

    /// ALU eval is total: every op on every input produces a value and
    /// matches commutativity where algebra requires it.
    #[test]
    fn alu_commutativity(op in arb_alu(), a in any::<i16>(), b in any::<i16>()) {
        let wa = Word16::from_i16(a);
        let wb = Word16::from_i16(b);
        let acc = Word16::ZERO;
        let fwd = op.eval(wa, wb, acc);
        if matches!(
            op,
            AluOp::Add | AluOp::AddSat | AluOp::And | AluOp::Or | AluOp::Xor
                | AluOp::Min | AluOp::Max | AluOp::MinU | AluOp::MaxU
                | AluOp::Mul | AluOp::MulHi | AluOp::MulHiU | AluOp::AbsDiff
        ) {
            prop_assert_eq!(fwd, op.eval(wb, wa, acc), "{} not commutative", op);
        }
    }

    /// Object serialization round-trips for arbitrary well-formed objects.
    #[test]
    fn object_round_trips(
        code in proptest::collection::vec(any::<u32>(), 0..64),
        data in proptest::collection::vec(any::<u32>(), 0..64),
        contexts in 0u16..16,
        modes in proptest::collection::vec((any::<u16>(), any::<bool>()), 0..16),
    ) {
        let object = Object {
            geometry: Some(RingGeometry::RING_16),
            contexts,
            code,
            data,
            preload: modes
                .into_iter()
                .map(|(dnode, local)| Preload::Mode { dnode, local })
                .collect(),
        };
        prop_assert_eq!(Object::from_bytes(&object.to_bytes()).unwrap(), object);
    }

    /// Host-capture words round trip.
    #[test]
    fn host_capture_round_trips(lane in proptest::option::of(any::<u8>())) {
        let cap = match lane {
            Some(l) => HostCapture::lane(l),
            None => HostCapture::DISABLED,
        };
        prop_assert_eq!(HostCapture::decode(cap.encode()).unwrap(), cap);
    }

    /// The golden 5/3 lifting transform is perfectly reversible for any
    /// even-length signal.
    #[test]
    fn lifting_is_reversible(
        signal in proptest::collection::vec(-4000i16..4000, 1..64)
            .prop_map(|mut v| {
                if v.len() % 2 == 1 {
                    v.pop();
                }
                if v.is_empty() {
                    v = vec![0, 0];
                }
                v
            })
    ) {
        let (a, d) = golden::lifting53_forward(&signal);
        prop_assert_eq!(golden::lifting53_inverse(&a, &d), signal);
    }

    /// Golden SAD is a metric-like form: zero on identical blocks,
    /// symmetric, and monotone under single-pixel perturbation.
    #[test]
    fn sad_is_symmetric_and_zero_on_equal(
        block in proptest::collection::vec(0i16..256, 16),
        other in proptest::collection::vec(0i16..256, 16),
    ) {
        prop_assert_eq!(golden::sad(&block, &block), 0);
        prop_assert_eq!(golden::sad(&block, &other), golden::sad(&other, &block));
    }

    /// Golden FIR is linear: fir(c, x + y) == fir(c, x) + fir(c, y) in
    /// wrapping arithmetic.
    #[test]
    fn fir_is_linear(
        coeffs in proptest::collection::vec(-20i16..20, 1..5),
        x in proptest::collection::vec(-100i16..100, 1..32),
    ) {
        let y: Vec<i16> = x.iter().map(|v| v.wrapping_mul(2)).collect();
        let sum: Vec<i16> = x.iter().zip(&y).map(|(a, b)| a.wrapping_add(*b)).collect();
        let fx = golden::fir(&coeffs, &x);
        let fy = golden::fir(&coeffs, &y);
        let fsum = golden::fir(&coeffs, &sum);
        let combined: Vec<i16> = fx.iter().zip(&fy).map(|(a, b)| a.wrapping_add(*b)).collect();
        prop_assert_eq!(fsum, combined);
    }
}

/// Hardware/golden agreement under random inputs: the single-Dnode MAC.
#[test]
fn hardware_mac_agrees_with_golden_on_random_vectors() {
    use rand::rngs::SmallRng;
    use rand::{RngExt as _, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..10 {
        let n = rng.random_range(1..40);
        let a: Vec<i16> = (0..n).map(|_| rng.random_range(-300..300)).collect();
        let b: Vec<i16> = (0..n).map(|_| rng.random_range(-300..300)).collect();
        let run = systolic_ring::kernels::mac::dot_product(RingGeometry::RING_8, &a, &b)
            .expect("dot product");
        assert_eq!(run.outputs[0], golden::dot_product(&a, &b));
    }
}
