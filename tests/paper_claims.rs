//! Cross-crate regression tests pinning the paper's headline claims.
//!
//! Each test corresponds to a row of EXPERIMENTS.md; if a refactor shifts a
//! measured figure outside the recorded band, these fail.

use systolic_ring::baselines::{asic_me, mmx, scalar};
use systolic_ring::isa::RingGeometry;
use systolic_ring::kernels::image::Image;
use systolic_ring::kernels::motion::{self, BlockMatch};
use systolic_ring::kernels::{golden, wavelet};
use systolic_ring::model::{
    core_area, dnode_area_mm2, freq_mhz, peak_mips, peak_port_bandwidth_bytes, HardwareParams,
    ST_CMOS_018, ST_CMOS_025,
};

/// Table 1: the ring beats MMX by roughly the paper's "almost 8x" and the
/// ASIC beats the ring.
#[test]
fn table1_motion_estimation_ordering() {
    let (reference, current) = Image::motion_pair(64, 64, 2, -1, 2002);
    let spec = BlockMatch::paper_at(28, 28);

    let ring =
        motion::block_match(RingGeometry::RING_16, &reference, &current, spec).expect("ring ME");
    let m = mmx::full_search(&reference, &current, spec);
    let a = asic_me::full_search(&reference, &current, spec);

    assert_eq!(ring.candidates.len(), 289);
    assert_eq!(ring.best, m.best);
    assert_eq!(ring.best, a.best);

    let mmx_over_ring = m.cycles as f64 / ring.cycles as f64;
    assert!(
        (4.0..12.0).contains(&mmx_over_ring),
        "ring vs MMX = {mmx_over_ring:.1}x (paper: almost 8x)"
    );
    let ring_over_asic = ring.cycles as f64 / a.cycles as f64;
    assert!(
        ring_over_asic > 3.0,
        "ASIC vs ring = {ring_over_asic:.1}x (paper: much faster)"
    );
}

/// Table 2: one pixel per cycle for the 2-D transform with about a quarter
/// of the fabric free, and bit-exact coefficients.
#[test]
fn table2_wavelet_rate_and_utilization() {
    let image = Image::textured(128, 96, 53);
    let run = wavelet::forward_2d(RingGeometry::RING_16, &image).expect("wavelet");
    assert_eq!(
        run.coefficients,
        golden::lifting53_forward_2d(128, 96, image.data())
    );
    let cpp = run.cycles as f64 / run.pixels as f64;
    assert!(cpp < 1.2, "cycles/pixel = {cpp:.2} (paper: 1)");
    let free = run.stats.idle_dnodes() as f64 / 16.0;
    assert!(
        (0.2..0.4).contains(&free),
        "free fabric = {free:.2} (paper: 0.25)"
    );
}

/// Table 3: the calibrated anchors are exact, the predictions are close.
#[test]
fn table3_synthesis_results() {
    assert!((dnode_area_mm2(ST_CMOS_025) - 0.06).abs() < 1e-9);
    assert!((dnode_area_mm2(ST_CMOS_018) - 0.04).abs() < 1e-9);
    assert!((freq_mhz(RingGeometry::RING_8, ST_CMOS_025) - 180.0).abs() < 1e-6);
    assert!((freq_mhz(RingGeometry::RING_8, ST_CMOS_018) - 200.0).abs() < 1e-6);
    let core025 = core_area(RingGeometry::RING_8, HardwareParams::PAPER, ST_CMOS_025).total_mm2();
    let core018 = core_area(RingGeometry::RING_8, HardwareParams::PAPER, ST_CMOS_018).total_mm2();
    assert!(
        (core025 - 0.9).abs() / 0.9 < 0.2,
        "0.25um core = {core025:.2}"
    );
    assert!(
        (core018 - 0.7).abs() / 0.7 < 0.2,
        "0.18um core = {core018:.2}"
    );
}

/// §5.1: 1600 MIPS peak, ~3 GB/s ports, and the scalar anchor in range.
#[test]
fn comparative_figures() {
    assert!((peak_mips(RingGeometry::RING_8, ST_CMOS_018) - 1600.0).abs() < 1.0);
    let bw = peak_port_bandwidth_bytes(RingGeometry::RING_8, ST_CMOS_018);
    assert!((bw / 1e9 - 3.2).abs() < 0.1, "bw = {bw:.2e}");
    let run = scalar::dot_product(
        scalar::CostModel::PENTIUM_II_CLASS,
        &vec![1i16; 10_000],
        &vec![2i16; 10_000],
    );
    let mips = run.mips(450.0);
    assert!((200.0..500.0).contains(&mips), "scalar = {mips:.0} MIPS");
}

/// Figure 7: the projected SoC area for the Ring-64 stays near 3.4 mm².
#[test]
fn figure7_ring64_area() {
    let area = core_area(RingGeometry::RING_64, HardwareParams::PAPER, ST_CMOS_018).total_mm2();
    assert!(
        (area - 3.4).abs() / 3.4 < 0.25,
        "Ring-64 = {area:.2} mm2 (paper: 3.4)"
    );
}
