//! Batch-engine integration: determinism across runs and worker counts,
//! fault isolation, the differential oracle over the whole kernel
//! library, and the (ignored-by-default) speedup acceptance test.

use std::time::Duration;

use systolic_ring::core::{MachineParams, Stats};
use systolic_ring::harness::job::{CycleBudget, Job, JobFault, JobOutcome, JobOutput};
use systolic_ring::harness::runner::BatchRunner;
use systolic_ring::harness::testkit::TestRng;
use systolic_ring::isa::ctrl::CtrlInstr;
use systolic_ring::isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring::isa::RingGeometry;
use systolic_ring::kernels::batch::{kernel_sweep, oracle_suite, run_oracle};

fn mac_job(name: &str, cycles: u64) -> Job {
    Job::from_config(
        name.to_owned(),
        RingGeometry::RING_8,
        MachineParams::PAPER,
        |m| {
            let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One).write_reg(Reg::R0);
            for d in 0..m.geometry().dnodes() {
                m.set_local_program(d, &[mac])?;
                m.set_mode(d, DnodeMode::Local);
            }
            Ok(())
        },
        CycleBudget::Cycles(cycles),
    )
}

/// The same job built twice produces bit-identical outcomes, run after
/// run, serial or parallel.
#[test]
fn identical_jobs_are_bit_identical_across_runs_and_schedulers() {
    let build = || -> Vec<Job> {
        (0..6)
            .map(|i| mac_job(&format!("job{i}"), 40 + i))
            .collect()
    };
    let first = BatchRunner::run_serial(&build());
    let second = BatchRunner::run_serial(&build());
    assert!(first.outcomes_match(&second), "serial reruns must agree");

    for workers in [1, 2, 3, 8] {
        let parallel = BatchRunner::with_workers(workers).run(&build());
        assert!(
            parallel.outcomes_match(&first),
            "{workers}-worker run diverged from serial"
        );
    }
}

/// Kernel jobs generated from the same seed are deterministic end to end.
#[test]
fn seeded_kernel_sweeps_are_deterministic() {
    let a = BatchRunner::with_workers(4).run(&kernel_sweep(0x5eed, 12));
    let b = BatchRunner::run_serial(&kernel_sweep(0x5eed, 12));
    assert!(a.outcomes_match(&b));
    assert_eq!(a.summary().completed, 12);
}

/// A panicking, a faulting and a diverging job each land in their own
/// report slot without disturbing their neighbours.
#[test]
fn faults_are_isolated_per_job() {
    let jobs = vec![
        mac_job("healthy-0", 30),
        Job::custom("panics", || panic!("deliberate test panic")),
        Job::custom("errors", || Err("deliberate workload error".to_owned())),
        Job::from_config(
            "diverges".to_owned(),
            RingGeometry::RING_8,
            MachineParams::PAPER,
            // A controller spin loop that never halts.
            |m| {
                m.controller_mut()
                    .load_program(&[CtrlInstr::J { target: 0 }.encode()])
            },
            CycleBudget::UntilHalt { max_cycles: 100 },
        ),
        mac_job("healthy-1", 30),
    ];
    let report = BatchRunner::with_workers(2).run(&jobs);
    let summary = report.summary();
    assert_eq!(summary.completed, 2);
    assert_eq!(summary.faulted, 3);
    assert!(matches!(
        report.reports[1].outcome,
        JobOutcome::Fault(JobFault::Panic(_))
    ));
    assert!(matches!(
        report.reports[2].outcome,
        JobOutcome::Fault(JobFault::Workload(_))
    ));
    assert!(matches!(
        report.reports[3].outcome,
        JobOutcome::Fault(JobFault::Diverged { max_cycles: 100 })
    ));
    assert!(report.reports[0].outcome.output().is_some());
    assert!(report.reports[4].outcome.output().is_some());
}

/// A job that blows its wall-clock limit reports `WallLimit`.
#[test]
fn wall_limits_are_enforced() {
    let slow = Job::custom("sleeper", || {
        std::thread::sleep(Duration::from_millis(30));
        Ok(JobOutput {
            outputs: Vec::new(),
            cycles: 0,
            stats: Stats::new(0),
        })
    })
    .with_wall_limit(Duration::from_millis(1));
    let report = BatchRunner::with_workers(1).run(&[slow]);
    assert!(matches!(
        report.reports[0].outcome,
        JobOutcome::Fault(JobFault::WallLimit { .. })
    ));
}

/// Every kernel family agrees with its golden model when scheduled through
/// the batch engine, over randomized parameter sweeps.
#[test]
fn differential_oracle_matches_every_kernel_family() {
    // Two seeds x two rounds: 44 randomized cases over 11 adapters.
    for seed in [0xfeed_f00d, 0x0ddba11] {
        let report = run_oracle(&BatchRunner::new(), oracle_suite(seed, 2));
        assert!(
            report.all_match(),
            "seed {seed:#x}: mismatches {:?} faults {:?}",
            report.mismatches,
            report.faults
        );
    }
}

/// Randomized geometry/stream MAC sweeps agree between the machine run
/// through the batch engine and the golden dot product.
#[test]
fn randomized_machine_jobs_match_golden_through_the_engine() {
    let mut rng = TestRng::new(2026);
    let mut jobs = Vec::new();
    let mut expected = Vec::new();
    for i in 0..16 {
        let n = rng.index(30) + 1;
        let a = rng.vec_i16(n, -200..200);
        let b = rng.vec_i16(n, -200..200);
        expected.push(systolic_ring::kernels::golden::dot_product(&a, &b));
        let geometry = *rng.choose(&[RingGeometry::RING_8, RingGeometry::RING_16]);
        jobs.push(Job::custom(format!("mac{i}"), move || {
            systolic_ring::kernels::mac::dot_product(geometry, &a, &b)
                .map(|run| JobOutput {
                    outputs: vec![run.outputs],
                    cycles: run.cycles,
                    stats: run.stats,
                })
                .map_err(|e| e.to_string())
        }));
    }
    let report = BatchRunner::new().run(&jobs);
    for (job_report, want) in report.reports.iter().zip(&expected) {
        let out = job_report.outcome.output().expect("completed");
        assert_eq!(out.outputs[0], vec![*want], "{}", job_report.name);
    }
}

/// Acceptance: a ≥32-job sweep must speed up ≥2x over serial on a
/// multi-core host while staying bit-identical. Wall-clock-sensitive, so
/// ignored by default; run with `cargo test -- --ignored` on quiet
/// machines (the `batch_scaling` bench reports the same figures).
#[test]
#[ignore = "wall-clock performance assertion; run explicitly on a quiet multi-core host"]
fn batch_runner_doubles_throughput_on_a_32_job_sweep() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    assert!(workers >= 4, "needs a multi-core host, found {workers}");

    let jobs: Vec<Job> = (0..32).map(|i| mac_job(&format!("j{i}"), 60_000)).collect();
    let serial = BatchRunner::run_serial(&jobs);
    let parallel = BatchRunner::with_workers(workers).run(&jobs);
    assert!(parallel.outcomes_match(&serial), "results diverged");
    let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64();
    assert!(
        speedup >= 2.0,
        "expected >= 2x speedup on {workers} workers, measured {speedup:.2}x \
         (serial {:?}, parallel {:?})",
        serial.wall,
        parallel.wall
    );
}
