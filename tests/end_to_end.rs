//! Whole-stack integration tests: assembler -> object format -> loader ->
//! machine -> kernels, exercised across crate boundaries.

use systolic_ring::asm::{assemble, disassemble};
use systolic_ring::core::{LinkModel, MachineParams, RingMachine};
use systolic_ring::isa::dnode::Reg;
use systolic_ring::isa::object::Object;
use systolic_ring::isa::{RingGeometry, Word16};
use systolic_ring::kernels::image::Image;
use systolic_ring::soc::ApexPrototype;

/// A mixed-mode program: a global-context pipeline, a local-mode counter
/// and a controller loop, assembled, serialized, reloaded and executed.
#[test]
fn assembled_program_round_trips_through_bytes_and_runs() {
    let source = "
        .ring 4x4
        .contexts 2

        ; ctx 0: y = (x * 3) - 1 in two pipeline stages
        route 0,0.in1 = host.0
        node 0,0: mul in1, #3 > out
        route 1,0.in1 = prev.0
        node 1,0: sub in1, one > out
        capture 2 = lane 0

        ; a free-running local accumulator elsewhere in the fabric
        .local 3,3
          add r1, #5 > r1
        .endlocal
        .mode 3,3 local

        .code
          wait 40
          halt
    ";
    let object = assemble(source).expect("assembles");
    // Serialize and reload — the loader consumes the byte form.
    let bytes = object.to_bytes();
    let reloaded = Object::from_bytes(&bytes).expect("parses");
    assert_eq!(object, reloaded);

    let mut m = RingMachine::with_defaults(RingGeometry::RING_16);
    m.load(&reloaded).expect("loads");
    m.open_sink(2, 0).expect("sink");
    m.attach_input(0, 0, (1..=10).map(Word16::from_i16))
        .expect("stream");
    m.run_until_halt(200).expect("halts");

    let out: Vec<i16> = m
        .take_sink(2, 0)
        .expect("sink")
        .iter()
        .map(|w| w.as_i16())
        .collect();
    let expect: Vec<i16> = (1..=10).map(|x| x * 3 - 1).collect();
    assert!(
        out.windows(10).any(|w| w == expect),
        "pipeline output {out:?}"
    );

    let counter = m.dnode(RingGeometry::RING_16.dnode_index(3, 3));
    assert!(counter.reg(Reg::R1).as_i16() >= 5 * 30);
}

/// The disassembler's output for a controller program reassembles to the
/// same machine code even after a serialization round trip.
#[test]
fn disassemble_reassemble_fixpoint() {
    let source = "
        .code
        boot:
          li   r1, 0xdeadbeef
          cimm 0x1234
          wctx 1
          wdn  r1, 3
          ctx  1
          busw r1
          wait 7
          halt
    ";
    let object = assemble(source).expect("assembles");
    let text = disassemble(&object);
    // The disassembly is itself valid source that reproduces the object
    // byte for byte.
    let object2 = assemble(&text).expect("reassembles");
    assert_eq!(object, object2);
    assert_eq!(object.to_bytes(), object2.to_bytes());
}

/// The APEX prototype and a directly configured machine produce identical
/// results for the same image — PRG-memory boot changes nothing.
#[test]
fn apex_boot_path_is_equivalent_to_direct_load() {
    let input = Image::textured(24, 24, 9);
    let mut board = ApexPrototype::new(&input).expect("board");
    board.run().expect("runs");
    let via_board: Vec<i16> = board.video().words().iter().map(|w| w.as_i16()).collect();
    assert_eq!(via_board, ApexPrototype::golden(&input));
}

/// The PCI-class link model throttles a run end to end: same program, same
/// data, more cycles.
#[test]
fn link_model_shapes_end_to_end_runtime() {
    let source = "
        .ring 4x2
        route 0,0.in1 = host.0
        node 0,0: add in1, #1 > out
        capture 1 = lane 0
        .code
          wait 900
          halt
    ";
    let object = assemble(source).expect("assembles");
    let run = |link: LinkModel| {
        let params = MachineParams::PAPER.with_link(link);
        let mut m = RingMachine::new(RingGeometry::RING_8, params);
        m.load(&object).expect("loads");
        m.open_sink(1, 0).expect("sink");
        m.attach_input(0, 0, vec![Word16::from_i16(7); 400])
            .expect("stream");
        m.run_until_halt(2000).expect("halts");
        let sink = m.take_sink(1, 0).expect("sink");
        sink.iter().filter(|w| w.as_i16() == 8).count()
    };
    let direct = run(LinkModel::Direct);
    let pci = run(LinkModel::PCI_250MBPS_AT_200MHZ);
    // Direct feeds all 400 words within the window; the PCI-class link
    // (0.625 words/cycle, shared by input delivery and result drain)
    // completes only a fraction of the round trips in the same budget.
    assert_eq!(direct, 400);
    assert!(pci < direct / 2, "pci delivered {pci}");
    assert!(pci > 20, "pci delivered {pci}");
}

/// Determinism: two identical runs produce byte-identical statistics.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let (reference, current) = Image::motion_pair(32, 32, 1, 1, 4);
        let spec = systolic_ring::kernels::motion::BlockMatch {
            x0: 12,
            y0: 12,
            block: 4,
            range: 3,
        };
        systolic_ring::kernels::motion::block_match(
            RingGeometry::RING_8,
            &reference,
            &current,
            spec,
        )
        .expect("ME")
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.candidates, b.candidates);
    assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
}

/// The compiler, the hand-mapped kernel and the golden model agree on the
/// same FIR filter — three independent implementations, one answer.
#[test]
fn compiler_kernel_and_golden_agree_on_fir() {
    use systolic_ring::compiler::{compile, Graph};
    use systolic_ring::isa::dnode::AluOp;
    use systolic_ring::kernels::{fir, golden};

    let coeffs = [5i16, -3, 2];
    let input: Vec<i16> = (0..64).map(|i| (i * 13 % 47) as i16 - 20).collect();

    // 1. Golden software model.
    let reference = golden::fir(&coeffs, &input);

    // 2. Hand-mapped spatial kernel.
    let kernel = fir::spatial(RingGeometry::RING_16, &coeffs, &input).expect("kernel");
    assert_eq!(kernel.outputs, reference);

    // 3. Compiled from a dataflow graph.
    let mut g = Graph::new();
    let x = g.input();
    let c: Vec<_> = coeffs.iter().map(|&v| g.constant(v)).collect();
    let x1 = g.delay(x, 1);
    let x2 = g.delay(x, 2);
    let t0 = g.op(AluOp::Mul, x, c[0]);
    let t1 = g.op(AluOp::Mul, x1, c[1]);
    let t2 = g.op(AluOp::Mul, x2, c[2]);
    let s = g.op(AluOp::Add, t0, t1);
    let y = g.op(AluOp::Add, s, t2);
    g.output(y);
    let compiled = compile(&g, RingGeometry::RING_16, MachineParams::PAPER).expect("compiles");
    let (hw, _) = compiled.run(&[&input]).expect("runs");
    assert_eq!(hw[0], reference);
}
