//! Tier-1 driver for the ISA conformance suite: every shipped program —
//! plain `.sr` assembly and literate `.sr.md` markdown alike — must lint
//! clean, meet its embedded `;!` expectations (sink output and cycle
//! budget) and produce bit-identical sink streams in identical cycle
//! counts on the slow, decoded, fused and aot execution tiers.

use std::path::Path;

use systolic_ring::harness::conformance::{self, ConformanceCase};
use systolic_ring::isa::expect::Tier;

fn programs_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("programs")
}

fn corpus() -> Vec<ConformanceCase> {
    conformance::discover(&programs_dir()).expect("programs/ assembles")
}

/// The acceptance floor: at least 8 programs, at least 5 of them
/// literate, and every one of them self-checking (inputs and sink
/// expectations declared).
#[test]
fn corpus_meets_the_size_floor() {
    let cases = corpus();
    assert!(cases.len() >= 8, "corpus too small: {}", cases.len());
    let literate = cases.iter().filter(|c| c.literate).count();
    assert!(literate >= 5, "literate corpus too small: {literate}");
    for case in &cases {
        assert!(
            !case.expectations.inputs.is_empty(),
            "{}: no `;! input` directive",
            case.name
        );
        assert!(
            !case.expectations.sinks.is_empty(),
            "{}: no `;! expect` directive",
            case.name
        );
        assert!(
            case.expectations.cycle_budget.is_some(),
            "{}: no `;! cycles` budget",
            case.name
        );
    }
}

/// The conformance sweep itself: every program passes every declared
/// tier, and the runner's cross-tier equality check held.
#[test]
fn every_program_conforms_on_all_tiers() {
    let report = conformance::run_dir(&programs_dir()).expect("corpus runs");
    assert!(
        report.passed(),
        "conformance failures:\n{}",
        report.failures().join("\n")
    );
    for case in &report.cases {
        // No program in the shipped corpus restricts its tier sweep, so
        // each must have run on all four tiers with nonzero cycles.
        assert_eq!(case.tiers.len(), Tier::ALL.len(), "{}", case.name);
        for (tier, expected) in case.tiers.iter().zip(Tier::ALL) {
            assert_eq!(tier.tier, expected, "{}", case.name);
            assert!(tier.cycles > 0, "{} [{}]", case.name, tier.tier);
        }
    }
}

/// The AOT compiler's headline claim, gated on the corpus: on the aot
/// tier, the combined compiled coverage — cycles spent inside AOT
/// superblocks or fused bursts, over all simulated cycles — reaches at
/// least 95% across the shipped programs, and every program enters at
/// least one AOT superblock.
#[test]
fn aot_tier_compiled_coverage_meets_the_bar() {
    let report = conformance::run_dir(&programs_dir()).expect("corpus runs");
    let mut total_cycles = 0u64;
    let mut compiled_cycles = 0u64;
    for case in &report.cases {
        let aot = case
            .tiers
            .iter()
            .find(|t| t.tier == Tier::Aot)
            .unwrap_or_else(|| panic!("{}: no aot tier row", case.name));
        assert!(
            aot.stats.aot_entries > 0,
            "{}: the aot tier never entered a superblock",
            case.name
        );
        total_cycles += aot.cycles;
        compiled_cycles += aot.stats.fused_cycles + aot.stats.aot_cycles;
    }
    let coverage = compiled_cycles as f64 / total_cycles.max(1) as f64;
    assert!(
        coverage >= 0.95,
        "combined fused+aot coverage {coverage:.4} < 0.95 over the corpus \
         ({compiled_cycles}/{total_cycles} cycles)"
    );
}

/// The JSON emission is deterministic, uses the shared versioned record
/// schema, covers program x tier, and parses back losslessly.
#[test]
fn conformance_json_covers_the_matrix() {
    use systolic_ring_bench::record::{conformance_file, BenchFile, SCHEMA, VERSION};

    let report = conformance::run_dir(&programs_dir()).expect("corpus runs");
    let file = conformance_file(&report);
    let json = file.to_json();
    assert_eq!(
        json,
        conformance_file(&report).to_json(),
        "emission must be deterministic"
    );
    assert!(json.contains(&format!("\"schema\": \"{SCHEMA}\"")));
    assert!(json.contains(&format!("\"version\": {VERSION}")));
    assert_eq!(file.suite, "conformance");
    for case in &report.cases {
        assert!(json.contains(&format!("\"workload\": \"{}\"", case.name)));
    }
    assert_eq!(file.records.len(), report.cases.len() * Tier::ALL.len());
    assert!(file.records.iter().all(|r| r.pass == Some(true)), "{json}");

    let parsed = BenchFile::parse(&json).expect("round-trips through the shared parser");
    assert_eq!(parsed, file);
}
