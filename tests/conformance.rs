//! Tier-1 driver for the ISA conformance suite: every shipped program —
//! plain `.sr` assembly and literate `.sr.md` markdown alike — must lint
//! clean, meet its embedded `;!` expectations (sink output and cycle
//! budget) and produce bit-identical sink streams in identical cycle
//! counts on the slow, decoded and fused execution tiers.

use std::path::Path;

use systolic_ring::harness::conformance::{self, ConformanceCase};
use systolic_ring::isa::expect::Tier;

fn programs_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("programs")
}

fn corpus() -> Vec<ConformanceCase> {
    conformance::discover(&programs_dir()).expect("programs/ assembles")
}

/// The acceptance floor: at least 8 programs, at least 5 of them
/// literate, and every one of them self-checking (inputs and sink
/// expectations declared).
#[test]
fn corpus_meets_the_size_floor() {
    let cases = corpus();
    assert!(cases.len() >= 8, "corpus too small: {}", cases.len());
    let literate = cases.iter().filter(|c| c.literate).count();
    assert!(literate >= 5, "literate corpus too small: {literate}");
    for case in &cases {
        assert!(
            !case.expectations.inputs.is_empty(),
            "{}: no `;! input` directive",
            case.name
        );
        assert!(
            !case.expectations.sinks.is_empty(),
            "{}: no `;! expect` directive",
            case.name
        );
        assert!(
            case.expectations.cycle_budget.is_some(),
            "{}: no `;! cycles` budget",
            case.name
        );
    }
}

/// The conformance sweep itself: every program passes every declared
/// tier, and the runner's cross-tier equality check held.
#[test]
fn every_program_conforms_on_all_three_tiers() {
    let report = conformance::run_dir(&programs_dir()).expect("corpus runs");
    assert!(
        report.passed(),
        "conformance failures:\n{}",
        report.failures().join("\n")
    );
    for case in &report.cases {
        // No program in the shipped corpus restricts its tier sweep, so
        // each must have run on all three tiers with nonzero cycles.
        assert_eq!(case.tiers.len(), 3, "{}", case.name);
        for (tier, expected) in case.tiers.iter().zip(Tier::ALL) {
            assert_eq!(tier.tier, expected, "{}", case.name);
            assert!(tier.cycles > 0, "{} [{}]", case.name, tier.tier);
        }
    }
}

/// The JSON emission is deterministic and covers program x tier.
#[test]
fn conformance_json_covers_the_matrix() {
    let report = conformance::run_dir(&programs_dir()).expect("corpus runs");
    let json = report.to_json();
    assert_eq!(json, report.to_json(), "emission must be deterministic");
    assert!(json.contains("\"schema\": \"systolic-ring-conformance-v1\""));
    for case in &report.cases {
        assert!(json.contains(&format!("\"program\": \"{}\"", case.name)));
    }
    let rows = json.matches("\"tier\":").count();
    assert_eq!(rows, report.cases.len() * 3);
    assert!(!json.contains("\"pass\": false"), "{json}");
}
