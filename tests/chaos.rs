//! Chaos campaign over the whole kernel library: sweeping fault-injection
//! rates across every kernel family and checking each job against its
//! golden model. The acceptance criterion is **zero undetected wrong
//! outputs** at every rate — injected faults may cost retries or fail a
//! job outright, but a failure is always a *detected* fault, never silent
//! corruption.

use systolic_ring::harness::campaign::run_chaos;
use systolic_ring::harness::job::RetryPolicy;
use systolic_ring::harness::runner::BatchRunner;
use systolic_ring::kernels::batch::campaign_suite;

/// The full sweep: all 11 kernel families, three injection rates plus the
/// detection-armed zero-rate control row.
#[test]
fn chaos_campaign_has_zero_undetected_corruptions() {
    let report = run_chaos(
        &BatchRunner::new(),
        &[0, 500, 5_000],
        0xC0FFEE,
        RetryPolicy::retries(8).with_remap(true),
        |_| campaign_suite(0xC0FFEE, 1),
    );
    assert_eq!(report.rows.len(), 3);
    assert!(report.zero_undetected(), "\n{}", report.render());

    // The control row proves the detection machinery itself is invisible:
    // nothing injected, nothing detected, every output matches.
    let control = &report.rows[0];
    assert_eq!(control.clean, control.jobs, "\n{}", report.render());
    assert_eq!(control.faults_detected, 0);

    // The aggressive rate must actually exercise the machinery.
    let aggressive = &report.rows[2];
    assert!(
        aggressive.faults_detected > 0,
        "5000 ppm injected nothing:\n{}",
        report.render()
    );
}

/// CI smoke slice: one seed, two kernel families, one injected rate.
/// Exercises the full inject → detect → rollback/retry → classify loop in
/// well under a second.
#[test]
fn chaos_smoke() {
    let report = run_chaos(
        &BatchRunner::with_workers(2),
        &[0, 2_000],
        7,
        RetryPolicy::retries(4),
        |_| campaign_suite(7, 1).into_iter().take(2).collect(),
    );
    assert_eq!(report.total_jobs(), 4);
    assert!(report.zero_undetected(), "\n{}", report.render());
    assert_eq!(report.rows[0].clean, 2);
}
