//! Every shipped assembly program in `programs/` must assemble, survive an
//! object-format round trip, load into its declared geometry and run to
//! completion.

use systolic_ring::asm::{assemble, assemble_source};
use systolic_ring::core::RingMachine;
use systolic_ring::isa::object::Object;
use systolic_ring::isa::{RingGeometry, Word16};

/// Every shipped program source: plain `.sr` and literate `.sr.md`.
fn program_sources() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let mut sources = Vec::new();
    for entry in std::fs::read_dir(dir).expect("programs/ exists") {
        let path = entry.expect("entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.ends_with(".sr") || name.ends_with(".sr.md") {
            sources.push((name, std::fs::read_to_string(path).expect("readable")));
        }
    }
    assert!(sources.len() >= 8, "expected shipped programs");
    sources
}

/// Literate-aware assembly of one shipped source.
fn assemble_program(name: &str, source: &str) -> Object {
    assemble_source(name, source)
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .0
}

#[test]
fn all_shipped_programs_assemble_and_round_trip() {
    for (name, source) in program_sources() {
        let object = assemble_program(&name, &source);
        let bytes = object.to_bytes();
        let reloaded = Object::from_bytes(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(object, reloaded, "{name}");
    }
}

#[test]
fn all_shipped_programs_run_to_halt() {
    for (name, source) in program_sources() {
        let object = assemble_program(&name, &source);
        let geometry = object.geometry.unwrap_or(RingGeometry::RING_8);
        let mut m = RingMachine::with_defaults(geometry);
        m.load(&object).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Generic stimulus on switch 0 port 0 (every program reads there).
        m.attach_input(0, 0, (1..=64).map(Word16::from_i16))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        m.run_until_halt(5000)
            .unwrap_or_else(|e| panic!("{name}: did not halt cleanly: {e}"));
    }
}

#[test]
fn fir3_program_computes_the_filter() {
    let source = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs/fir3.sr"),
    )
    .expect("readable");
    let object = assemble(&source).expect("assembles");
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    m.load(&object).expect("loads");
    let input: Vec<i16> = (1..=20).collect();
    m.attach_input(0, 0, input.iter().map(|&v| Word16::from_i16(v)))
        .expect("stream");
    // Observe the Dnode output every 7 cycles (one local-loop period).
    let mut outputs = Vec::new();
    m.run(7).expect("warm-up");
    for _ in 0..input.len() {
        m.run(7).expect("period");
        outputs.push(m.dnode(0).out().as_i16());
    }
    let expect = systolic_ring::kernels::golden::fir(&[3, -2, 5], &input);
    assert_eq!(outputs, expect);
}

#[test]
fn context_switch_program_interleaves_operations() {
    let source = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs/context_switch.sr"),
    )
    .expect("readable");
    let object = assemble(&source).expect("assembles");
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    m.load(&object).expect("loads");
    m.open_sink(1, 0).expect("sink");
    m.attach_input(0, 0, vec![Word16::from_i16(10); 80])
        .expect("stream");
    m.run_until_halt(500).expect("halts");
    let sink: Vec<i16> = m
        .take_sink(1, 0)
        .expect("sink")
        .iter()
        .map(|w| w.as_i16())
        .collect();
    // Both personalities of the Dnode appear in the capture stream.
    assert!(sink.contains(&110), "add context output missing: {sink:?}");
    assert!(sink.contains(&30), "mul context output missing: {sink:?}");
    assert!(m.stats().ctx_switches > 10);
}
