//! Cross-checks between `ringlint`'s static claims and the dynamic
//! engine, over every shipped program and every generated kernel object.
//!
//! The linter's contract is one-sided and these tests hold it to both
//! halves that can be checked dynamically:
//!
//! * a **lint-clean** object must load and run without the
//!   statically-preventable `SimError` classes (`PcOutOfRange`,
//!   `BadInstruction`, `BadConfigWrite`), and
//! * a **`Fusible { settle_cycles }`** verdict must be honored by the
//!   dynamic fused engine: running past the proven settle point on a
//!   paper-faithful machine must record `fused_entries > 0`, and
//! * an **`aot_compilable`** verdict (`RL-F003`) must be honored by the
//!   AOT tier: the load-time prefill walk must cache at least one
//!   compiled superblock before the machine runs a single cycle, and a
//!   run past the settle point must record `aot_entries > 0`, and
//! * the **verify-pass proofs** must be honored dynamically: a proven
//!   `cycle_bound` dominates (without being vacuously above) the actual
//!   halt cycle, proven per-Dnode output ranges contain every value the
//!   Dnode actually produces, an attached manifest makes the AOT tier
//!   elide guards without changing a single architectural counter, and
//!   all of it stays sound under randomized object mutation.

use systolic_ring::asm::assemble_source;
use systolic_ring::core::{MachineParams, RingMachine, SimError};
use systolic_ring::isa::expect::Expectations;
use systolic_ring::isa::object::Object;
use systolic_ring::isa::{RingGeometry, Word16};
use systolic_ring::kernels::objects;
use systolic_ring::lint::{lint_object, lint_object_expecting, Fusibility, LintLimits, Severity};

/// Every object the repository ships: assembled `programs/*.sr` and
/// literate `programs/*.sr.md` sources plus the generated kernel objects.
fn corpus() -> Vec<(String, Object)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let mut corpus = Vec::new();
    for entry in std::fs::read_dir(dir).expect("programs/ exists") {
        let path = entry.expect("entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.ends_with(".sr") || name.ends_with(".sr.md") {
            let source = std::fs::read_to_string(&path).expect("readable");
            let (object, _) =
                assemble_source(&name, &source).unwrap_or_else(|e| panic!("{name}: {e}"));
            corpus.push((name, object));
        }
    }
    for (name, object) in objects::all() {
        corpus.push((name.to_owned(), object));
    }
    assert!(corpus.len() >= 8, "expected shipped programs and kernels");
    corpus
}

/// The literate half of the corpus, keeping each program's `;!`
/// expectations: declared input vectors sharpen the verify pass's
/// host-input hulls, and declared budgets are what the static bounds
/// must discharge.
fn literate_corpus() -> Vec<(String, Object, Expectations)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let mut corpus = Vec::new();
    for entry in std::fs::read_dir(dir).expect("programs/ exists") {
        let path = entry.expect("entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.ends_with(".sr") || name.ends_with(".sr.md") {
            let source = std::fs::read_to_string(&path).expect("readable");
            let (object, expectations) =
                assemble_source(&name, &source).unwrap_or_else(|e| panic!("{name}: {e}"));
            corpus.push((name, object, expectations));
        }
    }
    assert!(corpus.len() >= 8, "expected the shipped program corpus");
    corpus
}

/// Attaches a program's declared `;! input` vectors.
fn attach_declared_inputs(m: &mut RingMachine, exp: &Expectations) {
    for input in &exp.inputs {
        m.attach_input(
            input.switch,
            input.port,
            input.words.iter().map(|&v| Word16::from_i16(v)),
        )
        .expect("declared input port");
    }
}

/// Generic host stimulus on the ports every corpus object reads from.
fn stimulate(m: &mut RingMachine) {
    m.attach_input(0, 0, (1..=64).map(Word16::from_i16))
        .expect("stimulus port 0");
    m.attach_input(0, 1, (1..=64).map(Word16::from_i16))
        .expect("stimulus port 1");
}

/// The positive sweep: everything the repository ships lints clean —
/// no errors, no warnings (advisory `Info` findings are permitted).
#[test]
fn shipped_corpus_lints_without_warnings() {
    for (name, object) in corpus() {
        let report = lint_object(&object);
        let offending: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .map(|d| d.to_string())
            .collect();
        assert!(offending.is_empty(), "{name}: {offending:?}");
        assert!(report.is_clean(), "{name}");
    }
}

/// Lint-clean objects never raise the statically-preventable `SimError`
/// classes, whatever else happens at run time.
#[test]
fn clean_objects_never_raise_preventable_faults() {
    for (name, object) in corpus() {
        assert!(lint_object(&object).is_clean(), "{name}");
        let geometry = object.geometry.unwrap_or(RingGeometry::RING_8);
        let mut m = RingMachine::new(geometry, MachineParams::PAPER);
        m.load(&object).unwrap_or_else(|e| panic!("{name}: {e}"));
        stimulate(&mut m);
        if let Err(e) = m.run_until_halt(20_000) {
            assert!(
                !matches!(
                    e,
                    SimError::PcOutOfRange { .. }
                        | SimError::BadInstruction { .. }
                        | SimError::BadConfigWrite { .. }
                ),
                "{name}: lint-clean object raised a preventable fault: {e}"
            );
        }
    }
}

/// A `Fusible { settle_cycles }` verdict is a guarantee: past the proven
/// settle point, a paper-faithful machine (fused engine enabled) must
/// enter at least one fused burst.
#[test]
fn fusible_verdict_is_honored_by_the_fused_engine() {
    let mut proven = 0;
    for (name, object) in corpus() {
        let report = lint_object(&object);
        let Fusibility::Fusible { settle_cycles } = report.fusibility else {
            continue;
        };
        proven += 1;
        let geometry = object.geometry.unwrap_or(RingGeometry::RING_8);
        let mut m = RingMachine::new(geometry, MachineParams::PAPER);
        m.load(&object).unwrap_or_else(|e| panic!("{name}: {e}"));
        stimulate(&mut m);
        // Run well past the proven settle point: enough for the fused
        // engine's stability window plus a minimum burst.
        m.run(settle_cycles + 256)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            m.stats().fused_entries > 0,
            "{name}: predicted fusible by cycle {settle_cycles}, but the fused engine \
             never engaged (stats: {:?})",
            m.stats()
        );
    }
    assert!(proven >= 5, "expected most of the corpus to prove fusible");
}

/// An `aot_compilable` verdict (`RL-F003`) is a guarantee on both ends of
/// the tier: superblocks are cached at load time (before any cycle runs),
/// and a run past the proven settle point enters at least one of them.
#[test]
fn aot_verdict_is_honored_by_the_prefill_and_the_tier() {
    let mut proven = 0;
    for (name, object) in corpus() {
        let report = lint_object(&object);
        // The verdict and its diagnostic move together.
        assert_eq!(
            report.aot_compilable,
            report.diagnostics.iter().any(|d| d.code == "RL-F003"),
            "{name}: RL-F003 diagnostic out of step with the verdict"
        );
        if !report.aot_compilable {
            continue;
        }
        let Fusibility::Fusible { settle_cycles } = report.fusibility else {
            panic!("{name}: aot_compilable without a fusible settle proof");
        };
        proven += 1;
        let geometry = object.geometry.unwrap_or(RingGeometry::RING_8);
        let mut m = RingMachine::new(geometry, MachineParams::PAPER.with_aot(true));
        m.load(&object).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            m.aot_cached_programs() > 0,
            "{name}: predicted aot-compilable, but the load-time prefill cached nothing"
        );
        stimulate(&mut m);
        m.run(settle_cycles + 256)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            m.stats().aot_entries > 0,
            "{name}: predicted aot-compilable, but the AOT tier never entered a \
             superblock (stats: {:?})",
            m.stats()
        );
    }
    assert!(
        proven >= 5,
        "expected most of the corpus to prove aot-compilable"
    );
}

/// The prediction agrees with the engine on the negative side too, in the
/// only way the one-sided contract allows: an object the linter proves
/// fusible must never be one the engine refuses outright (fused runs and
/// decoded runs stay outcome-identical on the corpus).
#[test]
fn fused_and_decoded_runs_agree_on_the_corpus() {
    for (name, object) in corpus() {
        let geometry = object.geometry.unwrap_or(RingGeometry::RING_8);
        let run = |fused: bool| {
            let params = MachineParams::PAPER.with_fused(fused);
            let mut m = RingMachine::new(geometry, params);
            m.load(&object).unwrap_or_else(|e| panic!("{name}: {e}"));
            stimulate(&mut m);
            m.run(2_000).unwrap_or_else(|e| panic!("{name}: {e}"));
            (m.cycle(), m.stats().without_cache_counters())
        };
        let (fc, fs) = run(true);
        let (dc, ds) = run(false);
        assert_eq!(fc, dc, "{name}: cycle counts diverged");
        assert_eq!(fs, ds, "{name}: architectural stats diverged");
    }
}

/// A proven `cycle_bound` is a two-sided promise on the shipped corpus:
/// the real machine halts by it (soundness), and not more than 4x before
/// it (usefulness) — and every declared `;! cycles` budget is discharged
/// by the static bound alone.
#[test]
fn proven_cycle_bounds_dominate_dynamic_halts() {
    let mut proven = 0;
    for (name, object, exp) in literate_corpus() {
        let report = lint_object_expecting(&object, &LintLimits::default(), Some(&exp));
        let Some(bound) = report.proof.cycle_bound else {
            assert!(
                exp.cycle_budget.is_none(),
                "{name}: `;! cycles` budget declared but not statically discharged"
            );
            continue;
        };
        assert!(report.proof.halts, "{name}: bound without a halt claim");
        if let Some(budget) = exp.cycle_budget {
            assert!(
                bound <= budget,
                "{name}: proven bound {bound} does not discharge budget {budget}"
            );
        }
        proven += 1;
        let geometry = object.geometry.unwrap_or(RingGeometry::RING_8);
        let mut m = RingMachine::new(geometry, MachineParams::PAPER);
        m.load(&object).unwrap_or_else(|e| panic!("{name}: {e}"));
        attach_declared_inputs(&mut m, &exp);
        m.run_until_halt(4 * bound + 64)
            .unwrap_or_else(|e| panic!("{name}: proof claims halt by cycle {bound}: {e}"));
        assert!(
            m.cycle() <= bound,
            "{name}: halted at cycle {}, past the proven bound {bound}",
            m.cycle()
        );
        assert!(
            bound <= 4 * m.cycle().max(1),
            "{name}: proven bound {bound} is vacuous against halt cycle {}",
            m.cycle()
        );
    }
    assert!(
        proven >= 6,
        "expected most of the corpus to prove a schedule bound"
    );
}

/// Proven per-Dnode output ranges contain every value the Dnode's output
/// register actually takes, at every cycle of a run under the declared
/// inputs.
#[test]
fn proven_out_ranges_cover_every_dynamic_output() {
    let mut checked = 0;
    for (name, object, exp) in literate_corpus() {
        let report = lint_object_expecting(&object, &LintLimits::default(), Some(&exp));
        if report.proof.out_ranges.is_empty() {
            continue;
        }
        checked += 1;
        let geometry = object.geometry.unwrap_or(RingGeometry::RING_8);
        let mut m = RingMachine::new(geometry, MachineParams::PAPER);
        m.load(&object).unwrap_or_else(|e| panic!("{name}: {e}"));
        attach_declared_inputs(&mut m, &exp);
        for _ in 0..2_000u32 {
            if m.controller().is_halted() {
                break;
            }
            m.step().unwrap_or_else(|e| panic!("{name}: {e}"));
            for range in &report.proof.out_ranges {
                let v = m.dnode(range.dnode as usize).out().as_i16();
                assert!(
                    range.lo <= v && v <= range.hi,
                    "{name}: dnode {} output {v} escapes the proven range \
                     [{}, {}] at cycle {}",
                    range.dnode,
                    range.lo,
                    range.hi,
                    m.cycle()
                );
            }
        }
    }
    assert!(
        checked >= 6,
        "expected most of the corpus to prove output ranges"
    );
}

/// Attaching the proof manifest to an AOT-tier machine elides runtime
/// guards on at least half the corpus — and changes nothing else: halt
/// cycle, sink streams and every architectural counter stay bit-identical
/// to the proof-less run.
#[test]
fn attached_proofs_elide_guards_without_architectural_change() {
    let mut total = 0;
    let mut elided = 0;
    for (name, object, exp) in literate_corpus() {
        total += 1;
        let report = lint_object_expecting(&object, &LintLimits::default(), Some(&exp));
        let geometry = object.geometry.unwrap_or(RingGeometry::RING_8);
        let sink_ports = exp.sink_ports();
        let run = |attach: bool| {
            let mut m = RingMachine::new(geometry, MachineParams::PAPER.with_aot(true));
            m.load(&object).unwrap_or_else(|e| panic!("{name}: {e}"));
            if attach {
                assert!(
                    m.attach_proof(&report.proof),
                    "{name}: corpus manifest rejected by the machine"
                );
            }
            for &(switch, port) in &sink_ports {
                m.open_sink(switch, port).expect("declared sink");
            }
            attach_declared_inputs(&mut m, &exp);
            m.run_until_halt(20_000)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let outputs: Vec<Vec<Word16>> = sink_ports
                .iter()
                .map(|&(s, p)| m.take_sink(s, p).expect("opened sink"))
                .collect();
            let guards = m.stats().guards_elided;
            (
                m.cycle(),
                m.stats().without_cache_counters(),
                outputs,
                guards,
            )
        };
        let (pc, ps, po, pg) = run(true);
        let (nc, ns, no, ng) = run(false);
        assert_eq!(ng, 0, "{name}: guards elided without a proof attached");
        assert_eq!(pc, nc, "{name}: proof attachment changed the halt cycle");
        assert_eq!(
            ps, ns,
            "{name}: proof attachment changed architectural stats"
        );
        assert_eq!(po, no, "{name}: proof attachment changed sink streams");
        if pg > 0 {
            elided += 1;
        }
    }
    assert!(
        2 * elided >= total,
        "proof manifests elided guards on only {elided}/{total} corpus programs"
    );
}

/// Deterministic linear-congruential generator for the mutation sweep.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The static claims stay sound off the happy path: randomized bit-flips
/// over controller code and data produce objects the linter has never
/// seen, and every mutant it still calls clean (and every bound it still
/// proves) must hold up dynamically.
#[test]
fn randomized_mutants_keep_the_static_claims_sound() {
    const MUTANTS_PER_OBJECT: usize = 4;
    const RUN_CAP: u64 = 5_000;
    let mut lcg = Lcg(0x9e37_79b9_7f4a_7c15);
    let mut exercised = 0;
    for (name, object) in corpus() {
        if object.code.is_empty() {
            continue;
        }
        for _ in 0..MUTANTS_PER_OBJECT {
            let mut mutant = object.clone();
            // Flip one bit in a code word and, when present, one in a
            // data word: enough to derail decode, control flow or the
            // walker's arithmetic, while leaving most mutants loadable.
            let idx = lcg.next() as usize % mutant.code.len();
            mutant.code[idx] ^= 1 << (lcg.next() % 32);
            if !mutant.data.is_empty() {
                let idx = lcg.next() as usize % mutant.data.len();
                mutant.data[idx] ^= 1 << (lcg.next() % 32);
            }
            let report = lint_object(&mutant);
            if !report.is_clean() {
                continue;
            }
            exercised += 1;
            let geometry = mutant.geometry.unwrap_or(RingGeometry::RING_8);
            let mut m = RingMachine::new(geometry, MachineParams::PAPER);
            m.load(&mutant)
                .unwrap_or_else(|e| panic!("{name}: lint-clean mutant failed to load: {e}"));
            stimulate(&mut m);
            if let Err(e) = m.run_until_halt(RUN_CAP) {
                assert!(
                    !matches!(
                        e,
                        SimError::PcOutOfRange { .. }
                            | SimError::BadInstruction { .. }
                            | SimError::BadConfigWrite { .. }
                    ),
                    "{name}: lint-clean mutant raised a preventable fault: {e}"
                );
            }
            if let Some(bound) = report.proof.cycle_bound {
                if bound <= RUN_CAP {
                    assert!(
                        m.controller().is_halted() && m.cycle() <= bound,
                        "{name}: mutant proven to halt by cycle {bound} but reached \
                         cycle {} (halted: {})",
                        m.cycle(),
                        m.controller().is_halted()
                    );
                }
            }
        }
    }
    assert!(
        exercised >= 5,
        "mutation sweep exercised only {exercised} lint-clean mutants"
    );
}
