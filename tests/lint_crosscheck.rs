//! Cross-checks between `ringlint`'s static claims and the dynamic
//! engine, over every shipped program and every generated kernel object.
//!
//! The linter's contract is one-sided and these tests hold it to both
//! halves that can be checked dynamically:
//!
//! * a **lint-clean** object must load and run without the
//!   statically-preventable `SimError` classes (`PcOutOfRange`,
//!   `BadInstruction`, `BadConfigWrite`), and
//! * a **`Fusible { settle_cycles }`** verdict must be honored by the
//!   dynamic fused engine: running past the proven settle point on a
//!   paper-faithful machine must record `fused_entries > 0`, and
//! * an **`aot_compilable`** verdict (`RL-F003`) must be honored by the
//!   AOT tier: the load-time prefill walk must cache at least one
//!   compiled superblock before the machine runs a single cycle, and a
//!   run past the settle point must record `aot_entries > 0`.

use systolic_ring::asm::assemble_source;
use systolic_ring::core::{MachineParams, RingMachine, SimError};
use systolic_ring::isa::object::Object;
use systolic_ring::isa::{RingGeometry, Word16};
use systolic_ring::kernels::objects;
use systolic_ring::lint::{lint_object, Fusibility, Severity};

/// Every object the repository ships: assembled `programs/*.sr` and
/// literate `programs/*.sr.md` sources plus the generated kernel objects.
fn corpus() -> Vec<(String, Object)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let mut corpus = Vec::new();
    for entry in std::fs::read_dir(dir).expect("programs/ exists") {
        let path = entry.expect("entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.ends_with(".sr") || name.ends_with(".sr.md") {
            let source = std::fs::read_to_string(&path).expect("readable");
            let (object, _) =
                assemble_source(&name, &source).unwrap_or_else(|e| panic!("{name}: {e}"));
            corpus.push((name, object));
        }
    }
    for (name, object) in objects::all() {
        corpus.push((name.to_owned(), object));
    }
    assert!(corpus.len() >= 8, "expected shipped programs and kernels");
    corpus
}

/// Generic host stimulus on the ports every corpus object reads from.
fn stimulate(m: &mut RingMachine) {
    m.attach_input(0, 0, (1..=64).map(Word16::from_i16))
        .expect("stimulus port 0");
    m.attach_input(0, 1, (1..=64).map(Word16::from_i16))
        .expect("stimulus port 1");
}

/// The positive sweep: everything the repository ships lints clean —
/// no errors, no warnings (advisory `Info` findings are permitted).
#[test]
fn shipped_corpus_lints_without_warnings() {
    for (name, object) in corpus() {
        let report = lint_object(&object);
        let offending: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .map(|d| d.to_string())
            .collect();
        assert!(offending.is_empty(), "{name}: {offending:?}");
        assert!(report.is_clean(), "{name}");
    }
}

/// Lint-clean objects never raise the statically-preventable `SimError`
/// classes, whatever else happens at run time.
#[test]
fn clean_objects_never_raise_preventable_faults() {
    for (name, object) in corpus() {
        assert!(lint_object(&object).is_clean(), "{name}");
        let geometry = object.geometry.unwrap_or(RingGeometry::RING_8);
        let mut m = RingMachine::new(geometry, MachineParams::PAPER);
        m.load(&object).unwrap_or_else(|e| panic!("{name}: {e}"));
        stimulate(&mut m);
        if let Err(e) = m.run_until_halt(20_000) {
            assert!(
                !matches!(
                    e,
                    SimError::PcOutOfRange { .. }
                        | SimError::BadInstruction { .. }
                        | SimError::BadConfigWrite { .. }
                ),
                "{name}: lint-clean object raised a preventable fault: {e}"
            );
        }
    }
}

/// A `Fusible { settle_cycles }` verdict is a guarantee: past the proven
/// settle point, a paper-faithful machine (fused engine enabled) must
/// enter at least one fused burst.
#[test]
fn fusible_verdict_is_honored_by_the_fused_engine() {
    let mut proven = 0;
    for (name, object) in corpus() {
        let report = lint_object(&object);
        let Fusibility::Fusible { settle_cycles } = report.fusibility else {
            continue;
        };
        proven += 1;
        let geometry = object.geometry.unwrap_or(RingGeometry::RING_8);
        let mut m = RingMachine::new(geometry, MachineParams::PAPER);
        m.load(&object).unwrap_or_else(|e| panic!("{name}: {e}"));
        stimulate(&mut m);
        // Run well past the proven settle point: enough for the fused
        // engine's stability window plus a minimum burst.
        m.run(settle_cycles + 256)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            m.stats().fused_entries > 0,
            "{name}: predicted fusible by cycle {settle_cycles}, but the fused engine \
             never engaged (stats: {:?})",
            m.stats()
        );
    }
    assert!(proven >= 5, "expected most of the corpus to prove fusible");
}

/// An `aot_compilable` verdict (`RL-F003`) is a guarantee on both ends of
/// the tier: superblocks are cached at load time (before any cycle runs),
/// and a run past the proven settle point enters at least one of them.
#[test]
fn aot_verdict_is_honored_by_the_prefill_and_the_tier() {
    let mut proven = 0;
    for (name, object) in corpus() {
        let report = lint_object(&object);
        // The verdict and its diagnostic move together.
        assert_eq!(
            report.aot_compilable,
            report.diagnostics.iter().any(|d| d.code == "RL-F003"),
            "{name}: RL-F003 diagnostic out of step with the verdict"
        );
        if !report.aot_compilable {
            continue;
        }
        let Fusibility::Fusible { settle_cycles } = report.fusibility else {
            panic!("{name}: aot_compilable without a fusible settle proof");
        };
        proven += 1;
        let geometry = object.geometry.unwrap_or(RingGeometry::RING_8);
        let mut m = RingMachine::new(geometry, MachineParams::PAPER.with_aot(true));
        m.load(&object).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            m.aot_cached_programs() > 0,
            "{name}: predicted aot-compilable, but the load-time prefill cached nothing"
        );
        stimulate(&mut m);
        m.run(settle_cycles + 256)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            m.stats().aot_entries > 0,
            "{name}: predicted aot-compilable, but the AOT tier never entered a \
             superblock (stats: {:?})",
            m.stats()
        );
    }
    assert!(
        proven >= 5,
        "expected most of the corpus to prove aot-compilable"
    );
}

/// The prediction agrees with the engine on the negative side too, in the
/// only way the one-sided contract allows: an object the linter proves
/// fusible must never be one the engine refuses outright (fused runs and
/// decoded runs stay outcome-identical on the corpus).
#[test]
fn fused_and_decoded_runs_agree_on_the_corpus() {
    for (name, object) in corpus() {
        let geometry = object.geometry.unwrap_or(RingGeometry::RING_8);
        let run = |fused: bool| {
            let params = MachineParams::PAPER.with_fused(fused);
            let mut m = RingMachine::new(geometry, params);
            m.load(&object).unwrap_or_else(|e| panic!("{name}: {e}"));
            stimulate(&mut m);
            m.run(2_000).unwrap_or_else(|e| panic!("{name}: {e}"));
            (m.cycle(), m.stats().without_cache_counters())
        };
        let (fc, fs) = run(true);
        let (dc, ds) = run(false);
        assert_eq!(fc, dc, "{name}: cycle counts diverged");
        assert_eq!(fs, ds, "{name}: architectural stats diverged");
    }
}
