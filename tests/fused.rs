//! Fused-engine acceptance over the whole kernel library: the fused
//! steady-state path, the decoded per-cycle path and the slow
//! decode-per-cycle reference must agree output for output, cycle for
//! cycle and counter for counter — and all three must match the golden
//! software models. Lane-fused batch execution must be outcome-identical
//! to serial execution, and fault-injection campaigns must behave exactly
//! as they do without the fused engine (which is required to stand down
//! whenever an injector is armed).

use systolic_ring::asm::assemble;
use systolic_ring::harness::campaign::run_chaos;
use systolic_ring::harness::job::{CycleBudget, Job, RetryPolicy};
use systolic_ring::harness::runner::BatchRunner;
use systolic_ring::isa::Word16;
use systolic_ring::kernels::batch::{campaign_suite, oracle_suite, run_oracle, OracleCase};

const SEED: u64 = 0xf5ed_ca5e;

/// The oracle suite with every job pinned to one of the three simulation
/// tiers: fused (`fused` + `decode_cache`), decoded (`decode_cache`
/// only) or slow (neither).
fn suite_at_tier(fused: bool, cache: bool) -> Vec<OracleCase> {
    oracle_suite(SEED, 2)
        .into_iter()
        .map(|case| OracleCase {
            job: case.job.with_fused(fused).with_decode_cache(cache),
            ..case
        })
        .collect()
}

/// All three tiers satisfy the golden differential oracle on their own.
#[test]
fn every_tier_matches_golden_models() {
    for (fused, cache) in [(true, true), (false, true), (false, false)] {
        let report = run_oracle(&BatchRunner::new(), suite_at_tier(fused, cache));
        assert!(
            report.all_match(),
            "fused={fused} cache={cache}: mismatches {:?} faults {:?}",
            report.mismatches,
            report.faults
        );
    }
}

/// Fused vs decoded vs slow, kernel by kernel: identical outputs, cycle
/// counts and architectural statistics. Only the engines' own counters
/// may differ — and the fused suite must actually run fused somewhere.
#[test]
fn three_tiers_agree_over_every_kernel_family() {
    let jobs_at = |fused, cache| -> Vec<Job> {
        suite_at_tier(fused, cache)
            .into_iter()
            .map(|c| c.job)
            .collect()
    };
    let fused = BatchRunner::new().run(&jobs_at(true, true));
    let decoded = BatchRunner::new().run(&jobs_at(false, true));
    let slow = BatchRunner::new().run(&jobs_at(false, false));

    assert_eq!(fused.reports.len(), 22, "11 kernel families x 2 rounds");
    let mut fused_entries = 0;
    for ((f, d), s) in fused
        .reports
        .iter()
        .zip(&decoded.reports)
        .zip(&slow.reports)
    {
        let fo = f
            .outcome
            .output()
            .unwrap_or_else(|| panic!("fused tier faulted on {}: {:?}", f.name, f.outcome));
        let so = s
            .outcome
            .output()
            .unwrap_or_else(|| panic!("slow tier faulted on {}: {:?}", s.name, s.outcome));
        let dn = d.outcome.output().expect("decoded tier completed");
        for (other, label) in [(dn, "decoded"), (so, "slow")] {
            assert_eq!(fo.outputs, other.outputs, "{}: {label} outputs", f.name);
            assert_eq!(fo.cycles, other.cycles, "{}: {label} cycles", f.name);
            assert_eq!(
                fo.stats.without_cache_counters(),
                other.stats.without_cache_counters(),
                "{}: {label} architectural stats",
                f.name
            );
        }
        assert_eq!(
            dn.stats.fused_entries + so.stats.fused_entries,
            0,
            "{}: non-fused tiers must never enter the fused engine",
            f.name
        );
        fused_entries += fo.stats.fused_entries;
    }
    assert!(
        fused_entries > 0,
        "the fused suite must actually execute fused bursts"
    );
}

/// A batch of identical-program jobs (the shape of a parameter sweep)
/// lane-fuses in the runner and still matches serial execution exactly.
#[test]
fn lane_fused_batch_matches_serial_over_32_jobs() {
    let source = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs/fir3.sr"),
    )
    .expect("shipped program");
    let object = assemble(&source).expect("fir3 assembles");
    let geometry = object.geometry.expect("fir3 declares its ring");

    let jobs: Vec<Job> = (0..32)
        .map(|i| {
            Job::from_object(
                format!("fir3-sweep-{i}"),
                geometry,
                systolic_ring::core::MachineParams::PAPER,
                object.clone(),
                CycleBudget::Cycles(4096),
            )
            .with_input(0, 0, (0..64).map(|w| Word16::from_i16(w * 7 + i)))
            .with_sink(1, 0)
        })
        .collect();

    let fused = BatchRunner::with_workers(4).run(&jobs);
    let unfused = BatchRunner::with_workers(4)
        .with_lane_fusion(false)
        .run(&jobs);
    let serial = BatchRunner::run_serial(&jobs);
    assert!(fused.outcomes_match(&serial), "lane-fused diverged");
    assert!(unfused.outcomes_match(&serial), "unfused diverged");

    let summary = fused.summary();
    assert_eq!(summary.completed, 32);
    let merged = &summary.merged;
    assert!(
        merged.fused_lane_occupancy > merged.fused_cycles,
        "32 identical jobs must share multi-lane bursts \
         (occupancy {}, cycles {})",
        merged.fused_lane_occupancy,
        merged.fused_cycles
    );
    assert!(summary.render().contains("fused:"));
}

/// The chaos campaign classifies every case identically with the fused
/// engine enabled and disabled: armed injectors force the cycle-by-cycle
/// path, so fault detection, rollback and outputs cannot shift.
#[test]
fn chaos_campaign_is_identical_with_fusion_enabled() {
    let with_fusion = |enabled: bool| {
        run_chaos(
            &BatchRunner::with_workers(2),
            &[0, 2_000],
            SEED,
            RetryPolicy::retries(4),
            move |_| {
                campaign_suite(SEED, 1)
                    .into_iter()
                    .take(4)
                    .map(|mut case| {
                        case.job = case.job.with_fused(enabled);
                        case
                    })
                    .collect()
            },
        )
    };
    let fused = with_fusion(true);
    let plain = with_fusion(false);
    assert!(fused.zero_undetected(), "\n{}", fused.render());
    for (a, b) in fused.rows.iter().zip(&plain.rows) {
        assert_eq!(a.clean, b.clean, "clean counts shifted under fusion");
        assert_eq!(
            a.faults_detected, b.faults_detected,
            "detection counts shifted under fusion"
        );
    }
}

/// CI smoke slice: one oracle round, fused vs decoded, well under a
/// second. `ci.sh` runs exactly this test as its fast differential.
#[test]
fn fused_smoke() {
    let strip = |cases: Vec<OracleCase>| -> Vec<Job> { cases.into_iter().map(|c| c.job).collect() };
    let fused_jobs = strip(
        oracle_suite(7, 1)
            .into_iter()
            .map(|c| OracleCase {
                job: c.job.with_fused(true),
                ..c
            })
            .collect(),
    );
    let decoded_jobs = strip(
        oracle_suite(7, 1)
            .into_iter()
            .map(|c| OracleCase {
                job: c.job.with_fused(false),
                ..c
            })
            .collect(),
    );
    let fused = BatchRunner::with_workers(2).run(&fused_jobs);
    let decoded = BatchRunner::with_workers(2).run(&decoded_jobs);
    assert!(
        fused.outcomes_match(&decoded),
        "fused and decoded paths diverged on the smoke suite"
    );
    assert_eq!(fused.summary().faulted, 0);
}
