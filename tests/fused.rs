//! Fused-engine acceptance over the whole kernel library: the AOT
//! superblock tier, the fused steady-state path, the decoded per-cycle
//! path and the slow decode-per-cycle reference must agree output for
//! output, cycle for cycle and counter for counter — and all four must
//! match the golden software models. Lane-fused batch execution must be
//! outcome-identical to serial execution, and fault-injection campaigns
//! must behave exactly as they do without the compiled engines (which
//! are required to stand down whenever an injector is armed).

use systolic_ring::asm::assemble;
use systolic_ring::harness::campaign::run_chaos;
use systolic_ring::harness::job::{CycleBudget, Job, RetryPolicy};
use systolic_ring::harness::runner::BatchRunner;
use systolic_ring::isa::Word16;
use systolic_ring::kernels::batch::{campaign_suite, oracle_suite, run_oracle, OracleCase};

const SEED: u64 = 0xf5ed_ca5e;

/// The oracle suite with every job pinned to one of the four simulation
/// tiers: aot (`aot` + `fused` + `decode_cache`), fused (`fused` +
/// `decode_cache`), decoded (`decode_cache` only) or slow (neither).
fn suite_at_tier(aot: bool, fused: bool, cache: bool) -> Vec<OracleCase> {
    oracle_suite(SEED, 2)
        .into_iter()
        .map(|case| OracleCase {
            job: case
                .job
                .with_aot(aot)
                .with_fused(fused)
                .with_decode_cache(cache),
            ..case
        })
        .collect()
}

/// All four tiers satisfy the golden differential oracle on their own.
#[test]
fn every_tier_matches_golden_models() {
    for (aot, fused, cache) in [
        (true, true, true),
        (false, true, true),
        (false, false, true),
        (false, false, false),
    ] {
        let report = run_oracle(&BatchRunner::new(), suite_at_tier(aot, fused, cache));
        assert!(
            report.all_match(),
            "aot={aot} fused={fused} cache={cache}: mismatches {:?} faults {:?}",
            report.mismatches,
            report.faults
        );
    }
}

/// Aot vs fused vs decoded vs slow, kernel by kernel: identical outputs,
/// cycle counts and architectural statistics. Only the engines' own
/// counters may differ — and the compiled suites must actually run
/// compiled bursts somewhere.
#[test]
fn four_tiers_agree_over_every_kernel_family() {
    let jobs_at = |aot, fused, cache| -> Vec<Job> {
        suite_at_tier(aot, fused, cache)
            .into_iter()
            .map(|c| c.job)
            .collect()
    };
    let aot = BatchRunner::new().run(&jobs_at(true, true, true));
    let fused = BatchRunner::new().run(&jobs_at(false, true, true));
    let decoded = BatchRunner::new().run(&jobs_at(false, false, true));
    let slow = BatchRunner::new().run(&jobs_at(false, false, false));

    assert_eq!(aot.reports.len(), 22, "11 kernel families x 2 rounds");
    let mut fused_entries = 0;
    let mut aot_entries = 0;
    for (((a, f), d), s) in aot
        .reports
        .iter()
        .zip(&fused.reports)
        .zip(&decoded.reports)
        .zip(&slow.reports)
    {
        let ao = a
            .outcome
            .output()
            .unwrap_or_else(|| panic!("aot tier faulted on {}: {:?}", a.name, a.outcome));
        let fo = f
            .outcome
            .output()
            .unwrap_or_else(|| panic!("fused tier faulted on {}: {:?}", f.name, f.outcome));
        let so = s
            .outcome
            .output()
            .unwrap_or_else(|| panic!("slow tier faulted on {}: {:?}", s.name, s.outcome));
        let dn = d.outcome.output().expect("decoded tier completed");
        for (other, label) in [(fo, "fused"), (dn, "decoded"), (so, "slow")] {
            assert_eq!(ao.outputs, other.outputs, "{}: {label} outputs", a.name);
            assert_eq!(ao.cycles, other.cycles, "{}: {label} cycles", a.name);
            assert_eq!(
                ao.stats.without_cache_counters(),
                other.stats.without_cache_counters(),
                "{}: {label} architectural stats",
                a.name
            );
        }
        assert_eq!(
            dn.stats.fused_entries + so.stats.fused_entries,
            0,
            "{}: non-fused tiers must never enter the fused engine",
            f.name
        );
        assert_eq!(
            fo.stats.aot_entries + dn.stats.aot_entries + so.stats.aot_entries,
            0,
            "{}: non-aot tiers must never enter the AOT cache",
            a.name
        );
        fused_entries += fo.stats.fused_entries;
        aot_entries += ao.stats.aot_entries + ao.stats.fused_entries;
    }
    assert!(
        fused_entries > 0,
        "the fused suite must actually execute fused bursts"
    );
    assert!(
        aot_entries > 0,
        "the aot suite must actually execute compiled bursts"
    );
}

/// A batch of identical-program jobs (the shape of a parameter sweep)
/// lane-fuses in the runner and still matches serial execution exactly.
#[test]
fn lane_fused_batch_matches_serial_over_32_jobs() {
    let source = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs/fir3.sr"),
    )
    .expect("shipped program");
    let object = assemble(&source).expect("fir3 assembles");
    let geometry = object.geometry.expect("fir3 declares its ring");

    let jobs: Vec<Job> = (0..32)
        .map(|i| {
            Job::from_object(
                format!("fir3-sweep-{i}"),
                geometry,
                systolic_ring::core::MachineParams::PAPER,
                object.clone(),
                CycleBudget::Cycles(4096),
            )
            .with_input(0, 0, (0..64).map(|w| Word16::from_i16(w * 7 + i)))
            .with_sink(1, 0)
        })
        .collect();

    let fused = BatchRunner::with_workers(4).run(&jobs);
    let unfused = BatchRunner::with_workers(4)
        .with_lane_fusion(false)
        .run(&jobs);
    let serial = BatchRunner::run_serial(&jobs);
    assert!(fused.outcomes_match(&serial), "lane-fused diverged");
    assert!(unfused.outcomes_match(&serial), "unfused diverged");

    let summary = fused.summary();
    assert_eq!(summary.completed, 32);
    let merged = &summary.merged;
    assert!(
        merged.fused_lane_occupancy > merged.fused_cycles,
        "32 identical jobs must share multi-lane bursts \
         (occupancy {}, cycles {})",
        merged.fused_lane_occupancy,
        merged.fused_cycles
    );
    assert!(summary.render().contains("fused:"));
}

/// The chaos campaign classifies every case identically with the
/// compiled engines enabled and disabled: armed injectors force the
/// cycle-by-cycle path, so fault detection, rollback and outputs cannot
/// shift — on the fused tier and on the AOT tier alike.
#[test]
fn chaos_campaign_is_identical_with_fusion_enabled() {
    let with_tiers = |aot: bool, fused: bool| {
        run_chaos(
            &BatchRunner::with_workers(2),
            &[0, 2_000],
            SEED,
            RetryPolicy::retries(4),
            move |_| {
                campaign_suite(SEED, 1)
                    .into_iter()
                    .take(4)
                    .map(|mut case| {
                        case.job = case.job.with_aot(aot).with_fused(fused);
                        case
                    })
                    .collect()
            },
        )
    };
    let aot = with_tiers(true, true);
    let fused = with_tiers(false, true);
    let plain = with_tiers(false, false);
    assert!(fused.zero_undetected(), "\n{}", fused.render());
    assert!(aot.zero_undetected(), "\n{}", aot.render());
    for (label, compiled) in [("fusion", &fused), ("aot", &aot)] {
        for (a, b) in compiled.rows.iter().zip(&plain.rows) {
            assert_eq!(a.clean, b.clean, "clean counts shifted under {label}");
            assert_eq!(
                a.faults_detected, b.faults_detected,
                "detection counts shifted under {label}"
            );
        }
    }
}

/// CI smoke slice: one oracle round, fused vs decoded, well under a
/// second. `ci.sh` runs exactly this test as its fast differential.
#[test]
fn fused_smoke() {
    let strip = |cases: Vec<OracleCase>| -> Vec<Job> { cases.into_iter().map(|c| c.job).collect() };
    let fused_jobs = strip(
        oracle_suite(7, 1)
            .into_iter()
            .map(|c| OracleCase {
                job: c.job.with_fused(true),
                ..c
            })
            .collect(),
    );
    let decoded_jobs = strip(
        oracle_suite(7, 1)
            .into_iter()
            .map(|c| OracleCase {
                job: c.job.with_fused(false),
                ..c
            })
            .collect(),
    );
    let fused = BatchRunner::with_workers(2).run(&fused_jobs);
    let decoded = BatchRunner::with_workers(2).run(&decoded_jobs);
    assert!(
        fused.outcomes_match(&decoded),
        "fused and decoded paths diverged on the smoke suite"
    );
    assert_eq!(fused.summary().faulted, 0);
}

/// CI smoke slice for the AOT tier: one oracle round, aot vs decoded,
/// well under a second. `ci.sh` runs exactly this test as its AOT gate.
#[test]
fn aot_smoke() {
    let at = |aot: bool| -> Vec<Job> {
        oracle_suite(7, 1)
            .into_iter()
            .map(|c| c.job.with_aot(aot).with_fused(aot))
            .collect()
    };
    let aot = BatchRunner::with_workers(2).run(&at(true));
    let decoded = BatchRunner::with_workers(2).run(&at(false));
    assert!(
        aot.outcomes_match(&decoded),
        "aot and decoded paths diverged on the smoke suite"
    );
    assert_eq!(aot.summary().faulted, 0);
    assert!(
        aot.summary().merged.aot_entries > 0,
        "the aot smoke suite never entered a superblock"
    );
}
